"""Unit tests for the Rainbow site: server, participant, crash/recovery."""

import pytest

from repro.errors import ConcurrencyAbort
from repro.net.message import MessageType
from repro.site.site import Site
from tests.conftest import drive


@pytest.fixture
def site(sim, network):
    site = Site(sim, network, "s1", "h1", gc_interval=0, uncertainty_timeout=None)
    site.store.create_copy("x", initial_value=0)
    site.store.create_copy("y", initial_value=5)
    return site


class TestLocalOperations:
    def test_local_read(self, sim, site):
        assert drive(sim, site.local_read(1, 1.0, "x")) == (0, 0)
        assert site.stats.reads_served == 1

    def test_local_prewrite_then_prepare_commit(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        vote, reason = site.local_prepare(1, {"x": 1}, "coord/a", 1.0)
        assert vote
        assert site.in_doubt_count() == 1
        site.local_commit(1)
        assert site.store.read("x") == (9, 1)
        assert site.in_doubt_count() == 0
        assert site.wal.decision_for(1) == "COMMIT"

    def test_local_abort_releases(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, "coord/a", 1.0)
        site.local_abort(1)
        assert site.store.read("x") == (0, 0)
        assert site.wal.decision_for(1) == "ABORT"

    def test_prepare_doomed_txn_votes_no(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.cc.doom(1)
        vote, reason = site.local_prepare(1, {"x": 1}, None, 1.0)
        assert not vote
        assert "doomed" in reason
        assert site.stats.votes_no == 1

    def test_prepare_with_lost_workspace_votes_no(self, sim, site):
        vote, reason = site.local_prepare(1, {"x": 1}, None, 1.0)
        assert not vote
        assert "lost" in reason

    def test_commit_for_unknown_txn_is_noop_commit(self, sim, site):
        site.local_commit(99)
        assert site.wal.decision_for(99) == "COMMIT"

    def test_abort_is_idempotent(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        site.local_abort(1)
        site.local_abort(1)  # duplicate decision: no error
        assert site.store.read("x") == (0, 0)

    def test_duplicate_commit_not_reapplied(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        site.local_commit(1)
        site.local_commit(1)
        assert site.stats.commits_applied == 1


class TestDecisionOf:
    def test_logged_decision_wins(self, sim, site):
        site.wal.log_commit(1, at=0.0)
        assert site.decision_of(1) == "COMMIT"

    def test_prepared_is_uncertain(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        assert site.decision_of(1) == "UNCERTAIN"

    def test_precommitted_reported(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        site.local_precommit(1)
        assert site.decision_of(1) == "PRECOMMITTED"
        assert site.decision_of(1, presume_abort=True) == "PRECOMMITTED"

    def test_presumed_abort_for_unknown(self, sim, site):
        assert site.decision_of(42) == "UNKNOWN"
        assert site.decision_of(42, presume_abort=True) == "ABORT"

    def test_presumed_abort_overrides_own_prepared_state(self, sim, site):
        """A coordinator asked about an undecided txn answers ABORT even if
        it also holds a participant prepare for it."""
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        assert site.decision_of(1, presume_abort=True) == "ABORT"


class TestMessageHandlers:
    def _client(self, sim, network, site):
        return network.endpoint("hc", "client")

    def test_read_message(self, sim, network, site):
        client = self._client(sim, network, site)

        def run():
            reply = yield client.request(
                site.address, MessageType.READ,
                {"txn": 1, "ts": 1.0, "item": "y"}, timeout=20,
            )
            return reply.payload

        payload = drive(sim, run())
        assert payload == {"ok": True, "value": 5, "version": 0}

    def test_prewrite_and_full_2pc_over_messages(self, sim, network, site):
        client = self._client(sim, network, site)

        def run():
            reply = yield client.request(
                site.address, MessageType.PREWRITE,
                {"txn": 1, "ts": 1.0, "item": "x", "value": 77}, timeout=20,
            )
            assert reply.payload["ok"]
            vote = yield client.request(
                site.address, MessageType.VOTE_REQ,
                {"txn": 1, "ts": 1.0, "versions": {"x": 1},
                 "coordinator": client.address}, timeout=20,
            )
            assert vote.payload["vote"]
            ack = yield client.request(
                site.address, MessageType.COMMIT, {"txn": 1}, timeout=20,
            )
            return ack.payload

        payload = drive(sim, run())
        assert payload["ok"]
        assert site.store.read("x") == (77, 1)

    def test_read_rejection_reported(self, sim, network, site):
        client = self._client(sim, network, site)
        site.cc.doom(1)

        def run():
            reply = yield client.request(
                site.address, MessageType.READ,
                {"txn": 1, "ts": 1.0, "item": "x"}, timeout=20,
            )
            return reply.payload

        payload = drive(sim, run())
        assert not payload["ok"]
        assert "doomed" in payload["reason"]

    def test_decision_req_message(self, sim, network, site):
        client = self._client(sim, network, site)
        site.wal.log_commit(3, at=0.0)

        def run():
            reply = yield client.request(
                site.address, MessageType.DECISION_REQ,
                {"txn": 3, "presume_abort": True}, timeout=20,
            )
            return reply.payload["decision"]

        assert drive(sim, run()) == "COMMIT"

    def test_stray_reply_dropped(self, sim, network, site):
        client = self._client(sim, network, site)
        client.send(site.address, MessageType.READ_REPLY, {"ok": True}, reply_to=12345)
        sim.run(until=10)
        # No bounce-back message arrived at the client.
        assert client.pending_count() == 0

    def test_txn_submit_without_factory_fails_cleanly(self, sim, network, site):
        client = self._client(sim, network, site)

        def run():
            reply = yield client.request(
                site.address, MessageType.TXN_SUBMIT, {"txn_spec": None}, timeout=20,
            )
            return reply.payload

        payload = drive(sim, run())
        assert not payload["ok"]


class TestCrashRecovery:
    def test_crash_marks_down_and_clears_volatile(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.crash()
        assert not site.up
        assert site.cc.active_transactions() == set()
        assert site.in_doubt_count() == 0

    def test_crash_is_idempotent(self, sim, site):
        site.crash()
        site.crash()
        assert site.stats.crashes == 1

    def test_recovery_replays_committed_writes(self, sim, site):
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        site.local_commit(1)
        # Simulate storage surviving but later writes arriving after crash:
        site.crash()
        site.recover()
        assert site.up
        assert site.store.read("x") == (9, 1)
        assert site.stats.recoveries == 1

    def test_recovery_reinstates_in_doubt(self, sim, site):
        drive(sim, site.local_prewrite(1, 2.0, "x", 9))
        site.local_prepare(1, {"x": 1}, "ghost/coord", 2.0)
        site.crash()
        site.recover()
        assert site.in_doubt_count() == 1
        # The reinstated transaction holds its exclusion: another writer
        # cannot sneak in.
        assert site.cc.buffered_writes(1) == {"x": 9}

    def test_recovered_in_doubt_resolves_via_decision_req(self, sim, network, site):
        # A fake coordinator that answers COMMIT.
        coord = network.endpoint("hc", "coord")

        def coordinator():
            while True:
                msg = yield coord.receive()
                coord.reply(msg, MessageType.DECISION, {"decision": "COMMIT"})

        sim.process(coordinator())
        drive(sim, site.local_prewrite(1, 2.0, "x", 9))
        site.local_prepare(1, {"x": 1}, coord.address, 2.0)
        site.crash()
        site.recover()
        sim.run(until=sim.now + 100)
        assert site.in_doubt_count() == 0
        assert site.store.read("x") == (9, 1)
        assert site.stats.orphans_resolved >= 1

    def test_recovered_in_doubt_presumes_abort_from_silent_coordinator(
        self, sim, network, site
    ):
        coord = network.endpoint("hc", "coord")

        def coordinator():
            while True:
                msg = yield coord.receive()
                coord.reply(
                    msg,
                    MessageType.DECISION,
                    {"decision": site_b.decision_of(msg.payload["txn"], True)},
                )

        site_b = Site(sim, network, "s2", "h2", gc_interval=0)
        sim.process(coordinator())
        drive(sim, site.local_prewrite(1, 2.0, "x", 9))
        site.local_prepare(1, {"x": 1}, coord.address, 2.0)
        site.crash()
        site.recover()
        sim.run(until=sim.now + 100)
        assert site.in_doubt_count() == 0
        assert site.store.read("x") == (0, 0)  # aborted


class TestSweepers:
    def test_gc_aborts_abandoned_unprepared_txn(self, sim, network):
        site = Site(sim, network, "s9", "h9", gc_interval=10, gc_timeout=20,
                    uncertainty_timeout=None)
        site.store.create_copy("x")
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        sim.run(until=60)
        assert site.stats.gc_aborts == 1
        assert site.cc.active_transactions() == set()

    def test_gc_spares_prepared_txn(self, sim, network):
        site = Site(sim, network, "s9", "h9", gc_interval=10, gc_timeout=20,
                    uncertainty_timeout=None)
        site.store.create_copy("x")
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, None, 1.0)
        sim.run(until=60)
        assert site.stats.gc_aborts == 0
        assert site.in_doubt_count() == 1

    def test_uncertainty_sweeper_starts_resolution(self, sim, network):
        site = Site(sim, network, "s9", "h9", gc_interval=0,
                    uncertainty_timeout=15, sweep_interval=5, decision_retry=5)
        site.store.create_copy("x")
        coord = network.endpoint("hc", "coord")

        def coordinator():
            while True:
                msg = yield coord.receive()
                coord.reply(msg, MessageType.DECISION, {"decision": "ABORT"})

        sim.process(coordinator())
        drive(sim, site.local_prewrite(1, 1.0, "x", 9))
        site.local_prepare(1, {"x": 1}, coord.address, 1.0)
        sim.run(until=100)
        assert site.stats.orphan_events == 1
        assert site.in_doubt_count() == 0
        assert site.store.read("x") == (0, 0)
