"""Shared fixtures and helpers for the Rainbow test suite."""

from __future__ import annotations

import pytest

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim, ConstantLatency(1.0))


def drive(sim: Simulator, generator, name: str = "test"):
    """Run ``generator`` as a process to completion; return its value."""
    process = sim.process(generator, name=name)
    return sim.run(until=process)


def quick_instance(
    n_sites: int = 4,
    n_items: int = 16,
    replication_degree: int = 3,
    *,
    rcp: str = "QC",
    ccp: str = "2PL",
    acp: str = "2PC",
    seed: int = 1,
    settle_time: float = 60.0,
    **overrides,
) -> RainbowInstance:
    """A small ready-made instance for integration tests."""
    config = RainbowConfig.quick(
        n_sites=n_sites,
        n_items=n_items,
        replication_degree=replication_degree,
        seed=seed,
        settle_time=settle_time,
    )
    config.protocols.rcp = rcp
    config.protocols.ccp = ccp
    config.protocols.acp = acp
    for key, value in overrides.items():
        setattr(config, key, value)
    return RainbowInstance(config)
