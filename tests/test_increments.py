"""Increment operations and the counter invariant (no lost updates).

The strongest end-to-end correctness statement after serializability:
if N transactions each commit an increment of +1 on a counter, the
counter's committed value must be exactly N — any smaller value is a lost
update.  This must hold under every correct CCP and every RCP; the broken
classroom NOCC protocol must *violate* it.
"""

import pytest

from repro.errors import WorkloadError
from repro.txn.transaction import Operation, OpKind, Transaction
from tests.conftest import quick_instance


def committed_counter_value(instance, item):
    """The highest-version committed value across the item's copies."""
    values = [
        instance.sites[name].store.read(item)
        for name in instance.catalog.sites_holding(item)
    ]
    return max(values, key=lambda pair: pair[1])[0]


def run_increment_storm(instance, item, n, homes, gap=4.0):
    """Launch n concurrent increments, staggered by ``gap`` time units.

    Perfectly simultaneous read-modify-write storms livelock under 2PL
    (symmetric distributed upgrade deadlocks) and under distributed OCC
    (symmetric cross-site validation conflicts) — every transaction kills
    every other.  A small stagger keeps heavy overlap while leaving
    survivors, which is what real arrival processes look like.
    """
    txns = [
        Transaction(ops=[Operation.increment(item, 1)], home_site=homes[i % len(homes)])
        for i in range(n)
    ]
    processes = []
    for txn in txns:
        processes.append(instance.submit(txn))
        instance.sim.run(until=instance.sim.now + gap)
    instance.sim.run(until=instance.sim.all_of(processes))
    instance.sim.run(until=instance.sim.now + 60)
    return txns


class TestOperationModel:
    def test_increment_shorthand(self):
        op = Operation.increment("x", 5)
        assert op.kind == OpKind.INCREMENT
        assert op.value == 5
        assert str(op) == "i[x+=5]"

    def test_increment_requires_numeric_delta(self):
        with pytest.raises(WorkloadError):
            Operation(OpKind.INCREMENT, "x", "not a number")

    def test_increment_in_read_and_write_sets(self):
        txn = Transaction(ops=[Operation.increment("x", 1)], home_site="s")
        assert txn.read_set == ["x"]
        assert txn.write_set == ["x"]

    def test_increment_executes_read_then_write(self):
        instance = quick_instance(n_items=4)
        txn = Transaction(
            ops=[Operation.write("x1", 10), Operation.increment("x2", 3)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.committed
        assert txn.reads["x2"] == 0
        assert committed_counter_value(instance, "x2") == 3


class TestCounterInvariant:
    @pytest.mark.parametrize("ccp", ["2PL", "TSO", "MVTO", "OCC"])
    def test_no_lost_updates_under_correct_ccps(self, ccp):
        instance = quick_instance(ccp=ccp, n_items=4, settle_time=60, seed=6)
        instance.start()
        txns = run_increment_storm(
            instance, "x1", 10, ["site1", "site2", "site3", "site4"]
        )
        committed = [txn for txn in txns if txn.committed]
        assert committed  # liveness: some increments must land
        assert committed_counter_value(instance, "x1") == len(committed)
        ok, _witness = instance.monitor.history.check_serializable()
        assert ok

    @pytest.mark.parametrize("rcp", ["ROWA", "ROWAA", "QC"])
    def test_no_lost_updates_under_every_rcp(self, rcp):
        instance = quick_instance(rcp=rcp, n_items=4, settle_time=60, seed=12)
        instance.start()
        txns = run_increment_storm(instance, "x1", 8, ["site1", "site2", "site3"])
        committed = [txn for txn in txns if txn.committed]
        assert committed
        assert committed_counter_value(instance, "x1") == len(committed)

    def test_nocc_loses_updates(self):
        """The broken protocol must fail the same invariant."""
        import repro.classroom  # noqa: F401 - registers NOCC
        from repro.core.config import RainbowConfig
        from repro.core.instance import RainbowInstance

        config = RainbowConfig.quick(n_sites=4, n_items=4, replication_degree=3,
                                     seed=2)
        config.protocols.ccp = "NOCC"
        config.settle_time = 60
        instance = RainbowInstance(config)
        instance.start()
        txns = run_increment_storm(
            instance, "x1", 10, ["site1", "site2", "site3", "site4"]
        )
        committed = [txn for txn in txns if txn.committed]
        final = committed_counter_value(instance, "x1")
        assert len(committed) == 10  # NOCC never aborts anything...
        assert final < len(committed)  # ...and loses updates doing so

    def test_restarts_recover_all_increments(self):
        """With restart-on-abort, every increment eventually lands."""
        from repro.workload.spec import WorkloadSpec

        instance = quick_instance(ccp="2PL", n_items=3, settle_time=80, seed=3)
        spec = WorkloadSpec(
            n_transactions=12,
            arrival="closed",
            mpl=4,
            min_ops=1,
            max_ops=1,
            read_fraction=0.0,
            increment_fraction=1.0,
            restart_on_abort=True,
            max_restarts=10,
            restart_delay=2.0,
        )
        result = instance.run_workload(spec)
        landed = sum(1 for o in result.outcomes if o.status == "COMMITTED")
        total = sum(
            committed_counter_value(instance, item)
            for item in instance.catalog.item_names()
        )
        assert total == landed


class TestWorkloadIncrements:
    def test_spec_validation(self):
        from repro.workload.spec import WorkloadSpec

        with pytest.raises(WorkloadError):
            WorkloadSpec(increment_fraction=1.5).validate()

    def test_generator_emits_increments(self):
        import random

        from repro.workload.generator import WorkloadGenerator
        from repro.workload.spec import WorkloadSpec

        instance = quick_instance(n_items=16)
        spec = WorkloadSpec(read_fraction=0.0, increment_fraction=1.0)
        generator = WorkloadGenerator(
            instance.sim, instance.network, instance.directory, instance.catalog,
            spec, random.Random(0), name="wlg-inc",
        )
        txn = generator.make_transaction()
        assert all(op.kind == OpKind.INCREMENT for op in txn.ops)


class TestTrafficPanel:
    def test_renders_categories_and_types(self):
        from repro.gui.panels import render_traffic_panel

        instance = quick_instance(n_items=8, settle_time=20)
        from repro.workload.spec import WorkloadSpec

        instance.run_workload(WorkloadSpec(n_transactions=5, arrival_rate=1.0))
        panel = render_traffic_panel(instance.network.stats)
        assert "Message Traffic" in panel
        assert "data" in panel
        assert "commit" in panel
        assert "READ" in panel or "PREWRITE" in panel
