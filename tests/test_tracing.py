"""Tests for execution tracing: local and global histories."""

import pytest

from repro.monitor.tracing import ExecutionTracer, TraceEvent, format_history
from repro.txn.transaction import Operation, Transaction
from tests.conftest import quick_instance


class TestNotation:
    def test_read_write_notation(self):
        assert TraceEvent(0, "s", "read", 3, item="x").notation() == "r3[x]"
        assert TraceEvent(0, "s", "prewrite", 3, item="x", value=7).notation() == "w3[x=7]"
        assert TraceEvent(0, "s", "prepare", 3).notation() == "p3"
        assert TraceEvent(0, "s", "precommit", 3).notation() == "pc3"
        assert TraceEvent(0, "s", "commit", 3).notation() == "c3"
        assert TraceEvent(0, "s", "abort", 3).notation() == "a3"

    def test_format_history_orders_by_time(self):
        events = [
            TraceEvent(2.0, "s", "commit", 1),
            TraceEvent(1.0, "s", "read", 1, item="x"),
        ]
        assert format_history(events) == "r1[x]  c1"

    def test_format_history_truncates(self):
        events = [TraceEvent(float(i), "s", "commit", i) for i in range(5)]
        assert format_history(events, max_events=2) == "c0  c1"


class TestTracerWithInstance:
    def _traced_instance(self):
        instance = quick_instance(n_items=8, settle_time=20)
        instance.start()
        tracer = ExecutionTracer(instance.sim)
        tracer.attach_all(instance)
        return instance, tracer

    def test_committed_txn_leaves_full_trace(self):
        instance, tracer = self._traced_instance()
        txn = Transaction(
            ops=[Operation.read("x1"), Operation.write("x3", 5)], home_site="site1"
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        kinds = [event.kind for event in tracer.txn_events(txn.txn_id)]
        assert "read" in kinds
        assert "prewrite" in kinds
        assert "prepare" in kinds
        assert "commit" in kinds
        assert "abort" not in kinds

    def test_local_history_contains_only_site_events(self):
        instance, tracer = self._traced_instance()
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        for site in instance.sites:
            for event in tracer.local_events(site):
                assert event.site == site

    def test_global_history_merges_sites(self):
        instance, tracer = self._traced_instance()
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        sites_seen = {event.site for event in tracer.global_events()}
        assert len(sites_seen) >= 2  # home + at least one remote participant

    def test_history_string_notation(self):
        instance, tracer = self._traced_instance()
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        history = tracer.global_history()
        assert f"w{txn.txn_id}[x1=5]" in history
        assert f"c{txn.txn_id}" in history

    def test_aborted_txn_traces_abort(self):
        instance, tracer = self._traced_instance()
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        instance.sites["site1"].cc.doom(txn.txn_id)
        process = instance.submit(txn)
        instance.sim.run(until=process)
        instance.sim.run(until=instance.sim.now + 30)
        kinds = [event.kind for event in tracer.txn_events(txn.txn_id)]
        assert "commit" not in kinds

    def test_attach_idempotent(self):
        instance, tracer = self._traced_instance()
        tracer.attach(instance.sites["site1"])  # second attach: no double wrap
        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        # One read event at the home site (QC also reads a second site,
        # which is a different event, not a double-trace).
        reads_at_home = [
            e for e in tracer.txn_events(txn.txn_id)
            if e.kind == "read" and e.site == "site1"
        ]
        assert len(reads_at_home) == 1

    def test_operation_counts(self):
        instance, tracer = self._traced_instance()
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        counts = tracer.operation_counts()
        assert counts["prewrite"] >= 1
        assert counts["commit"] >= 1
