"""Unit tests for workload specs and the generator."""

import random

import pytest

from repro.errors import WorkloadError
from repro.nameserver.catalog import Catalog
from repro.txn.transaction import OpKind, Operation, Transaction
from repro.workload.generator import ManualWorkload, WorkloadGenerator
from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance


class TestWorkloadSpec:
    def test_defaults_valid(self):
        WorkloadSpec().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_transactions", -1),
            ("arrival", "bursty"),
            ("arrival_rate", 0),
            ("min_ops", 0),
            ("max_ops", 2),  # with min_ops default 4
            ("read_fraction", 1.5),
            ("access", "nope"),
            ("home_policy", "nope"),
            ("max_restarts", -1),
            ("result_timeout", 0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        spec = WorkloadSpec()
        setattr(spec, field, value)
        with pytest.raises(WorkloadError):
            spec.validate()

    def test_closed_needs_mpl(self):
        spec = WorkloadSpec(arrival="closed", mpl=0)
        with pytest.raises(WorkloadError):
            spec.validate()

    def test_weighted_needs_weights(self):
        spec = WorkloadSpec(home_policy="weighted")
        with pytest.raises(WorkloadError):
            spec.validate()

    def test_hotspot_bounds(self):
        spec = WorkloadSpec(access="hotspot", hotspot_fraction=0.0)
        with pytest.raises(WorkloadError):
            spec.validate()

    def test_negative_zipf_theta_rejected(self):
        spec = WorkloadSpec(access="zipf", zipf_theta=-1)
        with pytest.raises(WorkloadError):
            spec.validate()


class TestTransactionModel:
    def test_operation_shorthands(self):
        read = Operation.read("x")
        write = Operation.write("x", 5)
        assert read.kind == OpKind.READ
        assert write.value == 5
        assert str(read) == "r[x]"
        assert str(write) == "w[x=5]"

    def test_read_with_value_rejected(self):
        with pytest.raises(WorkloadError):
            Operation(OpKind.READ, "x", value=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Operation("Q", "x")

    def test_empty_transaction_rejected(self):
        with pytest.raises(WorkloadError):
            Transaction(ops=[], home_site="s1")

    def test_read_write_sets(self):
        txn = Transaction(
            ops=[Operation.read("a"), Operation.write("b", 1), Operation.read("a")],
            home_site="s1",
        )
        assert txn.read_set == ["a"]
        assert txn.write_set == ["b"]

    def test_txn_ids_unique(self):
        t1 = Transaction(ops=[Operation.read("a")], home_site="s1")
        t2 = Transaction(ops=[Operation.read("a")], home_site="s1")
        assert t1.txn_id != t2.txn_id

    def test_restart_keeps_template_id(self):
        t1 = Transaction(ops=[Operation.read("a")], home_site="s1")
        t2 = t1.restarted()
        assert t2.template_id == t1.template_id == t1.txn_id
        assert t2.attempt == 2
        assert t2.txn_id != t1.txn_id

    def test_response_time_none_until_decided(self):
        txn = Transaction(ops=[Operation.read("a")], home_site="s1")
        assert txn.response_time is None
        txn.submitted_at, txn.decided_at = 2.0, 6.5
        assert txn.response_time == 4.5


class TestSynthesis:
    def _generator(self, instance, spec):
        return WorkloadGenerator(
            instance.sim,
            instance.network,
            instance.directory,
            instance.catalog,
            spec,
            random.Random(0),
            monitor=instance.monitor,
            name="wlg-test",
        )

    def test_sizes_and_mix(self):
        instance = quick_instance(n_items=64)
        spec = WorkloadSpec(min_ops=3, max_ops=5, read_fraction=1.0)
        generator = self._generator(instance, spec)
        for _ in range(30):
            txn = generator.make_transaction()
            assert 1 <= len(txn.ops) <= 5
            assert all(op.kind == OpKind.READ for op in txn.ops)

    def test_write_only_mix(self):
        instance = quick_instance(n_items=64)
        spec = WorkloadSpec(read_fraction=0.0)
        generator = self._generator(instance, spec)
        txn = generator.make_transaction()
        assert all(op.kind == OpKind.WRITE for op in txn.ops)

    def test_distinct_items_enforced(self):
        instance = quick_instance(n_items=32)
        spec = WorkloadSpec(min_ops=8, max_ops=8, distinct_items=True)
        generator = self._generator(instance, spec)
        for _ in range(20):
            txn = generator.make_transaction()
            items = [op.item for op in txn.ops]
            assert len(items) == len(set(items))

    def test_round_robin_homes_cycle(self):
        instance = quick_instance(n_sites=4, n_items=16)
        generator = self._generator(instance, WorkloadSpec())
        homes = [generator.make_transaction().home_site for _ in range(8)]
        assert homes == ["site1", "site2", "site3", "site4"] * 2

    def test_weighted_homes_respect_weights(self):
        instance = quick_instance(n_sites=4, n_items=16)
        spec = WorkloadSpec(
            home_policy="weighted",
            home_weights={"site1": 0.9, "site2": 0.1, "site3": 0.0, "site4": 0.0},
        )
        generator = self._generator(instance, spec)
        homes = [generator.make_transaction().home_site for _ in range(200)]
        assert homes.count("site1") > 140
        assert homes.count("site3") == 0

    def test_zipf_access_skews_to_first_items(self):
        instance = quick_instance(n_items=32)
        spec = WorkloadSpec(access="zipf", zipf_theta=1.2, read_fraction=1.0,
                            distinct_items=False)
        generator = self._generator(instance, spec)
        touches = {}
        for _ in range(200):
            for op in generator.make_transaction().ops:
                touches[op.item] = touches.get(op.item, 0) + 1
        assert touches.get("x1", 0) > touches.get("x30", 0)

    def test_hotspot_access(self):
        instance = quick_instance(n_items=20)
        spec = WorkloadSpec(access="hotspot", hotspot_fraction=0.1,
                            hotspot_probability=0.9, read_fraction=1.0,
                            distinct_items=False)
        generator = self._generator(instance, spec)
        hot = 0
        total = 0
        hot_items = set(generator.items[:2])  # first two in sorted order
        for _ in range(200):
            for op in generator.make_transaction().ops:
                total += 1
                if op.item in hot_items:
                    hot += 1
        assert hot / total > 0.7

    def test_write_values_unique(self):
        instance = quick_instance(n_items=64)
        spec = WorkloadSpec(read_fraction=0.0)
        generator = self._generator(instance, spec)
        values = []
        for _ in range(10):
            values += [op.value for op in generator.make_transaction().ops]
        assert len(values) == len(set(values))

    def test_empty_directory_rejected(self):
        instance = quick_instance()
        with pytest.raises(WorkloadError):
            WorkloadGenerator(
                instance.sim, instance.network, {}, instance.catalog,
                WorkloadSpec(), random.Random(0), name="bad1",
            )

    def test_empty_catalog_rejected(self):
        instance = quick_instance()
        with pytest.raises(WorkloadError):
            WorkloadGenerator(
                instance.sim, instance.network, instance.directory, Catalog(),
                WorkloadSpec(), random.Random(0), name="bad2",
            )


class TestExecutionModes:
    def test_open_poisson_completes_all(self):
        instance = quick_instance(n_items=32, settle_time=30)
        spec = WorkloadSpec(n_transactions=12, arrival="poisson", arrival_rate=0.5)
        result = instance.run_workload(spec)
        assert result.statistics.finished == 12
        assert len(result.outcomes) == 12

    def test_open_uniform_arrivals(self):
        instance = quick_instance(n_items=32, settle_time=30)
        spec = WorkloadSpec(n_transactions=6, arrival="uniform", arrival_rate=1.0)
        result = instance.run_workload(spec)
        assert result.statistics.finished == 6

    def test_closed_mode_completes_quota(self):
        instance = quick_instance(n_items=32, settle_time=30)
        spec = WorkloadSpec(n_transactions=10, arrival="closed", mpl=3, think_time=1.0)
        result = instance.run_workload(spec)
        assert result.statistics.finished == 10

    def test_closed_mpl_capped_by_total(self):
        instance = quick_instance(n_items=32, settle_time=30)
        spec = WorkloadSpec(n_transactions=2, arrival="closed", mpl=10)
        result = instance.run_workload(spec)
        assert result.statistics.finished == 2

    def test_zero_transactions_is_fine(self):
        instance = quick_instance(n_items=8, settle_time=5)
        result = instance.run_workload(WorkloadSpec(n_transactions=0))
        assert result.statistics.finished == 0

    def test_restart_on_abort_retries(self):
        instance = quick_instance(n_items=4, settle_time=40)
        # Tiny DB + closed high MPL: aborts guaranteed.
        spec = WorkloadSpec(
            n_transactions=12, arrival="closed", mpl=6,
            min_ops=2, max_ops=3, read_fraction=0.2,
            restart_on_abort=True, max_restarts=3, restart_delay=2.0,
        )
        result = instance.run_workload(spec)
        attempts = [outcome.attempts for outcome in result.outcomes]
        assert max(attempts) > 1  # at least one restart happened
        assert len(result.outcomes) == 12

    def test_outcomes_track_status_and_template(self):
        instance = quick_instance(n_items=32, settle_time=30)
        spec = WorkloadSpec(n_transactions=5)
        result = instance.run_workload(spec)
        for outcome in result.outcomes:
            assert outcome.status in ("COMMITTED", "ABORTED", "LOST")
            assert outcome.template_id > 0


class TestManualWorkload:
    def test_manual_submission_and_outcomes(self):
        instance = quick_instance(n_items=8, settle_time=20)
        manual = instance.manual_workload()
        t1 = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        t2 = Transaction(ops=[Operation.read("x1")], home_site="site2")
        manual.add(t1, at=0.0).add(t2, at=30.0)
        result = instance.run_manual(manual)
        assert len(result.outcomes) == 2
        statuses = {o.txn_id: o.status for o in result.outcomes}
        assert statuses[t1.txn_id] == "COMMITTED"
        assert statuses[t2.txn_id] == "COMMITTED"
        # t2 ran after t1 committed: it must have read 5.
        assert t2.reads["x1"] == 5

    def test_manual_unknown_home_rejected(self):
        instance = quick_instance(n_items=8)
        manual = instance.manual_workload()
        manual.add(Transaction(ops=[Operation.read("x1")], home_site="ghost"))
        process = manual.run()
        with pytest.raises(WorkloadError):
            instance.sim.run(until=process)
