"""Tests for the GUI applet façade details and the ASCII panels."""

import pytest

from repro.core.config import ProtocolConfig
from repro.gui.applet import GuiApplet, rainbow_url
from repro.gui.panels import (
    render_box,
    render_functional_architecture,
    render_login_panel,
    render_manual_workload_panel,
    render_physical_architecture,
    render_protocol_panel,
    render_replication_panel,
    render_session_panel,
    render_table,
)
from repro.monitor.stats import ProgressMonitor
from repro.nameserver.catalog import Catalog
from repro.txn.transaction import Operation, Transaction
from repro.web.tier import RainbowWebTier
from tests.conftest import quick_instance


class TestUrl:
    def test_rainbow_url_form(self):
        assert rainbow_url("myhost") == "http://myhost:8080/RainbowDemo.html"
        assert rainbow_url("h", port=9000) == "http://h:9000/RainbowDemo.html"

    def test_applet_url_points_to_home(self):
        instance = quick_instance(n_sites=2, n_items=4)
        instance.start()
        tier = RainbowWebTier(instance, home_host="rainbow-home")
        applet = GuiApplet(tier)
        assert applet.url == "http://rainbow-home:8080/RainbowDemo.html"
        assert applet.home_address == "rainbow-home/servletrunner"


class TestRenderPrimitives:
    def test_box_contains_title_and_lines(self):
        box = render_box("My Panel", ["line one", "line two"])
        assert "My Panel" in box
        assert "line one" in box
        assert box.splitlines()[0].startswith("+--")
        assert box.splitlines()[-1].startswith("+--") or box.splitlines()[-1].startswith("+-")

    def test_box_truncates_long_lines(self):
        box = render_box("T", ["x" * 500], width=40)
        assert all(len(line) <= 42 for line in box.splitlines())

    def test_table_aligns_columns(self):
        lines = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, two rows


class TestPanels:
    def test_login_panel_states(self):
        panel = render_login_panel("home", "http://home:8080/RainbowDemo.html")
        assert "awaiting authorization" in panel
        admin = render_login_panel("home", "u", logged_in_as="admin")
        assert "Administration" in admin
        student = render_login_panel("home", "u", logged_in_as="student")
        assert "Administration" not in student

    def test_protocol_panel_marks_selection(self):
        panel = render_protocol_panel(ProtocolConfig(rcp="ROWA", ccp="TSO", acp="3PC"))
        assert "(o) ROWA" in panel
        assert "( ) QC" in panel
        assert "(o) TSO" in panel
        assert "(o) 3PC" in panel

    def test_replication_panel_grid(self):
        catalog = Catalog()
        catalog.add_item("a", placement={"s1": 2, "s2": 1})
        catalog.add_item("b", placement={"s2": 1})
        catalog.define_fragment("f", ["a"])
        panel = render_replication_panel(catalog)
        assert "v=2" in panel
        assert "votes" in panel
        assert "Fragments:" in panel
        assert "f: a" in panel

    def test_manual_workload_panel_shows_ops_and_outcomes(self):
        txn = Transaction(ops=[Operation.read("x"), Operation.write("y", 3)],
                          home_site="s1")
        panel = render_manual_workload_panel([txn], {txn.txn_id: "COMMITTED"})
        assert "r[x] w[y=3]" in panel
        assert "COMMITTED" in panel

    def test_session_panel_includes_stats_and_recent(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        txn = Transaction(ops=[Operation.read("x")], home_site="s1")
        txn.status = "COMMITTED"
        txn.submitted_at, txn.decided_at = 0.0, 2.0
        monitor.txn_finished(txn)
        panel = render_session_panel(monitor.output_statistics(), monitor.records)
        assert "Committed transactions" in panel
        assert f"T{txn.txn_id}" in panel
        assert "2.00" in panel

    def test_functional_architecture_mentions_tiers(self):
        panel = render_functional_architecture()
        assert "GUI" in panel
        assert "Web Middle Tier" in panel
        assert "Rainbow Core" in panel
        assert "NSRunnerlet" in panel

    def test_physical_architecture_lists_hosts(self):
        instance = quick_instance(n_sites=4, n_items=4, settle_time=5)
        instance.start()
        tier = RainbowWebTier(instance)
        panel = render_physical_architecture(
            tier.placement_table(),
            sites_by_host={"host1": ["site1"]},
            ns_host=instance.nameserver.host,
        )
        assert "rainbow-home:" in panel
        assert "name server" in panel
        assert "servletrunner" in panel or "auth" in panel
