"""Tests for the web middle tier: runners, servlets, routing, auth."""

import pytest

from repro.errors import AuthorizationError, WebTierError
from repro.gui.applet import GuiApplet
from repro.net.message import MessageType
from repro.txn.transaction import Operation, Transaction
from repro.web.requests import WebRequest, WebResponse
from repro.web.tier import RainbowWebTier
from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance


@pytest.fixture
def domain():
    instance = quick_instance(n_sites=4, n_items=8, settle_time=20)
    instance.start()
    tier = RainbowWebTier(instance)
    return instance, tier


def logged_in_applet(tier, user="student", password="student"):
    applet = GuiApplet(tier)
    applet.login(user, password)
    return applet


class TestEnvelopes:
    def test_request_roundtrip(self):
        request = WebRequest("pmlet", "statistics", {"a": 1}, token="t")
        clone = WebRequest.from_payload(request.to_payload())
        assert clone == request

    def test_response_roundtrip(self):
        response = WebResponse.success({"x": 1})
        clone = WebResponse.from_payload(response.to_payload())
        assert clone.ok and clone.data == {"x": 1}

    def test_failure_helper(self):
        response = WebResponse.failure("nope")
        assert not response.ok
        assert response.error == "nope"


class TestPlacementRules:
    def test_home_host_has_four_jumpoff_servlets(self, domain):
        _instance, tier = domain
        home = tier.runners[tier.home_host]
        for name in ("nsrunnerlet", "siterunnerlet", "wlglet", "pmlet", "auth"):
            assert home.has(name)

    def test_nslet_only_on_ns_host(self, domain):
        _instance, tier = domain
        assert tier.runners[tier.ns_host].has("nslet")
        assert not tier.runners[tier.home_host].has("nslet")

    def test_sitelet_on_every_site_host(self, domain):
        instance, tier = domain
        for host in {site.host for site in instance.sites.values()}:
            assert tier.runners[host].has("sitelet")

    def test_every_domain_host_has_a_runner(self, domain):
        instance, tier = domain
        hosts = {site.host for site in instance.sites.values()}
        hosts.add(tier.ns_host)
        hosts.add(tier.home_host)
        assert set(tier.runners) == hosts

    def test_placement_table_lists_servlets(self, domain):
        _instance, tier = domain
        table = dict(tier.placement_table())
        assert "sitelet" in table[list(table)[0]] or any(
            "sitelet" in servlets for servlets in table.values()
        )


class TestAuth:
    def test_login_logout(self, domain):
        _instance, tier = domain
        applet = GuiApplet(tier)
        role = applet.login("admin", "admin")
        assert role == "admin"
        assert tier.role_of(applet.token) == "admin"
        applet.logout()
        assert applet.token is None

    def test_bad_password_rejected(self, domain):
        _instance, tier = domain
        applet = GuiApplet(tier)
        with pytest.raises(AuthorizationError):
            applet.login("student", "wrong")

    def test_unauthenticated_request_refused(self, domain):
        _instance, tier = domain
        applet = GuiApplet(tier)
        response = applet.call("pmlet", "statistics")
        assert not response.ok
        assert "not logged in" in response.error

    def test_admin_only_action_refused_for_student(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        response = applet.call(
            "nsrunnerlet", "configure_quorums",
            {"item": "x1", "read_quorum": 1, "write_quorum": 3},
        )
        assert not response.ok
        assert "requires role" in response.error

    def test_admin_can_reconfigure_quorums(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier, "admin", "admin")
        response = applet.call(
            "nsrunnerlet", "configure_quorums",
            {"item": "x1", "read_quorum": 1, "write_quorum": 3},
        )
        assert response.ok
        assert instance.nameserver.catalog.item("x1").read_quorum == 1

    def test_custom_user_table(self):
        instance = quick_instance(n_sites=2, n_items=4)
        instance.start()
        tier = RainbowWebTier(instance, users={"ta": ("secret", "admin")})
        applet = GuiApplet(tier)
        assert applet.login("ta", "secret") == "admin"
        with pytest.raises(AuthorizationError):
            GuiApplet(tier).login("student", "student")


class TestRouting:
    def test_applet_only_talks_to_home(self, domain):
        """Every applet request targets the home runner's address."""
        instance, tier = domain
        applet = logged_in_applet(tier)
        seen = []
        instance.network.add_observer(
            lambda msg, outcome: seen.append(msg.dst)
            if msg.mtype == MessageType.WEB_REQUEST and msg.src == applet.endpoint.address
            else None
        )
        applet.site_stats("site3")
        assert seen
        assert all(dst == tier.home_address for dst in seen)

    def test_site_stats_forwarded_two_hops(self, domain):
        """site_stats crosses home -> sitelet host when site is remote."""
        instance, tier = domain
        applet = logged_in_applet(tier)
        stats = applet.site_stats("site2")
        assert stats["up"] is True
        assert stats["items"] > 0
        # A forwarded WEB_REQUEST must have left the home host.
        forwards = instance.network.stats.by_type.get(MessageType.WEB_REQUEST, 0)
        assert forwards >= 2  # applet->home plus home->sitelet

    def test_unknown_servlet_reported(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        response = applet.call("ghostlet", "x")
        assert not response.ok
        assert "no servlet" in response.error

    def test_unknown_action_reported(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        response = applet.call("pmlet", "dance")
        assert not response.ok

    def test_unknown_site_reported(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        with pytest.raises(WebTierError):
            applet.site_stats("ghost")


class TestManagementActions:
    def test_lookup_sites_and_catalog(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        sites = applet.lookup_sites()
        assert [s["name"] for s in sites] == ["site1", "site2", "site3", "site4"]
        catalog = applet.get_catalog()
        assert set(catalog["items"]) == set(instance.catalog.item_names())

    def test_ns_status(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        status = applet.ns_status()
        assert status["up"] is True
        assert status["n_sites"] == 4

    def test_crash_and_recover_site(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        assert applet.crash_site("site2")["up"] is False
        assert not instance.sites["site2"].up
        assert applet.recover_site("site2")["up"] is True
        # The injector logged both events.
        assert [e.kind for e in instance.injector.log] == ["crash", "recover"]

    def test_submit_transaction_via_wlglet(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        outcome = applet.submit_transaction(txn)
        assert outcome["status"] == "COMMITTED"
        assert instance.monitor.submitted == 1

    def test_start_workload_and_poll(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        workload_id = applet.start_workload(
            WorkloadSpec(n_transactions=6, arrival_rate=1.0, min_ops=2, max_ops=3)
        )
        instance.sim.run(until=instance.sim.now + 200)
        status = applet.workload_status(workload_id)
        assert status["done"] is True
        assert status["outcomes"] == 6

    def test_workload_spec_as_dict(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        workload_id = applet.start_workload(
            {"n_transactions": 2, "arrival_rate": 1.0, "min_ops": 1, "max_ops": 2}
        )
        instance.sim.run(until=instance.sim.now + 150)
        assert applet.workload_status(workload_id)["done"]

    def test_statistics_through_pmlet(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        applet.submit_transaction(txn)
        stats = applet.statistics()
        assert stats["committed"] == 1
        assert stats["messages_total"] > 0

    def test_site_statistics_fanout(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        merged = applet.site_statistics()
        assert set(merged) == {"site1", "site2", "site3", "site4"}
        assert all("messages_handled" in stats for stats in merged.values())

    def test_timeseries_exposed(self, domain):
        instance, tier = domain
        applet = logged_in_applet(tier)
        instance.monitor.sample()
        series = applet.timeseries()
        assert "t" in series and len(series["t"]) == 1

    def test_site_state_snapshot(self, domain):
        _instance, tier = domain
        applet = logged_in_applet(tier)
        response = applet.call("siterunnerlet", "site_state", {"site": "site1"})
        assert response.ok
        assert isinstance(response.data["snapshot"], dict)
