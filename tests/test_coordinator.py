"""Tests for the transaction coordinator and its context."""

import pytest

from repro.txn.coordinator import AccessResult, CoordinatorConfig, TxnContext
from repro.txn.transaction import Operation, Transaction, TxnStatus
from tests.conftest import quick_instance


def run_txn(instance, txn):
    process = instance.submit(txn)
    instance.sim.run(until=process)
    return txn


class TestLifecycle:
    def test_timestamps_assigned_and_unique(self):
        instance = quick_instance(n_items=8)
        t1 = Transaction(ops=[Operation.read("x1")], home_site="site1")
        t2 = Transaction(ops=[Operation.read("x1")], home_site="site2")
        p1, p2 = instance.submit(t1), instance.submit(t2)
        instance.sim.run(until=instance.sim.all_of([p1, p2]))
        assert t1.ts != t2.ts
        assert t1.started_at is not None
        assert t1.finished_at is not None
        assert t1.decided_at is not None

    def test_ops_processed_in_order(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(
            ops=[
                Operation.write("x1", 5),
                Operation.read("x1"),  # must see own write
                Operation.read("x3"),
            ],
            home_site="site1",
        )
        run_txn(instance, txn)
        assert txn.committed
        assert txn.reads["x1"] == 5
        assert txn.reads["x3"] == 0

    def test_version_footprint_recorded(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(
            ops=[Operation.read("x1"), Operation.write("x3", 1)], home_site="site1"
        )
        run_txn(instance, txn)
        assert txn.read_versions == {"x1": 0}
        assert txn.write_versions == {"x3": 1}

    def test_monitor_notified_of_both_phases(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        run_txn(instance, txn)
        assert instance.monitor.submitted == 1
        assert instance.monitor.started == 1
        assert instance.monitor.committed == 1

    def test_abort_classification_ccp(self):
        instance = quick_instance(n_items=8)
        instance.start()
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site1")
        instance.sites["site1"].cc.doom(txn.txn_id)
        run_txn(instance, txn)
        assert txn.status == TxnStatus.ABORTED
        assert txn.abort_cause == "CCP"

    def test_aborted_txn_releases_remote_state(self):
        instance = quick_instance(n_items=8, settle_time=0)
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x2", 1), Operation.write("x1", 1)],
            home_site="site1",
        )
        # Doom at home so the second op fails after the first prewrote
        # remotely (x2 lives on site2..site4).
        instance.sites["site1"].cc.doom(txn.txn_id)
        run_txn(instance, txn)
        assert txn.aborted
        instance.sim.run(until=instance.sim.now + 30)
        for site in instance.sites.values():
            assert txn.txn_id not in site.cc.active_transactions()


class TestContextHelpers:
    def _context(self, instance, txn):
        instance.start()
        return TxnContext(
            txn,
            instance.sites[txn.home_site],
            instance.catalog,
            instance.directory,
            instance.coordinator_config,
            instance.monitor,
        )

    def test_order_local_first(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.read("x1")], home_site="site2")
        ctx = self._context(instance, txn)
        ordered = ctx.order_local_first(["site1", "site2", "site3"])
        assert ordered[0] == "site2"
        assert sorted(ordered) == ["site1", "site2", "site3"]

    def test_order_local_first_when_not_holder(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.read("x1")], home_site="site4")
        ctx = self._context(instance, txn)
        assert ctx.order_local_first(["site1", "site2"]) == ["site1", "site2"]

    def test_access_read_local_no_messages(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        txn.ts = 1.0
        ctx = self._context(instance, txn)
        before = instance.network.stats.sent

        def run():
            result = yield from ctx.access_read("site1", "x1")
            return result

        process = instance.sim.process(run())
        result = instance.sim.run(until=process)
        assert result.ok
        assert result.value == 0
        assert instance.network.stats.sent == before

    def test_access_read_remote_reports_net_failure(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.read("x2")], home_site="site1")
        txn.ts = 1.0
        ctx = self._context(instance, txn)
        ctx.config.op_timeout = 5
        instance.sites["site2"].crash()

        def run():
            result = yield from ctx.access_read("site2", "x2")
            return result

        process = instance.sim.process(run())
        result = instance.sim.run(until=process)
        assert not result.ok
        assert result.kind == "net"

    def test_participants_registered_with_versions(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site1")
        run_txn(instance, txn)
        # Participants are internal to the context, but their effect is
        # visible: w=2 sites saw the write, all were released.
        holders = instance.catalog.sites_holding("x1")
        updated = [
            name for name in holders
            if instance.sites[name].store.read("x1")[0] == 1
        ]
        assert len(updated) == 2


class TestConfig:
    def test_defaults(self):
        config = CoordinatorConfig()
        assert config.rcp == "QC"
        assert config.acp == "2PC"
        assert config.failpoint is None

    def test_access_result_defaults(self):
        result = AccessResult(ok=True, site="s1", value=3, version=2)
        assert result.kind is None
        assert result.reason == ""
