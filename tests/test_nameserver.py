"""Unit tests for the name server."""

import pytest

from repro.errors import CatalogError, RpcTimeout
from repro.nameserver.server import NameServer
from repro.net.message import MessageType
from tests.conftest import drive


@pytest.fixture
def ns(sim, network):
    server = NameServer(sim, network, "ns-host")
    server.catalog.add_item("x", placement=["s1", "s2"])
    return server


class TestRegistry:
    def test_register_and_lookup(self, ns):
        ns.register_site("s1", "h1/s1", "h1")
        assert ns.site_info("s1").address == "h1/s1"
        assert ns.address_of("s1") == "h1/s1"
        assert ns.site_names() == ["s1"]

    def test_duplicate_rejected(self, ns):
        ns.register_site("s1", "h1/s1", "h1")
        with pytest.raises(CatalogError):
            ns.register_site("s1", "h1/s1b", "h1")

    def test_unknown_site_rejected(self, ns):
        with pytest.raises(CatalogError):
            ns.site_info("ghost")

    def test_sites_sorted(self, ns):
        ns.register_site("s2", "h2/s2", "h2")
        ns.register_site("s1", "h1/s1", "h1")
        assert [info.name for info in ns.sites()] == ["s1", "s2"]


class TestService:
    def _client(self, network):
        return network.endpoint("hc", "client")

    def test_ns_lookup_all(self, sim, network, ns):
        ns.register_site("s1", "h1/s1", "h1")
        client = self._client(network)

        def run():
            reply = yield client.request(ns.address, MessageType.NS_LOOKUP, {}, timeout=10)
            return reply.payload["sites"]

        sites = drive(sim, run())
        assert sites == [{"name": "s1", "address": "h1/s1", "host": "h1"}]

    def test_ns_lookup_single(self, sim, network, ns):
        ns.register_site("s1", "h1/s1", "h1")
        ns.register_site("s2", "h2/s2", "h2")
        client = self._client(network)

        def run():
            reply = yield client.request(
                ns.address, MessageType.NS_LOOKUP, {"site": "s2"}, timeout=10
            )
            return reply.payload["sites"]

        assert [s["name"] for s in drive(sim, run())] == ["s2"]

    def test_ns_catalog_roundtrip(self, sim, network, ns):
        client = self._client(network)

        def run():
            reply = yield client.request(ns.address, MessageType.NS_CATALOG, {}, timeout=10)
            return reply.payload["catalog"]

        catalog = drive(sim, run())
        assert "x" in catalog["items"]

    def test_ns_register_via_message(self, sim, network, ns):
        client = self._client(network)

        def run():
            reply = yield client.request(
                ns.address,
                MessageType.NS_REGISTER,
                {"name": "s9", "address": "h9/s9", "host": "h9"},
                timeout=10,
            )
            return reply.payload

        assert drive(sim, run())["ok"]
        assert ns.address_of("s9") == "h9/s9"

    def test_unknown_request_answered_with_error(self, sim, network, ns):
        client = self._client(network)

        def run():
            reply = yield client.request(ns.address, "NS_WEIRD", {}, timeout=10)
            return reply.payload

        assert "error" in drive(sim, run())

    def test_crashed_ns_does_not_answer(self, sim, network, ns):
        client = self._client(network)
        ns.crash()

        def run():
            with pytest.raises(RpcTimeout):
                yield client.request(ns.address, MessageType.NS_LOOKUP, {}, timeout=5)
            return "timed out"

        assert drive(sim, run()) == "timed out"

    def test_recovered_ns_answers_again(self, sim, network, ns):
        ns.register_site("s1", "h1/s1", "h1")
        client = self._client(network)
        ns.crash()
        ns.recover()

        def run():
            reply = yield client.request(ns.address, MessageType.NS_LOOKUP, {}, timeout=10)
            return reply.payload["sites"]

        assert len(drive(sim, run())) == 1  # metadata survived the crash
        assert ns.queries_served >= 1
