"""Unit tests for histories and the serializability checker."""

from repro.txn.history import HistoryRecorder, SerializationGraph


class TestSerializationGraph:
    def test_empty_graph_acyclic(self):
        graph = SerializationGraph()
        assert graph.find_cycle() is None
        assert graph.topological_order() == []

    def test_self_edge_ignored(self):
        graph = SerializationGraph()
        graph.add_edge(1, 1)
        assert graph.find_cycle() is None

    def test_chain_is_acyclic_with_order(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.find_cycle() is None
        assert graph.topological_order() == [1, 2, 3]

    def test_two_cycle_found(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2}
        assert graph.topological_order() is None

    def test_long_cycle_found(self):
        graph = SerializationGraph()
        for a, b in [(1, 2), (2, 3), (3, 4), (4, 1)]:
            graph.add_edge(a, b)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2, 3, 4}

    def test_disconnected_components(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2)
        graph.add_edge(10, 11)
        graph.add_edge(11, 10)
        assert graph.find_cycle() is not None

    def test_diamond_acyclic(self):
        graph = SerializationGraph()
        for a, b in [(1, 2), (1, 3), (2, 4), (3, 4)]:
            graph.add_edge(a, b)
        assert graph.find_cycle() is None
        order = graph.topological_order()
        assert order.index(1) < order.index(2) < order.index(4)
        assert order.index(1) < order.index(3) < order.index(4)


class TestHistoryRecorder:
    def test_wr_edge(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={}, writes={"x": 1})
        recorder.record_commit(2, reads={"x": 1}, writes={})
        graph = recorder.build_graph()
        assert 2 in graph.edges[1]

    def test_ww_edges_follow_version_order(self):
        recorder = HistoryRecorder()
        recorder.record_commit(5, reads={}, writes={"x": 2})
        recorder.record_commit(4, reads={}, writes={"x": 1})
        graph = recorder.build_graph()
        assert 5 in graph.edges[4]

    def test_rw_edge_to_next_writer(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={"x": 0}, writes={})
        recorder.record_commit(2, reads={}, writes={"x": 1})
        graph = recorder.build_graph()
        assert 2 in graph.edges[1]

    def test_serial_history_passes(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={"x": 0}, writes={"x": 1})
        recorder.record_commit(2, reads={"x": 1}, writes={"x": 2})
        recorder.record_commit(3, reads={"x": 2}, writes={})
        ok, order = recorder.check_serializable()
        assert ok
        assert order == [1, 2, 3]

    def test_lost_update_anomaly_detected(self):
        """Classic lost update: both read v0, both write -> cycle."""
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={"x": 0}, writes={"x": 1})
        recorder.record_commit(2, reads={"x": 0}, writes={"x": 2})
        ok, cycle = recorder.check_serializable()
        assert not ok
        assert set(cycle) == {1, 2}

    def test_write_skew_anomaly_detected(self):
        """T1 reads x writes y; T2 reads y writes x — both from v0."""
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={"x": 0}, writes={"y": 1})
        recorder.record_commit(2, reads={"y": 0}, writes={"x": 1})
        ok, cycle = recorder.check_serializable()
        assert not ok

    def test_read_only_transactions_always_fit(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={}, writes={"x": 1})
        recorder.record_commit(2, reads={"x": 1}, writes={})
        recorder.record_commit(3, reads={"x": 0}, writes={})
        ok, _order = recorder.check_serializable()
        assert ok

    def test_reads_see_committed_versions_clean(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={}, writes={"x": 1})
        recorder.record_commit(2, reads={"x": 1}, writes={})
        assert recorder.reads_see_committed_versions() == []

    def test_reads_see_committed_versions_flags_phantom_version(self):
        recorder = HistoryRecorder()
        recorder.record_commit(2, reads={"x": 7}, writes={})
        problems = recorder.reads_see_committed_versions()
        assert len(problems) == 1
        assert "x@7" in problems[0]

    def test_initial_version_zero_is_fine(self):
        recorder = HistoryRecorder()
        recorder.record_commit(2, reads={"x": 0}, writes={})
        assert recorder.reads_see_committed_versions() == []

    def test_len_counts_commits(self):
        recorder = HistoryRecorder()
        assert len(recorder) == 0
        recorder.record_commit(1, reads={}, writes={})
        assert len(recorder) == 1

    def test_multi_item_interleaving_acyclic(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={"a": 0}, writes={"a": 1})
        recorder.record_commit(2, reads={"b": 0}, writes={"b": 1})
        recorder.record_commit(3, reads={"a": 1, "b": 1}, writes={})
        ok, order = recorder.check_serializable()
        assert ok
        assert order.index(1) < order.index(3)
        assert order.index(2) < order.index(3)
