"""Unit tests for the fault/recovery injector."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import FaultInjector, FaultSchedule
from repro.net.network import Network
from repro.sim.kernel import Simulator


class FakeTarget:
    """Minimal Crashable."""

    def __init__(self, name):
        self.name = name
        self.up = True
        self.transitions = []

    def crash(self):
        self.up = False
        self.transitions.append("crash")

    def recover(self):
        self.up = True
        self.transitions.append("recover")


@pytest.fixture
def injector(sim, network):
    return FaultInjector(sim, network)


class TestRegistry:
    def test_register_and_lookup(self, injector):
        target = FakeTarget("s1")
        injector.register(target)
        assert injector.target("s1") is target
        assert injector.targets() == ["s1"]

    def test_duplicate_rejected(self, injector):
        injector.register(FakeTarget("s1"))
        with pytest.raises(ConfigurationError):
            injector.register(FakeTarget("s1"))

    def test_unknown_target_rejected(self, injector):
        with pytest.raises(ConfigurationError):
            injector.target("ghost")


class TestScheduledFaults:
    def test_crash_and_recover_at_times(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.schedule_crash("s1", at=10)
        injector.schedule_recovery("s1", at=20)
        sim.run(until=15)
        assert not target.up
        sim.run(until=25)
        assert target.up
        assert [e.kind for e in injector.log] == ["crash", "recover"]
        assert [e.time for e in injector.log] == [10, 20]

    def test_crash_now(self, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.crash_now("s1")
        assert not target.up

    def test_schedule_in_past_fires_immediately(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        sim.run(until=10)
        injector.schedule_crash("s1", at=5)
        sim.run(until=10.1)
        assert not target.up
        assert injector.log[0].time == 10.0

    def test_partition_and_heal_scheduled(self, sim, network, injector):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        injector.schedule_partition([["h1"], ["h2"]], at=5)
        injector.schedule_heal(at=15)
        sim.run(until=6)
        a.send(b.address, "X")
        sim.run(until=16)
        assert network.stats.dropped == 1
        a.send(b.address, "X")
        sim.run()
        assert b.pending_count() == 1

    def test_link_cut_with_restore(self, sim, network, injector):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        injector.schedule_link_cut("h1", "h2", at=2, restore_at=8)
        sim.run(until=3)
        a.send(b.address, "X")
        sim.run(until=9)
        assert network.stats.dropped == 1
        a.send(b.address, "X")
        sim.run()
        assert b.pending_count() == 1
        kinds = [e.kind for e in injector.log]
        assert kinds == ["link_cut", "link_restore"]

    def test_restore_before_cut_rejected(self, injector):
        with pytest.raises(ConfigurationError):
            injector.schedule_link_cut("a", "b", at=10, restore_at=5)

    def test_apply_schedule(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        schedule = FaultSchedule(crashes=[("s1", 3)], recoveries=[("s1", 6)])
        injector.apply_schedule(schedule)
        sim.run()
        assert target.transitions == ["crash", "recover"]


class TestRandomFaults:
    def test_crash_recover_cycles(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.random_crash_recover(["s1"], mttf=10, mttr=5, rng=random.Random(1), until=200)
        sim.run()
        assert injector.crash_count() >= 3
        # Left healed at horizon.
        assert target.up

    def test_invalid_mttf_rejected(self, injector):
        injector.register(FakeTarget("s1"))
        with pytest.raises(ConfigurationError):
            injector.random_crash_recover(["s1"], mttf=0, mttr=5, rng=random.Random(0))

    def test_unknown_random_target_rejected(self, injector):
        with pytest.raises(ConfigurationError):
            injector.random_crash_recover(["ghost"], mttf=5, mttr=5, rng=random.Random(0))


class TestDowntimeReport:
    def test_downtime_accumulates(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.schedule_crash("s1", at=10)
        injector.schedule_recovery("s1", at=30)
        injector.schedule_crash("s1", at=50)
        injector.schedule_recovery("s1", at=55)
        sim.run()
        assert injector.downtime_report() == {"s1": 25.0}

    def test_still_down_counts_to_now(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.schedule_crash("s1", at=10)
        sim.timeout(40)
        sim.run()
        assert injector.downtime_report() == {"s1": 30.0}

    def test_empty_log_empty_report(self, injector):
        assert injector.downtime_report() == {}
