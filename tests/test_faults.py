"""Unit tests for the fault/recovery injector."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import FaultInjector, FaultSchedule
from repro.net.network import Network
from repro.sim.kernel import Simulator


class FakeTarget:
    """Minimal Crashable."""

    def __init__(self, name):
        self.name = name
        self.up = True
        self.transitions = []

    def crash(self):
        self.up = False
        self.transitions.append("crash")

    def recover(self):
        self.up = True
        self.transitions.append("recover")


@pytest.fixture
def injector(sim, network):
    return FaultInjector(sim, network)


class TestRegistry:
    def test_register_and_lookup(self, injector):
        target = FakeTarget("s1")
        injector.register(target)
        assert injector.target("s1") is target
        assert injector.targets() == ["s1"]

    def test_duplicate_rejected(self, injector):
        injector.register(FakeTarget("s1"))
        with pytest.raises(ConfigurationError):
            injector.register(FakeTarget("s1"))

    def test_unknown_target_rejected(self, injector):
        with pytest.raises(ConfigurationError):
            injector.target("ghost")


class TestScheduledFaults:
    def test_crash_and_recover_at_times(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.schedule_crash("s1", at=10)
        injector.schedule_recovery("s1", at=20)
        sim.run(until=15)
        assert not target.up
        sim.run(until=25)
        assert target.up
        assert [e.kind for e in injector.log] == ["crash", "recover"]
        assert [e.time for e in injector.log] == [10, 20]

    def test_crash_now(self, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.crash_now("s1")
        assert not target.up

    def test_schedule_in_past_fires_immediately(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        sim.run(until=10)
        injector.schedule_crash("s1", at=5)
        sim.run(until=10.1)
        assert not target.up
        assert injector.log[0].time == 10.0

    def test_partition_and_heal_scheduled(self, sim, network, injector):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        injector.schedule_partition([["h1"], ["h2"]], at=5)
        injector.schedule_heal(at=15)
        sim.run(until=6)
        a.send(b.address, "X")
        sim.run(until=16)
        assert network.stats.dropped == 1
        a.send(b.address, "X")
        sim.run()
        assert b.pending_count() == 1

    def test_link_cut_with_restore(self, sim, network, injector):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        injector.schedule_link_cut("h1", "h2", at=2, restore_at=8)
        sim.run(until=3)
        a.send(b.address, "X")
        sim.run(until=9)
        assert network.stats.dropped == 1
        a.send(b.address, "X")
        sim.run()
        assert b.pending_count() == 1
        kinds = [e.kind for e in injector.log]
        assert kinds == ["link_cut", "link_restore"]

    def test_restore_before_cut_rejected(self, injector):
        with pytest.raises(ConfigurationError):
            injector.schedule_link_cut("a", "b", at=10, restore_at=5)

    def test_apply_schedule(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        schedule = FaultSchedule(crashes=[("s1", 3)], recoveries=[("s1", 6)])
        injector.apply_schedule(schedule)
        sim.run()
        assert target.transitions == ["crash", "recover"]

    def test_flaky_link_window(self, sim, network, injector):
        a = network.endpoint("h1", "a")
        network.endpoint("h2", "b")
        injector.schedule_flaky_link("h1", "h2", start=5, end=15, loss=0.5)
        sim.run(until=6)
        assert frozenset(("h1", "h2")) in network._flaky_links
        sim.run(until=16)
        assert network._flaky_links == {}
        kinds = [e.kind for e in injector.log]
        assert kinds == ["flaky_link", "flaky_clear"]
        assert a.up  # nothing crashed

    def test_flaky_window_must_be_positive(self, injector):
        with pytest.raises(ConfigurationError):
            injector.schedule_flaky_link("h1", "h2", start=10, end=10)

    def test_apply_schedule_installs_flaky_links(self, sim, network, injector):
        network.endpoint("h1", "a")
        network.endpoint("h2", "b")
        schedule = FaultSchedule(flaky_links=[("h1", "h2", 2.0, 8.0, 0.3, 0.1)])
        injector.apply_schedule(schedule)
        sim.run(until=3)
        assert network._flaky_links[frozenset(("h1", "h2"))] == (0.3, 0.1)
        sim.run()
        assert network._flaky_links == {}


class TestScheduleValidation:
    def test_unknown_crash_target(self, injector):
        with pytest.raises(ConfigurationError, match="unknown target 'ghost'"):
            injector.apply_schedule(FaultSchedule(crashes=[("ghost", 5)]))

    def test_recovery_not_after_crash(self, injector):
        injector.register(FakeTarget("s1"))
        with pytest.raises(ConfigurationError, match="not after its crash"):
            injector.apply_schedule(
                FaultSchedule(crashes=[("s1", 10)], recoveries=[("s1", 10)])
            )

    def test_more_recoveries_than_crashes(self, injector):
        injector.register(FakeTarget("s1"))
        with pytest.raises(ConfigurationError, match="recoveries for"):
            injector.apply_schedule(
                FaultSchedule(crashes=[("s1", 5)], recoveries=[("s1", 8), ("s1", 12)])
            )

    def test_paired_crash_recover_cycles_validate(self, sim, injector):
        injector.register(FakeTarget("s1"))
        injector.apply_schedule(
            FaultSchedule(
                crashes=[("s1", 5), ("s1", 20)], recoveries=[("s1", 10), ("s1", 25)]
            )
        )

    def test_partition_unknown_host(self, network, injector):
        network.endpoint("h1", "a")
        with pytest.raises(ConfigurationError, match="unknown host 'mars'"):
            injector.apply_schedule(
                FaultSchedule(partitions=[(5.0, [["h1"], ["mars"]])])
            )

    def test_partition_host_in_two_groups(self, network, injector):
        network.endpoint("h1", "a")
        network.endpoint("h2", "b")
        with pytest.raises(ConfigurationError, match="in two groups"):
            injector.apply_schedule(
                FaultSchedule(partitions=[(5.0, [["h1"], ["h1", "h2"]])])
            )

    def test_link_cut_unknown_host(self, network, injector):
        network.endpoint("h1", "a")
        with pytest.raises(ConfigurationError, match="unknown host 'mars'"):
            injector.apply_schedule(
                FaultSchedule(link_cuts=[("h1", "mars", 2.0, None)])
            )

    def test_flaky_link_bad_rate(self, network, injector):
        network.endpoint("h1", "a")
        network.endpoint("h2", "b")
        with pytest.raises(ConfigurationError, match="must be in"):
            injector.apply_schedule(
                FaultSchedule(flaky_links=[("h1", "h2", 2.0, 8.0, 1.5, 0.0)])
            )

    def test_invalid_schedule_installs_nothing(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        with pytest.raises(ConfigurationError):
            injector.apply_schedule(
                FaultSchedule(crashes=[("s1", 5)], recoveries=[("ghost", 8)])
            )
        sim.run()
        assert target.transitions == []  # validation happens before install


class TestRandomFaults:
    def test_crash_recover_cycles(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.random_crash_recover(["s1"], mttf=10, mttr=5, rng=random.Random(1), until=200)
        sim.run()
        assert injector.crash_count() >= 3
        # Left healed at horizon.
        assert target.up

    def test_invalid_mttf_rejected(self, injector):
        injector.register(FakeTarget("s1"))
        with pytest.raises(ConfigurationError):
            injector.random_crash_recover(["s1"], mttf=0, mttr=5, rng=random.Random(0))

    def test_unknown_random_target_rejected(self, injector):
        with pytest.raises(ConfigurationError):
            injector.random_crash_recover(["ghost"], mttf=5, mttr=5, rng=random.Random(0))


class TestDowntimeReport:
    def test_downtime_accumulates(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.schedule_crash("s1", at=10)
        injector.schedule_recovery("s1", at=30)
        injector.schedule_crash("s1", at=50)
        injector.schedule_recovery("s1", at=55)
        sim.run()
        assert injector.downtime_report() == {"s1": 25.0}

    def test_still_down_counts_to_now(self, sim, injector):
        target = FakeTarget("s1")
        injector.register(target)
        injector.schedule_crash("s1", at=10)
        sim.timeout(40)
        sim.run()
        assert injector.downtime_report() == {"s1": 30.0}

    def test_empty_log_empty_report(self, injector):
        assert injector.downtime_report() == {}
