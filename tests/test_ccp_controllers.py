"""Unit tests for the three concurrency controllers (2PL, TSO, MVTO)."""

import pytest

from repro.errors import ConcurrencyAbort
from repro.protocols.base import make_ccp
from repro.protocols.ccp.multiversion import MultiversionTimestampController
from repro.protocols.ccp.timestamp_ordering import TimestampOrderingController
from repro.protocols.ccp.two_phase_locking import TwoPhaseLockingController
from repro.site.storage import LocalStore
from tests.conftest import drive


@pytest.fixture
def store():
    store = LocalStore("s1")
    for item in ("x", "y", "z"):
        store.create_copy(item, initial_value=0)
    return store


def run_op(sim, generator):
    """Drive a controller generator op; returns its value or raises."""
    return drive(sim, generator)


class TestRegistry:
    def test_make_ccp_by_name(self, sim, store):
        assert isinstance(make_ccp("2pl", sim, store), TwoPhaseLockingController)
        assert isinstance(make_ccp("TSO", sim, store), TimestampOrderingController)
        assert isinstance(make_ccp("mvto", sim, store), MultiversionTimestampController)

    def test_unknown_ccp_rejected(self, sim, store):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            make_ccp("nope", sim, store)


class Test2PL:
    def test_read_returns_committed_value(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        assert run_op(sim, cc.read(1, 1.0, "x")) == (0, 0)

    def test_prewrite_buffers_and_returns_version(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        version = run_op(sim, cc.prewrite(1, 1.0, "x", 42))
        assert version == 0
        assert cc.buffered_writes(1) == {"x": 42}
        assert store.read("x") == (0, 0)  # not yet committed

    def test_read_your_own_write(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        run_op(sim, cc.prewrite(1, 1.0, "x", 42))
        value, _version = run_op(sim, cc.read(1, 1.0, "x"))
        assert value == 42

    def test_commit_applies_with_versions(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        run_op(sim, cc.prewrite(1, 1.0, "x", 42))
        cc.commit(1, {"x": 7})
        assert store.read("x") == (42, 7)
        assert cc.active_transactions() == set()
        assert cc.locks.held_locks(1) == {}

    def test_commit_without_version_increments(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        run_op(sim, cc.prewrite(1, 1.0, "x", 5))
        cc.commit(1, {})
        assert store.read("x") == (5, 1)

    def test_abort_discards_and_releases(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        run_op(sim, cc.prewrite(1, 1.0, "x", 42))
        cc.abort(1)
        assert store.read("x") == (0, 0)
        assert cc.locks.held_locks(1) == {}

    def test_conflicting_write_blocks_until_commit(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        run_op(sim, cc.prewrite(1, 1.0, "x", 1))
        log = []

        def second():
            yield from cc.prewrite(2, 2.0, "x", 2)
            log.append(sim.now)

        process = sim.process(second())
        sim.call_later(5, lambda: cc.commit(1, {}))
        sim.run(until=process)
        assert log == [5.0]

    def test_deadlock_victim_raises_concurrency_abort(self, sim, store):
        cc = TwoPhaseLockingController(sim, store, wait_timeout=None)

        def t1():
            yield from cc.prewrite(1, 1.0, "x", 1)
            yield sim.timeout(1)
            yield from cc.prewrite(1, 1.0, "y", 1)
            cc.commit(1, {})
            return "committed"

        def t2():
            yield from cc.prewrite(2, 2.0, "y", 2)
            yield sim.timeout(1)
            try:
                yield from cc.prewrite(2, 2.0, "x", 2)
            except ConcurrencyAbort:
                cc.abort(2)
                return "victim"

        p1, p2 = sim.process(t1()), sim.process(t2())
        sim.run()
        assert p2.value == "victim"
        assert p1.value == "committed"

    def test_doomed_txn_rejected(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        cc.doom(1)
        with pytest.raises(ConcurrencyAbort):
            run_op(sim, cc.read(1, 1.0, "x"))

    def test_reinstate_restores_workspace_and_locks(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        cc.reinstate(5, 2.0, {"x": 99})
        assert cc.buffered_writes(5) == {"x": 99}
        assert cc.locks.held_locks(5) == {"x": "X"}
        cc.commit(5, {"x": 3})
        assert store.read("x") == (99, 3)

    def test_clear_drops_everything(self, sim, store):
        cc = TwoPhaseLockingController(sim, store)
        run_op(sim, cc.prewrite(1, 1.0, "x", 1))
        cc.clear()
        assert cc.active_transactions() == set()
        assert cc.locks.held_locks(1) == {}


class TestTSO:
    def test_read_advances_read_ts(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        assert run_op(sim, cc.read(1, 5.0, "x")) == (0, 0)
        # A later prewrite with smaller ts must now be rejected.
        with pytest.raises(ConcurrencyAbort):
            run_op(sim, cc.prewrite(2, 3.0, "x", 9))

    def test_late_read_rejected(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 10.0, "x", 1))
        cc.commit(1, {})
        with pytest.raises(ConcurrencyAbort):
            run_op(sim, cc.read(2, 5.0, "x"))

    def test_late_prewrite_rejected_after_commit(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 10.0, "x", 1))
        cc.commit(1, {})
        with pytest.raises(ConcurrencyAbort):
            run_op(sim, cc.prewrite(2, 5.0, "x", 2))

    def test_read_waits_for_smaller_pending_prewrite(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 77))
        results = []

        def reader():
            value, _version = yield from cc.read(2, 8.0, "x")
            results.append((value, sim.now))

        process = sim.process(reader())
        sim.call_later(4, lambda: cc.commit(1, {}))
        sim.run(until=process)
        assert results == [(77, 4.0)]  # saw the committed value, after waiting

    def test_read_not_blocked_by_larger_pending_prewrite(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 10.0, "x", 77))
        value, _version = run_op(sim, cc.read(2, 5.0, "x"))
        assert value == 0  # reads the old committed value without waiting

    def test_abort_wakes_waiting_reader(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 77))
        results = []

        def reader():
            value, _version = yield from cc.read(2, 8.0, "x")
            results.append(value)

        process = sim.process(reader())
        sim.call_later(3, lambda: cc.abort(1))
        sim.run(until=process)
        assert results == [0]  # writer aborted; committed value unchanged

    def test_read_own_buffered_write(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 42))
        value, _version = run_op(sim, cc.read(1, 5.0, "x"))
        assert value == 42

    def test_wait_timeout_aborts_reader(self, sim, store):
        cc = TimestampOrderingController(sim, store, wait_timeout=10.0)
        run_op(sim, cc.prewrite(1, 5.0, "x", 77))  # never committed

        def reader():
            with pytest.raises(ConcurrencyAbort):
                yield from cc.read(2, 8.0, "x")
            return sim.now

        assert drive(sim, reader()) == 10.0

    def test_commit_sets_write_ts(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        run_op(sim, cc.prewrite(1, 7.0, "x", 1))
        cc.commit(1, {})
        with pytest.raises(ConcurrencyAbort):
            run_op(sim, cc.read(2, 6.0, "x"))

    def test_no_deadlocks_possible(self, sim, store):
        """Waits-for in TSO follows timestamp order, hence acyclic."""
        cc = TimestampOrderingController(sim, store, wait_timeout=None)
        run_op(sim, cc.prewrite(1, 1.0, "x", 1))
        run_op(sim, cc.prewrite(2, 2.0, "y", 2))

        def t1_reads_y():
            # ts=1 reads y: pending prewrite has ts=2 > 1, no wait.
            value, _v = yield from cc.read(1, 1.0, "y")
            return value

        assert drive(sim, t1_reads_y()) == 0

    def test_reinstate_restores_pending(self, sim, store):
        cc = TimestampOrderingController(sim, store)
        cc.reinstate(3, 5.0, {"x": 50})
        # A reader above ts=5 must wait on the reinstated pending prewrite.
        waited = []

        def reader():
            value, _v = yield from cc.read(4, 8.0, "x")
            waited.append((value, sim.now))

        process = sim.process(reader())
        sim.call_later(6, lambda: cc.commit(3, {"x": 1}))
        sim.run(until=process)
        assert waited == [(50, 6.0)]


class TestMVTO:
    def test_read_latest_version_at_or_below_ts(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 50))
        cc.commit(1, {})
        run_op(sim, cc.prewrite(2, 10.0, "x", 100))
        cc.commit(2, {})
        assert run_op(sim, cc.read(3, 7.0, "x"))[0] == 50
        assert run_op(sim, cc.read(4, 12.0, "x"))[0] == 100

    def test_old_reader_never_rejected(self, sim, store):
        """The headline MVTO property: late reads serve old versions."""
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 10.0, "x", 1))
        cc.commit(1, {})
        value, version = run_op(sim, cc.read(2, 5.0, "x"))
        assert value == 0  # the initial version, not a rejection

    def test_prewrite_rejected_when_invalidating_read(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.read(1, 10.0, "x"))  # rts(v0) = 10
        with pytest.raises(ConcurrencyAbort):
            run_op(sim, cc.prewrite(2, 5.0, "x", 9))

    def test_prewrite_after_reads_with_smaller_ts_ok(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.read(1, 3.0, "x"))
        run_op(sim, cc.prewrite(2, 5.0, "x", 9))  # must not raise
        cc.commit(2, {})
        assert run_op(sim, cc.read(3, 6.0, "x"))[0] == 9

    def test_reader_waits_for_relevant_pending_write(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 55))
        seen = []

        def reader():
            value, _v = yield from cc.read(2, 8.0, "x")
            seen.append((value, sim.now))

        process = sim.process(reader())
        sim.call_later(4, lambda: cc.commit(1, {}))
        sim.run(until=process)
        assert seen == [(55, 4.0)]

    def test_reader_skips_irrelevant_pending_write(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 20.0, "x", 55))  # pending above reader ts
        assert run_op(sim, cc.read(2, 8.0, "x"))[0] == 0

    def test_version_chain_grows_and_truncates(self, sim, store):
        cc = MultiversionTimestampController(sim, store, max_versions=3)
        for index in range(6):
            ts = float(index + 1)
            run_op(sim, cc.prewrite(index + 1, ts, "x", index))
            cc.commit(index + 1, {})
        assert cc.version_count("x") == 3

    def test_store_mirrors_latest_version(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 4.0, "x", 40))
        cc.commit(1, {})
        assert store.read("x") == (40, 4.0)

    def test_out_of_order_commit_does_not_regress_store(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 10.0, "x", 100))
        run_op(sim, cc.prewrite(2, 5.0, "y", 50))
        cc.commit(1, {})
        cc.commit(2, {})
        assert store.read("x") == (100, 10.0)

    def test_read_own_write(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 42))
        assert run_op(sim, cc.read(1, 5.0, "x"))[0] == 42

    def test_abort_drops_pending(self, sim, store):
        cc = MultiversionTimestampController(sim, store)
        run_op(sim, cc.prewrite(1, 5.0, "x", 42))
        cc.abort(1)
        assert run_op(sim, cc.read(2, 8.0, "x"))[0] == 0
