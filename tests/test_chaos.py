"""Tests for the chaos engine: nemesis, invariants, shrinking, suite."""

import pytest

from repro.chaos import (
    INVARIANTS,
    FaultChunk,
    check_all,
    ddmin,
    generate_plan,
    render_schedule,
    render_suite_report,
    run_chaos_case,
    run_chaos_suite,
    schedule_from_chunks,
    shrink_case,
)
from repro.net.faults import FaultSchedule

SITES = ["site1", "site2", "site3", "site4"]
HOSTS = ["host1", "host2", "host3", "host4"]


class TestNemesis:
    def test_same_seed_same_plan(self):
        a = generate_plan(5, SITES, HOSTS, horizon=100.0)
        b = generate_plan(5, SITES, HOSTS, horizon=100.0)
        assert a.chunks == b.chunks

    def test_different_seeds_differ(self):
        plans = {tuple(generate_plan(s, SITES, HOSTS, 100.0).chunks) for s in range(1, 8)}
        assert len(plans) > 1

    def test_plans_are_self_healing(self):
        for seed in range(1, 20):
            plan = generate_plan(seed, SITES, HOSTS, horizon=100.0)
            assert plan.chunks
            for chunk in plan.chunks:
                assert chunk.start < chunk.end
                assert chunk.end <= 0.85 * 100.0

    def test_per_site_crash_windows_disjoint(self):
        for seed in range(1, 20):
            plan = generate_plan(seed, SITES, HOSTS, 100.0, intensity=3.0)
            crashes = [c for c in plan.chunks if c.kind == "crash"]
            by_site = {}
            for chunk in sorted(crashes, key=lambda c: c.start):
                assert chunk.start >= by_site.get(chunk.target, 0.0)
                by_site[chunk.target] = chunk.end

    def test_partitions_split_all_hosts(self):
        for seed in range(1, 30):
            plan = generate_plan(seed, SITES, HOSTS, 100.0, intensity=3.0)
            for chunk in plan.chunks:
                if chunk.kind == "partition":
                    assert sorted(h for g in chunk.groups for h in g) == HOSTS
                    assert all(chunk.groups)

    def test_schedule_from_chunks_maps_every_kind(self):
        chunks = [
            FaultChunk("crash", 10.0, 20.0, target="site2"),
            FaultChunk("partition", 30.0, 40.0,
                       groups=(("host1",), ("host2", "host3", "host4"))),
            FaultChunk("link_cut", 50.0, 55.0, hosts=("host1", "host3")),
            FaultChunk("flaky_link", 60.0, 70.0, hosts=("host2", "host4"),
                       loss=0.2, duplicate=0.1),
        ]
        schedule = schedule_from_chunks(chunks)
        assert schedule.crashes == [("site2", 10.0)]
        assert schedule.recoveries == [("site2", 20.0)]
        assert schedule.partitions == [(30.0, [["host1"], ["host2", "host3", "host4"]])]
        assert schedule.heals == [40.0]
        assert schedule.link_cuts == [("host1", "host3", 50.0, 55.0)]
        assert schedule.flaky_links == [("host2", "host4", 60.0, 70.0, 0.2, 0.1)]

    def test_render_schedule_roundtrips_through_eval(self):
        plan = generate_plan(3, SITES, HOSTS, 100.0, intensity=2.0)
        schedule = plan.schedule()
        rebuilt = eval(render_schedule(schedule), {"FaultSchedule": FaultSchedule})
        assert rebuilt == schedule

    def test_render_empty_schedule_says_fault_free(self):
        text = render_schedule(FaultSchedule())
        assert text.startswith("FaultSchedule()")
        assert "fault-free" in text


class TestDdmin:
    def test_finds_minimal_pair(self):
        items = tuple(range(1, 9))
        minimal, probes = ddmin(items, lambda s: 3 in s and 7 in s)
        assert set(minimal) == {3, 7}
        assert probes >= 1

    def test_single_culprit(self):
        minimal, _probes = ddmin(tuple(range(10)), lambda s: 4 in s)
        assert minimal == (4,)

    def test_fault_free_failure_shrinks_to_empty(self):
        minimal, _probes = ddmin(tuple(range(1, 5)), lambda s: True)
        assert minimal == ()

    def test_probe_budget_returns_failing_subset(self):
        items = tuple(range(1, 17))
        fails = lambda s: 5 in s and 11 in s  # noqa: E731
        minimal, probes = ddmin(items, fails, max_probes=3)
        assert probes <= 4  # budget + the final empty-set probe is skipped
        assert fails(minimal)

    def test_preserves_order(self):
        minimal, _ = ddmin((9, 3, 7, 1), lambda s: 3 in s and 1 in s)
        assert minimal == (3, 1)


class TestInvariants:
    @pytest.fixture(scope="class")
    def clean_session(self):
        from repro.experiments.common import build_instance
        from repro.workload.spec import WorkloadSpec

        instance = build_instance(3, 8, 2, seed=11, settle_time=30.0)
        result = instance.run_workload(
            WorkloadSpec(n_transactions=15, arrival_rate=0.5, read_fraction=0.5)
        )
        return instance, instance.session_result(result.outcomes)

    def test_clean_session_green(self, clean_session):
        instance, final = clean_session
        violations = check_all(instance, final, expected_submissions=15)
        assert tuple(violations) == INVARIANTS
        assert not any(violations.values())

    def test_tampered_replica_breaks_convergence(self, clean_session):
        from repro.chaos.invariants import check_convergence

        instance, final = clean_session
        # Corrupt one replica in place: same version, different value.
        for item in instance.catalog.item_names():
            spec = instance.catalog.item(item)
            if len(spec.sites) < 2:
                continue
            store = instance.sites[spec.sites[0]].store
            copy = store._copies[item]
            copy.value = "corrupted"
            violations = check_convergence(instance, final)
            copy.value = instance.sites[spec.sites[1]].store.read(item)[0]
            break
        assert any("diverge" in v for v in violations)

    def test_down_site_breaks_no_orphans(self, clean_session):
        from repro.chaos.invariants import check_no_orphans

        instance, final = clean_session
        site = instance.sites["site1"]
        site.up = False
        violations = check_no_orphans(instance, final)
        site.up = True
        assert any("still down" in v for v in violations)

    def test_conservation_counts_missing_outcomes(self, clean_session):
        from repro.chaos.invariants import check_conservation

        instance, final = clean_session
        violations = check_conservation(instance, final, expected_submissions=16)
        assert any("16" in v for v in violations)


class TestChaosCase:
    def test_case_is_deterministic(self):
        a = run_chaos_case(2, n_transactions=15)
        b = run_chaos_case(2, n_transactions=15)
        assert a == b

    def test_default_stack_survives_sample_seeds(self):
        for seed in (1, 2, 3):
            report = run_chaos_case(seed, n_transactions=15)
            assert report.ok, report.flat_violations()
            assert report.chunks
            assert report.fault_events >= 2  # fault + its repair at least

    def test_replay_with_no_chunks_is_fault_free(self):
        report = run_chaos_case(2, n_transactions=15, chunks=())
        assert report.ok
        assert report.chunks == ()
        assert report.fault_events == 0

    def test_3pc_stack(self):
        report = run_chaos_case(4, n_transactions=15, acp="3PC")
        assert report.ok, report.flat_violations()


class TestBrokenProtocolAndShrink:
    def test_nocc_fails_and_shrinks_fault_free(self):
        report = run_chaos_case(1, ccp="NOCC")
        assert not report.ok
        assert "serializability" in report.violated_invariants()
        shrunk = shrink_case(report, ccp="NOCC")
        assert shrunk.reproduced  # the minimal plan still violates
        assert shrunk.minimal_chunks == ()  # NOCC is broken without any faults
        assert "fault-free" in shrunk.scenario()

    def test_shrink_refuses_green_case(self):
        report = run_chaos_case(2, n_transactions=15)
        with pytest.raises(ValueError):
            shrink_case(report, n_transactions=15)


class TestSuite:
    def test_suite_runs_and_renders(self):
        result = run_chaos_suite([1, 2, 3], n_transactions=15)
        assert result.ok
        assert result.shrinks == []
        text = render_suite_report(result)
        assert "3/3 seeds green" in text
        for name in INVARIANTS:
            assert name in text

    def test_suite_identical_across_job_counts(self):
        serial = run_chaos_suite([1, 2, 3, 4], n_jobs=1, n_transactions=15)
        parallel = run_chaos_suite([1, 2, 3, 4], n_jobs=4, n_transactions=15)
        assert serial.cases == parallel.cases
        assert render_suite_report(serial) == render_suite_report(parallel)

    def test_failing_suite_reports_and_shrinks(self):
        result = run_chaos_suite([1], ccp="NOCC")
        assert not result.ok
        assert len(result.shrinks) == 1
        text = render_suite_report(result)
        assert "FAIL" in text
        assert "minimal classroom scenario" in text
