"""Unit tests for the simulated network, messages, latency, RPC."""

import random

import pytest

from repro.errors import NetworkError, RpcTimeout
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LanWanLatency,
    UniformLatency,
)
from repro.net.message import Message, MessageType
from repro.net.network import Network
from repro.sim.kernel import Simulator
from tests.conftest import drive


class TestMessage:
    def test_ids_unique_and_increasing(self):
        a = Message(src="x", dst="y", mtype="T")
        b = Message(src="x", dst="y", mtype="T")
        assert b.msg_id > a.msg_id

    def test_reply_swaps_endpoints_and_links(self):
        request = Message(src="a/1", dst="b/2", mtype=MessageType.READ, txn_id=9)
        reply = request.reply(MessageType.READ_REPLY, payload={"ok": True})
        assert reply.src == "b/2"
        assert reply.dst == "a/1"
        assert reply.reply_to == request.msg_id
        assert reply.txn_id == 9

    def test_categories(self):
        assert MessageType.category(MessageType.READ) == "data"
        assert MessageType.category(MessageType.VOTE_REQ) == "commit"
        assert MessageType.category(MessageType.NS_LOOKUP) == "nameserver"
        assert MessageType.category(MessageType.WEB_REQUEST) == "web"
        assert MessageType.category("WEIRD") == "other"


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.delay("a", "b", 1, random.Random(0)) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(0)
        draws = [model.delay("a", "b", 1, rng) for _ in range(100)]
        assert all(1.0 <= d <= 3.0 for d in draws)

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_exponential_has_floor(self):
        model = ExponentialLatency(mean=1.0, floor=0.5)
        rng = random.Random(0)
        assert all(model.delay("a", "b", 1, rng) >= 0.5 for _ in range(100))

    def test_exponential_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ExponentialLatency(mean=0)
        with pytest.raises(ValueError):
            ExponentialLatency(mean=1, floor=-1)

    def test_lanwan_local_vs_remote(self):
        model = LanWanLatency(local=0.1, remote_low=1.0, remote_high=2.0)
        rng = random.Random(0)
        assert model.delay("h1", "h1", 1, rng) == 0.1
        assert model.delay("h1", "h2", 1, rng) >= 1.0

    def test_lanwan_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LanWanLatency(local=-1)


class TestEndpoints:
    def test_duplicate_address_rejected(self, sim):
        network = Network(sim)
        network.endpoint("h", "a")
        with pytest.raises(NetworkError):
            network.endpoint("h", "a")

    def test_lookup_unknown_raises(self, sim, network):
        with pytest.raises(NetworkError):
            network.lookup("nope/nothing")

    def test_addresses_sorted(self, sim, network):
        network.endpoint("h2", "b")
        network.endpoint("h1", "a")
        assert network.addresses() == ["h1/a", "h2/b"]

    def test_send_and_receive(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")

        def receiver():
            msg = yield b.receive()
            return (msg.mtype, msg.payload)

        process = sim.process(receiver())
        a.send(b.address, "PING", payload=123)
        assert sim.run(until=process) == ("PING", 123)
        assert sim.now == 1.0  # ConstantLatency(1.0)

    def test_receive_queued_message_immediately(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1

        def receiver():
            msg = yield b.receive()
            return msg.mtype

        assert drive(sim, receiver()) == "PING"
        assert b.pending_count() == 0


class TestRpc:
    def test_request_reply_roundtrip(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")

        def server():
            msg = yield b.receive()
            b.reply(msg, "PONG", payload=msg.payload + 1)

        def client():
            reply = yield a.request(b.address, "PING", payload=1, timeout=10)
            return reply.payload

        sim.process(server())
        assert drive(sim, client()) == 2
        assert network.stats.round_trips == 1

    def test_request_times_out_when_no_answer(self, sim, network):
        a = network.endpoint("h1", "a")
        network.endpoint("h2", "b")  # never answers

        def client():
            with pytest.raises(RpcTimeout):
                yield a.request("h2/b", "PING", timeout=5)
            return sim.now

        assert drive(sim, client()) == 5.0
        assert network.stats.rpc_timeouts == 1

    def test_request_to_unknown_destination_times_out(self, sim, network):
        a = network.endpoint("h1", "a")

        def client():
            with pytest.raises(RpcTimeout):
                yield a.request("ghost/x", "PING", timeout=3)

        drive(sim, client())
        assert network.stats.dropped == 1

    def test_late_reply_after_timeout_not_matched(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")

        def slow_server():
            msg = yield b.receive()
            yield sim.timeout(10)
            b.reply(msg, "PONG")

        def client():
            with pytest.raises(RpcTimeout):
                yield a.request(b.address, "PING", timeout=3)

        sim.process(slow_server())
        drive(sim, client())
        sim.run()
        # Late reply is delivered to a's queue as an orphan message.
        assert a.pending_count() == 1

    def test_invalid_timeout_rejected(self, sim, network):
        a = network.endpoint("h1", "a")
        with pytest.raises(Exception):
            a.request("h1/a", "X", timeout=0)


class TestFailureModes:
    def test_down_endpoint_loses_messages(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        b.set_down()
        a.send(b.address, "PING")
        sim.run()
        assert network.stats.dropped == 1
        assert b.pending_count() == 0

    def test_down_endpoint_fails_waiting_receivers(self, sim, network):
        b = network.endpoint("h2", "b")

        def receiver():
            with pytest.raises(NetworkError):
                yield b.receive()
            return "failed as expected"

        process = sim.process(receiver())
        sim.call_later(1, b.set_down)
        assert sim.run(until=process) == "failed as expected"

    def test_down_endpoint_fails_pending_rpcs(self, sim, network):
        a = network.endpoint("h1", "a")
        network.endpoint("h2", "b")

        def client():
            with pytest.raises(NetworkError):
                yield a.request("h2/b", "PING", timeout=100)
            return sim.now

        process = sim.process(client())
        sim.call_later(2, a.set_down)
        assert sim.run(until=process) == 2.0

    def test_source_down_drops_sends(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        a.set_down()
        a.send(b.address, "PING")
        sim.run()
        assert network.stats.dropped == 1

    def test_recovered_endpoint_receives_again(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        b.set_down()
        b.set_up()
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1

    def test_queued_messages_lost_on_crash(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1
        b.set_down()
        assert b.pending_count() == 0


class TestPartitions:
    def _pair(self, sim, network):
        return network.endpoint("h1", "a"), network.endpoint("h2", "b")

    def test_partition_drops_cross_group(self, sim, network):
        a, b = self._pair(sim, network)
        network.partition([["h1"], ["h2"]])
        a.send(b.address, "PING")
        sim.run()
        assert network.stats.dropped == 1

    def test_partition_allows_same_group(self, sim, network):
        a, b = self._pair(sim, network)
        network.partition([["h1", "h2"]])
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1

    def test_unlisted_hosts_form_implicit_group(self, sim, network):
        a, b = self._pair(sim, network)
        c = network.endpoint("h3", "c")
        network.partition([["h1"]])
        b.send(c.address, "PING")  # h2 and h3 both implicit
        sim.run()
        assert c.pending_count() == 1

    def test_heal_partition(self, sim, network):
        a, b = self._pair(sim, network)
        network.partition([["h1"], ["h2"]])
        network.heal_partition()
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1

    def test_host_in_two_groups_rejected(self, sim, network):
        with pytest.raises(NetworkError):
            network.partition([["h1"], ["h1"]])

    def test_cut_and_restore_link(self, sim, network):
        a, b = self._pair(sim, network)
        network.cut_link("h1", "h2")
        a.send(b.address, "PING")
        sim.run()
        assert network.stats.dropped == 1
        network.restore_link("h1", "h2")
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1

    def test_cut_link_does_not_affect_local(self, sim, network):
        a = network.endpoint("h1", "a")
        a2 = network.endpoint("h1", "a2")
        network.cut_link("h1", "h1")
        a.send(a2.address, "PING")
        sim.run()
        assert a2.pending_count() == 1


class TestLossAndStats:
    def test_random_loss(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(0.1), rng=random.Random(7), loss_rate=0.5)
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        for _ in range(200):
            a.send(b.address, "PING")
        sim.run()
        assert 40 < network.stats.dropped < 160

    def test_invalid_loss_rate(self, sim):
        with pytest.raises(NetworkError):
            Network(sim, loss_rate=1.0)

    def test_random_loss_counted_separately(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(0.1), rng=random.Random(7), loss_rate=0.5)
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        for _ in range(100):
            a.send(b.address, "PING")
        sim.run()
        assert network.stats.lost_random == network.stats.dropped
        assert network.stats.lost_by_type["PING"] == network.stats.lost_random

    def test_duplication_delivers_extra_copies(self):
        sim = Simulator()
        network = Network(
            sim, ConstantLatency(0.1), rng=random.Random(7), duplication_rate=0.5
        )
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        for _ in range(100):
            a.send(b.address, "PING")
        sim.run()
        assert network.stats.sent == 100
        assert 10 < network.stats.duplicated < 90
        assert b.pending_count() == 100 + network.stats.duplicated
        assert network.stats.delivered == 100 + network.stats.duplicated

    def test_invalid_duplication_rate(self, sim):
        with pytest.raises(NetworkError):
            Network(sim, duplication_rate=1.0)

    def test_by_type_counter(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        a.send(b.address, "X")
        a.send(b.address, "X")
        a.send(b.address, "Y")
        assert network.stats.by_type == {"X": 2, "Y": 1}

    def test_bytes_accounting(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        a.send(b.address, "X", size=10)
        a.send(b.address, "X", size=5)
        assert network.stats.bytes_sent == 15

    def test_observer_sees_outcomes(self, sim, network):
        seen = []
        network.add_observer(lambda msg, outcome: seen.append((msg.mtype, outcome)))
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        b.set_down()
        a.send(b.address, "DEAD")
        sim.run()
        assert ("DEAD", "endpoint down") in seen

    def test_snapshot_is_plain_dict(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        a.send(b.address, "X")
        snap = network.stats.snapshot()
        assert snap["sent"] == 1
        assert isinstance(snap["by_type"], dict)
        assert snap["lost_random"] == 0
        assert snap["duplicated"] == 0


class TestFlakyLinks:
    def test_flaky_link_overrides_loss_for_one_pair(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(0.1), rng=random.Random(7))
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        c = network.endpoint("h3", "c")
        network.set_link_flakiness("h1", "h2", loss=0.99)
        for _ in range(100):
            a.send(b.address, "PING")
            a.send(c.address, "PING")
        sim.run()
        assert network.stats.lost_random > 80  # h1-h2 very lossy
        assert c.pending_count() == 100  # h1-h3 untouched

    def test_flaky_link_duplicates(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(0.1), rng=random.Random(7))
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        network.set_link_flakiness("h1", "h2", duplicate=0.5)
        for _ in range(100):
            a.send(b.address, "PING")
        sim.run()
        assert 10 < network.stats.duplicated < 90
        assert b.pending_count() == 100 + network.stats.duplicated

    def test_clear_link_flakiness(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        network.set_link_flakiness("h1", "h2", loss=0.99)
        network.clear_link_flakiness("h1", "h2")
        a.send(b.address, "PING")
        sim.run()
        assert b.pending_count() == 1

    def test_clear_flaky_links_heals_all(self, sim, network):
        network.endpoint("h1", "a")
        network.endpoint("h2", "b")
        network.set_link_flakiness("h1", "h2", loss=0.5)
        network.clear_flaky_links()
        assert network._flaky_links == {}

    def test_same_host_traffic_unaffected(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(0.1), rng=random.Random(7))
        a = network.endpoint("h1", "a")
        a2 = network.endpoint("h1", "a2")
        with pytest.raises(NetworkError):
            network.set_link_flakiness("h1", "h1", loss=0.5)
        network.set_link_flakiness("h1", "h2", loss=0.99)
        for _ in range(50):
            a.send(a2.address, "PING")
        sim.run()
        assert a2.pending_count() == 50

    def test_invalid_rates_rejected(self, sim, network):
        with pytest.raises(NetworkError):
            network.set_link_flakiness("h1", "h2", loss=1.0)
        with pytest.raises(NetworkError):
            network.set_link_flakiness("h1", "h2", duplicate=-0.1)
