"""Tests for WAL checkpointing and the DOT graph exports."""

import pytest

from repro.site.locks import LockManager, LockMode
from repro.site.wal import WriteAheadLog
from repro.txn.history import HistoryRecorder, SerializationGraph
from repro.txn.transaction import Operation, Transaction
from repro.workload.spec import WorkloadSpec
from tests.conftest import drive, quick_instance


class TestWalCheckpoint:
    def test_checkpoint_truncates_decided_history(self):
        wal = WriteAheadLog("s")
        for txn in range(1, 6):
            wal.log_prepare(txn, {"x": (txn, txn)}, None, at=0.0)
            wal.log_commit(txn, at=1.0)
            wal.log_end(txn, at=1.5)  # decision round fully acknowledged
        assert len(wal) == 15
        truncated = wal.checkpoint({"x": (5, 5)}, at=2.0)
        assert truncated == 15
        assert len(wal) == 1  # just the CHECKPOINT record
        assert wal.last_checkpoint().writes == {"x": (5, 5)}

    def test_checkpoint_retains_unacknowledged_commits(self):
        """A coordinator COMMIT without END must survive checkpoints:
        presumed abort would otherwise abort a committed transaction when
        an in-doubt participant finally asks for the decision."""
        wal = WriteAheadLog("s")
        wal.log_prepare(1, {"x": (1, 1)}, None, at=0.0)
        wal.log_commit(1, at=1.0)  # no END: some participant never acked
        truncated = wal.checkpoint({"x": (1, 1)}, at=2.0)
        assert truncated == 1  # only the PREPARE goes; the COMMIT is retained
        assert wal.decision_for(1) == "COMMIT"
        # Once the round completes, the next checkpoint may forget it.
        wal.log_end(1, at=3.0)
        wal.checkpoint({"x": (1, 1)}, at=4.0)
        assert wal.decision_for(1) is None

    def test_checkpoint_retains_participant_commits_under_3pc(self):
        """3PC peers answer termination queries from their decision record,
        so a participant's COMMIT copy survives; under 2PC nobody ever asks
        a participant, so its copy is dropped."""
        wal = WriteAheadLog("s")
        wal.log_prepare(1, {"x": (1, 1)}, "coord/a", at=0.0, acp="3PC")
        wal.log_commit(1, at=1.0, coordinator="coord/a", acp="3PC")
        wal.log_prepare(2, {"y": (2, 2)}, "coord/a", at=0.0)
        wal.log_commit(2, at=1.0, coordinator="coord/a", acp="2PC")
        wal.checkpoint({"x": (1, 1), "y": (2, 2)}, at=2.0)
        assert wal.decision_for(1) == "COMMIT"
        assert wal.decision_for(2) is None

    def test_checkpoint_keeps_in_doubt(self):
        wal = WriteAheadLog("s")
        wal.log_prepare(1, {"x": (1, 1)}, "coord/a", at=0.0, ts=3.0, acp="3PC",
                        peers=["p"])
        wal.log_precommit(1, at=0.5)
        wal.log_prepare(2, {"y": (2, 2)}, None, at=0.0)
        wal.log_commit(2, at=1.0)
        truncated = wal.checkpoint({"x": (0, 0)}, at=2.0)
        # Of 4 records only txn 2's PREPARE goes: txn 1 is in doubt (both
        # records carried over) and txn 2's COMMIT has no END yet.
        assert truncated == 1
        in_doubt, committed = wal.recover_state()
        assert [d.txn_id for d in in_doubt] == [1]
        assert in_doubt[0].precommitted
        assert in_doubt[0].acp == "3PC"
        assert in_doubt[0].peers == ["p"]
        assert committed == []  # decided history gone: the snapshot has it

    def test_site_periodic_checkpointing(self):
        instance = quick_instance(n_items=8, settle_time=60,
                                  checkpoint_interval=40.0)
        instance.run_workload(WorkloadSpec(n_transactions=10, arrival_rate=0.5))
        site = instance.sites["site1"]
        assert site.checkpoints_taken >= 1
        assert site.wal.last_checkpoint() is not None

    def test_recovery_after_checkpoint_restores_state(self):
        instance = quick_instance(n_items=8, settle_time=30)
        instance.start()
        txn = Transaction(ops=[Operation.write("x1", 77)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        site = instance.sites["site1"]
        site.take_checkpoint()
        site.crash()
        site.recover()
        instance.sim.run(until=instance.sim.now + 30)
        assert site.store.read("x1")[0] == 77

    def test_in_doubt_resolution_after_checkpoint(self):
        """A prepared txn carried across a checkpoint still resolves."""
        instance = quick_instance(n_items=8, settle_time=0,
                                  uncertainty_timeout=20.0, decision_retry=10.0)
        instance.coordinator_config.failpoint = "after_votes"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x2", 2)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        # A participant checkpoints while in doubt.
        participant = instance.sites["site2"]
        if participant.in_doubt_count():
            participant.take_checkpoint()
            assert participant.wal.last_checkpoint() is not None
        instance.injector.recover_now("site1")
        instance.sim.run(until=instance.sim.now + 200)
        assert all(site.in_doubt_count() == 0 for site in instance.sites.values())

    def test_config_roundtrip(self):
        from repro.core.config import RainbowConfig

        config = RainbowConfig.quick(n_sites=2, n_items=2)
        config.checkpoint_interval = 33.0
        clone = RainbowConfig.from_dict(config.to_dict())
        assert clone.checkpoint_interval == 33.0


class TestDotExports:
    def test_serialization_graph_dot(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        dot = graph.to_dot(highlight=graph.find_cycle())
        assert dot.startswith("digraph serialization")
        assert '"T1" -> "T2"' in dot
        assert "color=red" in dot

    def test_history_graph_dot_from_session(self):
        recorder = HistoryRecorder()
        recorder.record_commit(1, reads={"x": 0}, writes={"x": 1})
        recorder.record_commit(2, reads={"x": 1}, writes={})
        dot = recorder.build_graph().to_dot()
        assert '"T1" -> "T2"' in dot

    def test_wait_for_graph_dot(self, sim):
        locks = LockManager(sim, wait_timeout=None)
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "x", LockMode.X)
        dot = locks.wait_for_graph_dot()
        assert '"T2" -> "T1"' in dot
