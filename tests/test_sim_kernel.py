"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import AllOf, AnyOf, Event, Interrupt, Simulator, Timeout
from tests.conftest import drive


class TestEvent:
    def test_new_event_is_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_carries_exception(self, sim):
        event = sim.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(RuntimeError())

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_callbacks_run_on_processing(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        event.succeed("x")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["x"]

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        assert seen == [7]


class TestTimeout:
    def test_timeout_fires_at_delay(self, sim):
        fired = []
        sim.timeout(5.0).add_callback(lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeout_carries_value(self, sim):
        def proc():
            value = yield sim.timeout(1, value="hello")
            return value

        assert drive(sim, proc()) == "hello"

    def test_zero_delay_allowed(self, sim):
        def proc():
            yield sim.timeout(0)
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_same_time_fifo_order(self, sim):
        order = []
        for index in range(5):
            sim.timeout(1.0).add_callback(lambda ev, i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.timeout(2)
            return "done"

        assert drive(sim, proc()) == "done"
        assert sim.now == 2.0

    def test_process_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()

        def proc():
            try:
                yield event
            except ValueError as error:
                return f"caught {error}"

        process = sim.process(proc())
        sim.call_later(1, lambda: event.fail(ValueError("bad")))
        assert sim.run(until=process) == "caught bad"

    def test_uncaught_exception_fails_process(self, sim):
        def proc():
            yield sim.timeout(1)
            raise RuntimeError("oops")

        process = sim.process(proc())
        with pytest.raises(RuntimeError, match="oops"):
            sim.run(until=process)

    def test_yield_non_event_fails_process(self, sim):
        def proc():
            yield 42

        process = sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run(until=process)

    def test_process_waits_on_other_process(self, sim):
        def child():
            yield sim.timeout(3)
            return 10

        def parent():
            value = yield sim.process(child())
            return value * 2

        assert drive(sim, parent()) == 20

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(5)

        process = sim.process(proc())
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_nested_yield_from(self, sim):
        def inner():
            yield sim.timeout(1)
            return "inner"

        def outer():
            value = yield from inner()
            yield sim.timeout(1)
            return value + "-outer"

        assert drive(sim, outer()) == "inner-outer"
        assert sim.now == 2.0


class TestInterrupt:
    def test_interrupt_during_wait(self, sim):
        def proc():
            try:
                yield sim.timeout(100)
                return "not interrupted"
            except Interrupt as interrupt:
                return f"interrupted: {interrupt.cause}"

        process = sim.process(proc())
        sim.call_later(5, lambda: process.interrupt("crash"))
        assert sim.run(until=process) == "interrupted: crash"
        assert sim.now == 5.0

    def test_uncaught_interrupt_terminates_quietly(self, sim):
        def proc():
            yield sim.timeout(100)

        process = sim.process(proc())
        sim.call_later(5, lambda: process.interrupt())
        value = sim.run(until=process)
        assert isinstance(value, Interrupt)

    def test_interrupt_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1)
            return "ok"

        process = sim.process(proc())
        sim.run(until=process)
        process.interrupt("late")  # must not raise
        assert process.value == "ok"

    def test_stale_wakeup_after_interrupt_ignored(self, sim):
        """The original awaited event firing later must not resume the process."""
        resumed = []

        def proc():
            try:
                yield sim.timeout(10)
                resumed.append("timeout")
            except Interrupt:
                yield sim.timeout(20)  # keep living past t=10
                resumed.append("post-interrupt")

        process = sim.process(proc())
        sim.call_later(5, lambda: process.interrupt())
        sim.run()
        assert resumed == ["post-interrupt"]
        assert sim.now >= 25.0

    def test_interrupt_while_running_delivered_at_next_yield(self, sim):
        log = []

        def proc():
            # Interrupt self while the body is executing (not suspended).
            process.interrupt("self")
            log.append("before yield")
            try:
                yield sim.timeout(100)
                log.append("slept")
            except Interrupt:
                log.append("interrupted")

        process = sim.process(proc())
        sim.run()
        assert log == ["before yield", "interrupted"]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def proc():
            t1, t2 = sim.timeout(2, "a"), sim.timeout(5, "b")
            results = yield sim.all_of([t1, t2])
            return sorted(results.values())

        assert drive(sim, proc()) == ["a", "b"]
        assert sim.now == 5.0

    def test_any_of_fires_on_first(self, sim):
        def proc():
            t1, t2 = sim.timeout(2, "fast"), sim.timeout(5, "slow")
            results = yield sim.any_of([t1, t2])
            return list(results.values())

        assert drive(sim, proc()) == ["fast"]
        assert sim.now == 2.0

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_all_of_fails_fast(self, sim):
        bad = sim.event()

        def proc():
            try:
                yield sim.all_of([sim.timeout(10), bad])
            except ValueError:
                return sim.now

        process = sim.process(proc())
        sim.call_later(1, lambda: bad.fail(ValueError()))
        assert sim.run(until=process) == 1.0

    def test_any_of_fails_only_when_all_fail(self, sim):
        e1, e2 = sim.event(), sim.event()

        def proc():
            try:
                yield sim.any_of([e1, e2])
                return "ok"
            except RuntimeError:
                return "all failed"

        process = sim.process(proc())
        sim.call_later(1, lambda: e1.fail(RuntimeError()))
        sim.call_later(2, lambda: e2.fail(RuntimeError()))
        assert sim.run(until=process) == "all failed"

    def test_any_of_with_one_failure_and_one_success(self, sim):
        e1, e2 = sim.event(), sim.event()

        def proc():
            results = yield sim.any_of([e1, e2])
            return list(results.values())

        process = sim.process(proc())
        sim.call_later(1, lambda: e1.fail(RuntimeError()))
        sim.call_later(2, lambda: e2.succeed("late win"))
        assert sim.run(until=process) == ["late win"]

    def test_condition_rejects_foreign_events(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.all_of([other.event()])

    def test_all_of_with_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()

        def proc():
            results = yield sim.all_of([done, sim.timeout(3, "late")])
            return sorted(results.values())

        assert drive(sim, proc()) == ["early", "late"]


class TestRun:
    def test_run_until_time_stops_clock_exactly(self, sim):
        sim.timeout(10)
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_run_until_past_raises(self, sim):
        sim.run(until=5)
        with pytest.raises(SimulationError):
            sim.run(until=3)

    def test_run_until_event_returns_value(self, sim):
        def proc():
            yield sim.timeout(4)
            return "v"

        assert sim.run(until=sim.process(proc())) == "v"

    def test_run_until_never_firing_event_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError, match="ran dry"):
            sim.run(until=event)

    def test_run_drains_everything(self, sim):
        sim.timeout(3)
        sim.timeout(9)
        sim.run()
        assert sim.now == 9.0
        assert sim.peek() == float("inf")

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_processed_events_counter(self, sim):
        sim.timeout(1)
        sim.timeout(2)
        sim.run()
        assert sim.processed_events == 2

    def test_call_later_runs_function(self, sim):
        seen = []
        sim.call_later(3, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_call_later_negative_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later(-1, lambda: None)

    def test_determinism_two_identical_runs(self):
        def build():
            sim = Simulator()
            log = []

            def worker(name, delay):
                yield sim.timeout(delay)
                log.append((name, sim.now))
                yield sim.timeout(delay)
                log.append((name, sim.now))

            sim.process(worker("a", 2))
            sim.process(worker("b", 2))
            sim.process(worker("c", 3))
            sim.run()
            return log

        assert build() == build()
