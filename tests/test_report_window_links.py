"""Tests for session reports, windowed statistics, link overrides."""

import random

import pytest

from repro.monitor.report import session_report
from repro.monitor.tracing import ExecutionTracer
from repro.net.latency import ConstantLatency, LinkOverrideLatency, UniformLatency
from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance


class TestSessionReport:
    def _session(self):
        instance = quick_instance(n_items=16, settle_time=30)
        instance.config.faults.schedule.crashes.append(("site3", 20.0))
        instance.config.faults.schedule.recoveries.append(("site3", 40.0))
        instance.start()
        tracer = ExecutionTracer(instance.sim)
        tracer.attach_all(instance)
        result = instance.run_workload(
            WorkloadSpec(n_transactions=10, arrival_rate=0.5)
        )
        return instance, result, tracer

    def test_report_contains_all_sections(self):
        instance, result, tracer = self._session()
        report = session_report(instance, result, tracer=tracer)
        assert report.startswith("# Rainbow session report")
        for section in (
            "## Output statistics",
            "## Sites",
            "## Message traffic",
            "## Injected faults",
            "## Global execution history",
        ):
            assert section in report
        assert "one-copy serializable: **True**" in report
        assert "crash site3" in report

    def test_report_without_tracer_or_faults(self):
        instance = quick_instance(n_items=8, settle_time=20)
        result = instance.run_workload(WorkloadSpec(n_transactions=3, arrival_rate=1.0))
        report = session_report(instance, result, title="Lab 1")
        assert report.startswith("# Lab 1")
        assert "## Injected faults" not in report
        assert "## Global execution history" not in report

    def test_report_flags_violations(self):
        import repro.classroom  # noqa: F401
        from repro.core.config import RainbowConfig
        from repro.core.instance import RainbowInstance
        from repro.txn.transaction import Operation, Transaction

        config = RainbowConfig.quick(n_sites=3, n_items=2, seed=2)
        config.protocols.ccp = "NOCC"
        config.settle_time = 40
        instance = RainbowInstance(config)
        instance.start()
        txns = [
            Transaction(ops=[Operation.increment("x1", 1)], home_site=f"site{i+1}")
            for i in range(3)
        ]
        processes = [instance.submit(txn) for txn in txns]
        instance.sim.run(until=instance.sim.all_of(processes))
        instance.sim.run(until=instance.sim.now + 40)
        result = instance.session_result()
        report = session_report(instance, result)
        if not result.serializable:
            assert "Serialization cycle" in report
        if instance.monitor.history.version_collisions():
            assert "Version collisions" in report


class TestWindowedStatistics:
    def test_windows_partition_the_session(self):
        instance = quick_instance(n_items=16, settle_time=40)
        result = instance.run_workload(
            WorkloadSpec(n_transactions=20, arrival_rate=0.5)
        )
        monitor = instance.monitor
        half = instance.sim.now / 2
        first = monitor.window_summary(0.0, half)
        second = monitor.window_summary(half, instance.sim.now + 1)
        total = result.statistics
        assert first["committed"] + second["committed"] == total.committed
        assert first["aborted"] + second["aborted"] == total.aborted

    def test_empty_window_rejected(self, sim, network):
        from repro.monitor.stats import ProgressMonitor

        monitor = ProgressMonitor(sim, network)
        with pytest.raises(ValueError):
            monitor.window_summary(5.0, 5.0)

    def test_window_without_transactions(self, sim, network):
        from repro.monitor.stats import ProgressMonitor

        monitor = ProgressMonitor(sim, network)
        summary = monitor.window_summary(0.0, 10.0)
        assert summary["committed"] == 0
        assert summary["commit_rate"] == 0.0
        assert summary["mean_response_time"] is None

    def test_outage_window_shows_degradation(self):
        instance = quick_instance(n_items=16, settle_time=60)
        instance.coordinator_config.op_timeout = 10
        instance.coordinator_config.vote_timeout = 8
        instance.config.faults.schedule.crashes.append(("site2", 40.0))
        instance.config.faults.schedule.recoveries.append(("site2", 120.0))
        instance.run_workload(
            WorkloadSpec(n_transactions=60, arrival_rate=0.6, read_fraction=0.4)
        )
        healthy = instance.monitor.window_summary(0.0, 40.0)
        outage = instance.monitor.window_summary(40.0, 120.0)
        assert healthy["commit_rate"] > outage["commit_rate"]


class TestLinkOverrides:
    def test_override_replaces_base_for_pair(self):
        model = LinkOverrideLatency(ConstantLatency(1.0), {("a", "b"): 10.0})
        rng = random.Random(0)
        assert model.delay("a", "b", 1, rng) == 10.0
        assert model.delay("b", "a", 1, rng) == 10.0  # symmetric
        assert model.delay("a", "c", 1, rng) == 1.0

    def test_override_with_model(self):
        slow = UniformLatency(5.0, 6.0)
        model = LinkOverrideLatency(ConstantLatency(1.0), {("a", "b"): slow})
        rng = random.Random(0)
        assert 5.0 <= model.delay("a", "b", 1, rng) <= 6.0

    def test_self_link_override(self):
        model = LinkOverrideLatency(ConstantLatency(1.0), {("a", "a"): 0.0})
        assert model.delay("a", "a", 1, random.Random(0)) == 0.0

    def test_invalid_pair_rejected(self):
        with pytest.raises(ValueError):
            LinkOverrideLatency(ConstantLatency(1.0), {("a", "b", "c"): 1.0})

    def test_slow_site_visible_in_response_times(self):
        """A site behind a slow link drags quorum operations with it."""
        from repro.core.config import RainbowConfig
        from repro.core.instance import RainbowInstance

        config = RainbowConfig.quick(
            n_sites=3, n_items=6, replication_degree=3, sites_per_host=1, seed=9
        )
        config.settle_time = 40
        fast = RainbowInstance(config)
        fast_result = fast.run_workload(
            WorkloadSpec(n_transactions=10, arrival_rate=0.3)
        )

        config2 = RainbowConfig.quick(
            n_sites=3, n_items=6, replication_degree=3, sites_per_host=1, seed=9
        )
        config2.settle_time = 40
        slow = RainbowInstance(config2)
        slow.network.latency = LinkOverrideLatency(
            slow.network.latency, {("host1", "host2"): 15.0}
        )
        slow_result = slow.run_workload(
            WorkloadSpec(n_transactions=10, arrival_rate=0.3)
        )
        assert (
            slow_result.statistics.mean_response_time
            > fast_result.statistics.mean_response_time
        )
