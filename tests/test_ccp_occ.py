"""Unit and integration tests for optimistic concurrency control (OCC)."""

import pytest

from repro.protocols.base import ccp_registry, make_ccp
from repro.protocols.ccp.optimistic import OptimisticController
from repro.site.storage import LocalStore
from repro.txn.transaction import Operation, Transaction
from tests.conftest import drive, quick_instance


@pytest.fixture
def cc(sim):
    store = LocalStore("s1")
    for item in ("x", "y"):
        store.create_copy(item, 0)
    return OptimisticController(sim, store)


class TestLocalBehaviour:
    def test_registered(self):
        assert "OCC" in ccp_registry()

    def test_reads_never_block(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        # A second transaction reads straight through the pending write.
        assert drive(sim, cc.read(2, 2.0, "x")) == (0, 0)

    def test_read_own_write(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        assert drive(sim, cc.read(1, 1.0, "x"))[0] == 5

    def test_validation_passes_without_conflicts(self, sim, cc):
        drive(sim, cc.read(1, 1.0, "x"))
        drive(sim, cc.prewrite(1, 1.0, "y", 2))
        ok, reason = cc.validate(1)
        assert ok, reason

    def test_validation_fails_if_read_version_moved(self, sim, cc):
        drive(sim, cc.read(1, 1.0, "x"))
        # Someone else commits an overwrite of x before T1 validates.
        drive(sim, cc.prewrite(2, 2.0, "x", 9))
        assert cc.validate(2)[0]
        cc.commit(2, {"x": 1})
        ok, reason = cc.validate(1)
        assert not ok
        assert "x moved" in reason
        assert cc.validation_failures == 1

    def test_validation_fails_if_write_base_moved(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        drive(sim, cc.prewrite(2, 2.0, "x", 9))
        assert cc.validate(2)[0]
        cc.commit(2, {"x": 1})
        ok, _reason = cc.validate(1)
        assert not ok

    def test_parallel_validation_blocks_overlap(self, sim, cc):
        """Two txns validating before either commits: the second loses."""
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        drive(sim, cc.prewrite(2, 2.0, "x", 9))
        assert cc.validate(1)[0]
        ok, reason = cc.validate(2)
        assert not ok
        assert "overlaps validated" in reason

    def test_read_overlap_with_validated_writer_fails(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        assert cc.validate(1)[0]
        drive(sim, cc.read(2, 2.0, "x"))
        ok, _reason = cc.validate(2)
        assert not ok

    def test_abort_releases_validated_slot(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        assert cc.validate(1)[0]
        cc.abort(1)
        drive(sim, cc.prewrite(2, 2.0, "x", 9))
        assert cc.validate(2)[0]

    def test_disjoint_footprints_validate_in_parallel(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        drive(sim, cc.prewrite(2, 2.0, "y", 9))
        assert cc.validate(1)[0]
        assert cc.validate(2)[0]

    def test_clear_drops_everything(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 5))
        cc.validate(1)
        cc.clear()
        assert cc.active_transactions() == set()


class TestDistributedOcc:
    def test_rmw_race_one_wins(self):
        """Two read-modify-writes on one item: exactly one validates."""
        instance = quick_instance(ccp="OCC", n_items=4, settle_time=40)
        instance.start()
        t1 = Transaction(
            ops=[Operation.read("x1"), Operation.write("x1", 101)], home_site="site1"
        )
        t2 = Transaction(
            ops=[Operation.read("x1"), Operation.write("x1", 102)], home_site="site2"
        )
        p1, p2 = instance.submit(t1), instance.submit(t2)
        instance.sim.run(until=instance.sim.all_of([p1, p2]))
        instance.sim.run(until=instance.sim.now + 40)
        assert {t1.status, t2.status} == {"COMMITTED", "ABORTED"}
        loser = t1 if t1.aborted else t2
        assert loser.abort_cause == "ACP"  # failed validation = NO vote
        ok, _witness = instance.monitor.history.check_serializable()
        assert ok

    def test_session_serializable_under_contention(self):
        from repro.workload.spec import WorkloadSpec

        instance = quick_instance(ccp="OCC", n_items=10, settle_time=50, seed=8)
        result = instance.run_workload(
            WorkloadSpec(n_transactions=30, arrival="closed", mpl=6,
                         min_ops=2, max_ops=4, read_fraction=0.5)
        )
        assert result.serializable is True
        assert instance.monitor.history.version_collisions() == []
        # OCC aborts are ACP (validation), not CCP.
        assert result.statistics.aborts_by_cause.get("CCP", 0) == 0

    def test_no_aborts_without_conflicts(self):
        instance = quick_instance(ccp="OCC", n_items=16, settle_time=30)
        instance.start()
        txns = [
            Transaction(ops=[Operation.write(f"x{i + 1}", i)], home_site="site1")
            for i in range(6)
        ]
        processes = [instance.submit(txn) for txn in txns]
        instance.sim.run(until=instance.sim.all_of(processes))
        assert all(txn.committed for txn in txns)
