"""Unit tests for the lock manager: grants, queues, deadlock strategies."""

import pytest

from repro.errors import ConcurrencyAbort, ProtocolError
from repro.site.locks import LockManager, LockMode


@pytest.fixture
def locks(sim):
    return LockManager(sim, strategy="detect", wait_timeout=None)


def grant_state(event):
    """'granted' | 'waiting' | 'aborted' for a lock event (after sim.run)."""
    if not event.processed:
        return "waiting"
    return "granted" if event.ok else "aborted"


class TestBasicGrants:
    def test_s_lock_granted_immediately(self, sim, locks):
        event = locks.acquire(1, 1.0, "x", LockMode.S)
        assert event.triggered and event.ok
        assert locks.held_locks(1) == {"x": "S"}

    def test_two_shared_locks_coexist(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        event = locks.acquire(2, 2.0, "x", LockMode.S)
        assert event.triggered and event.ok

    def test_x_blocks_s(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.S)
        sim.run()
        assert grant_state(event) == "waiting"
        assert locks.waiting_count() == 1

    def test_s_blocks_x(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.run()
        assert grant_state(event) == "waiting"

    def test_release_grants_waiter(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        locks.release_all(1)
        sim.run()
        assert grant_state(event) == "granted"
        assert locks.held_locks(2) == {"x": "X"}

    def test_reacquire_held_lock_is_immediate(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        event = locks.acquire(1, 1.0, "x", LockMode.S)
        assert event.triggered and event.ok

    def test_x_holder_may_read(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(1, 1.0, "x", LockMode.S)
        assert event.triggered and event.ok
        assert locks.held_locks(1) == {"x": "X"}

    def test_unknown_mode_rejected(self, sim, locks):
        with pytest.raises(ProtocolError):
            locks.acquire(1, 1.0, "x", "Z")

    def test_unknown_strategy_rejected(self, sim):
        with pytest.raises(ProtocolError):
            LockManager(sim, strategy="nonsense")

    def test_timeout_strategy_requires_timeout(self, sim):
        with pytest.raises(ProtocolError):
            LockManager(sim, strategy="timeout", wait_timeout=None)


class TestUpgrades:
    def test_sole_holder_upgrade_immediate(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        event = locks.acquire(1, 1.0, "x", LockMode.X)
        assert event.triggered and event.ok
        assert locks.held_locks(1) == {"x": "X"}

    def test_upgrade_waits_for_other_reader(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        locks.acquire(2, 2.0, "x", LockMode.S)
        event = locks.acquire(1, 1.0, "x", LockMode.X)
        sim.run()
        assert grant_state(event) == "waiting"
        locks.release_all(2)
        sim.run()
        assert grant_state(event) == "granted"
        assert locks.held_locks(1) == {"x": "X"}

    def test_upgrade_deadlock_detected(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        locks.acquire(2, 2.0, "x", LockMode.S)
        e1 = locks.acquire(1, 1.0, "x", LockMode.X)
        e2 = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.run()
        # The youngest (txn 2) dies; txn 1 then upgrades.
        assert grant_state(e2) == "aborted"
        locks.release_all(2)
        sim.run()
        assert grant_state(e1) == "granted"


class TestFifoFairness:
    def test_new_reader_does_not_overtake_queued_writer(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.S)
        writer = locks.acquire(2, 2.0, "x", LockMode.X)
        late_reader = locks.acquire(3, 3.0, "x", LockMode.S)
        sim.run()
        assert grant_state(writer) == "waiting"
        assert grant_state(late_reader) == "waiting"
        locks.release_all(1)
        sim.run()
        assert grant_state(writer) == "granted"
        assert grant_state(late_reader) == "waiting"
        locks.release_all(2)
        sim.run()
        assert grant_state(late_reader) == "granted"

    def test_queue_grants_compatible_prefix(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        r1 = locks.acquire(2, 2.0, "x", LockMode.S)
        r2 = locks.acquire(3, 3.0, "x", LockMode.S)
        locks.release_all(1)
        sim.run()
        assert grant_state(r1) == "granted"
        assert grant_state(r2) == "granted"


class TestDeadlockDetection:
    def test_two_cycle_aborts_youngest(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "y", LockMode.X)
        e1 = locks.acquire(1, 1.0, "y", LockMode.X)  # 1 waits on 2
        sim.run()
        e2 = locks.acquire(2, 2.0, "x", LockMode.X)  # cycle; 2 is youngest
        sim.run()
        assert grant_state(e2) == "aborted"
        assert grant_state(e1) == "waiting"
        locks.release_all(2)
        sim.run()
        assert grant_state(e1) == "granted"
        assert locks.stats.deadlocks == 1

    def test_three_cycle_detected(self, sim, locks):
        locks.acquire(1, 1.0, "a", LockMode.X)
        locks.acquire(2, 2.0, "b", LockMode.X)
        locks.acquire(3, 3.0, "c", LockMode.X)
        locks.acquire(1, 1.0, "b", LockMode.X)
        locks.acquire(2, 2.0, "c", LockMode.X)
        event = locks.acquire(3, 3.0, "a", LockMode.X)
        sim.run()
        assert grant_state(event) == "aborted"  # 3 is youngest

    def test_no_false_deadlock_on_simple_wait(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.run()
        assert locks.stats.deadlocks == 0
        assert grant_state(event) == "waiting"

    def test_victim_is_youngest_even_if_not_requester(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(9, 9.0, "y", LockMode.X)
        e9 = locks.acquire(9, 9.0, "x", LockMode.X)  # young waits on old
        sim.run()
        e1 = locks.acquire(1, 1.0, "y", LockMode.X)  # old closes the cycle
        sim.run()
        assert grant_state(e9) == "aborted"  # youngest dies, not requester
        locks.release_all(9)
        sim.run()
        assert grant_state(e1) == "granted"


class TestTimeoutStrategy:
    def test_wait_timeout_aborts(self, sim):
        locks = LockManager(sim, strategy="timeout", wait_timeout=10.0)
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.run()
        assert grant_state(event) == "aborted"
        assert locks.stats.timeouts == 1
        assert sim.now == 10.0

    def test_grant_before_timeout_no_abort(self, sim):
        locks = LockManager(sim, strategy="timeout", wait_timeout=10.0)
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.call_later(3, lambda: locks.release_all(1))
        sim.run()
        assert grant_state(event) == "granted"
        assert locks.stats.timeouts == 0

    def test_detect_strategy_also_times_out_distributed_waits(self, sim):
        locks = LockManager(sim, strategy="detect", wait_timeout=5.0)
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.run()
        assert grant_state(event) == "aborted"


class TestWaitDie:
    def test_younger_requester_dies(self, sim):
        locks = LockManager(sim, strategy="wait_die", wait_timeout=None)
        locks.acquire(1, 1.0, "x", LockMode.X)  # older holder
        event = locks.acquire(2, 2.0, "x", LockMode.X)  # younger requester
        assert event.triggered and not event.ok
        assert locks.stats.deaths == 1

    def test_older_requester_waits(self, sim):
        locks = LockManager(sim, strategy="wait_die", wait_timeout=None)
        locks.acquire(2, 2.0, "x", LockMode.X)  # younger holder
        event = locks.acquire(1, 1.0, "x", LockMode.X)  # older requester
        sim.run()
        assert grant_state(event) == "waiting"
        locks.release_all(2)
        sim.run()
        assert grant_state(event) == "granted"


class TestWoundWait:
    def test_older_wounds_younger_holder(self, sim):
        wounded = []
        locks = LockManager(
            sim, strategy="wound_wait", wait_timeout=None, on_wound=wounded.append
        )
        locks.acquire(2, 2.0, "x", LockMode.X)  # younger holder
        event = locks.acquire(1, 1.0, "x", LockMode.X)  # older wounds it
        sim.run()
        assert wounded == [2]
        assert locks.stats.wounds == 1
        assert grant_state(event) == "waiting"  # waits for the wounded to die
        locks.release_all(2)
        sim.run()
        assert grant_state(event) == "granted"

    def test_younger_requester_waits_quietly(self, sim):
        wounded = []
        locks = LockManager(
            sim, strategy="wound_wait", wait_timeout=None, on_wound=wounded.append
        )
        locks.acquire(1, 1.0, "x", LockMode.X)  # older holder
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        sim.run()
        assert wounded == []
        assert grant_state(event) == "waiting"

    def test_wounded_waiter_unwound_immediately(self, sim):
        wounded = []
        locks = LockManager(
            sim, strategy="wound_wait", wait_timeout=None, on_wound=wounded.append
        )
        locks.acquire(3, 3.0, "x", LockMode.X)
        young_wait = locks.acquire(2, 2.0, "y", LockMode.X)
        sim.run()
        # txn2 now also holds y... set up: txn2 holds y, waits nowhere.
        # Older txn1 wants y -> wounds txn2 (holder, not waiting here).
        event = locks.acquire(1, 1.0, "y", LockMode.X)
        sim.run()
        assert 2 in wounded


class TestReleaseAndClear:
    def test_release_all_removes_queued_requests(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "x", LockMode.X)
        assert locks.waiting_count() == 1
        locks.release_all(2)
        assert locks.waiting_count() == 0
        assert locks.held_locks(1) == {"x": "X"}

    def test_clear_fails_waiters(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        locks.clear()
        sim.run()
        assert grant_state(event) == "aborted"
        assert locks.held_locks(1) == {}

    def test_release_unknown_txn_is_noop(self, sim, locks):
        locks.release_all(99)  # must not raise

    def test_wait_time_accounted(self, sim, locks):
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "x", LockMode.X)
        sim.call_later(7, lambda: locks.release_all(1))
        sim.run()
        assert locks.stats.total_wait_time == 7.0
