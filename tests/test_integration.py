"""End-to-end integration tests across the full protocol matrix."""

import pytest

from repro.txn.transaction import Operation, Transaction
from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance

RCPS = ["ROWA", "QC"]
CCPS = ["2PL", "TSO", "MVTO"]
ACPS = ["2PC", "3PC"]


class TestProtocolMatrix:
    @pytest.mark.parametrize("rcp", RCPS)
    @pytest.mark.parametrize("ccp", CCPS)
    @pytest.mark.parametrize("acp", ACPS)
    def test_every_combination_runs_and_serializes(self, rcp, ccp, acp):
        instance = quick_instance(
            n_sites=4, n_items=24, rcp=rcp, ccp=ccp, acp=acp, seed=13, settle_time=60
        )
        spec = WorkloadSpec(
            n_transactions=25, arrival="poisson", arrival_rate=0.5,
            min_ops=2, max_ops=5, read_fraction=0.6,
        )
        result = instance.run_workload(spec)
        stats = result.statistics
        assert stats.finished == 25
        assert stats.committed > 0
        assert result.serializable is True
        assert instance.monitor.history.reads_see_committed_versions() == []
        # Everything cleaned up: no leftover locks/workspaces/orphans.
        for site in instance.sites.values():
            assert site.cc.active_transactions() == set()
            assert site.in_doubt_count() == 0

    @pytest.mark.parametrize("ccp", CCPS)
    def test_contended_counter_serializes(self, ccp):
        """Many read-modify-write txns on one item: the acid test for CCP."""
        instance = quick_instance(
            n_sites=3, n_items=2, ccp=ccp, seed=3, settle_time=60
        )
        instance.start()
        txns = []
        for index in range(12):
            txn = Transaction(
                ops=[Operation.read("x1"), Operation.write("x1", index + 100)],
                home_site=f"site{(index % 3) + 1}",
            )
            txns.append(txn)
        processes = [instance.submit(txn) for txn in txns]
        instance.sim.run(until=instance.sim.all_of(processes))
        instance.sim.run(until=instance.sim.now + 60)
        ok, _witness = instance.monitor.history.check_serializable()
        assert ok
        committed = [txn for txn in txns if txn.committed]
        assert committed  # at least some must make it
        # The final committed value must be the write of some committed txn
        # at the highest installed version.
        values = {
            instance.sites[name].store.read("x1")
            for name in instance.catalog.sites_holding("x1")
            if instance.sites[name].store.has_copy("x1")
        }
        top_value, top_version = max(values, key=lambda pair: pair[1])
        assert top_value in {txn.ops[1].value for txn in committed}


class TestReplicationConsistency:
    def test_qc_sequential_writers_never_lose_updates(self):
        instance = quick_instance(n_sites=5, n_items=4, seed=7, settle_time=30)
        instance.start()
        last_committed = None
        for index in range(10):
            txn = Transaction(
                ops=[Operation.write("x1", index)],
                home_site=f"site{(index % 5) + 1}",
            )
            process = instance.submit(txn)
            instance.sim.run(until=process)
            if txn.committed:
                last_committed = index
                # A subsequent read from any site must see this value.
                reader = Transaction(
                    ops=[Operation.read("x1")],
                    home_site=f"site{((index + 2) % 5) + 1}",
                )
                read_process = instance.submit(reader)
                instance.sim.run(until=read_process)
                assert reader.committed
                assert reader.reads["x1"] == index
        assert last_committed is not None

    def test_rowa_all_copies_identical_after_session(self):
        instance = quick_instance(rcp="ROWA", n_sites=4, n_items=12, settle_time=60)
        result = instance.run_workload(
            WorkloadSpec(n_transactions=30, arrival_rate=0.5, read_fraction=0.4)
        )
        assert result.serializable
        for item in instance.catalog.item_names():
            copies = {
                instance.sites[name].store.read(item)
                for name in instance.catalog.sites_holding(item)
            }
            assert len(copies) == 1  # value AND version identical everywhere


class TestFaultScenarios:
    def test_site_crash_mid_session_keeps_history_serializable(self):
        instance = quick_instance(n_items=24, settle_time=80)
        instance.coordinator_config.op_timeout = 12
        instance.coordinator_config.vote_timeout = 10
        instance.config.faults.schedule.crashes.append(("site2", 30.0))
        instance.config.faults.schedule.recoveries.append(("site2", 90.0))
        result = instance.run_workload(
            WorkloadSpec(n_transactions=40, arrival_rate=0.5, read_fraction=0.5)
        )
        assert result.serializable is True
        assert instance.sites["site2"].stats.recoveries == 1

    def test_nameserver_crash_after_bootstrap_harmless(self):
        instance = quick_instance(n_items=8, settle_time=20)
        instance.start()
        instance.nameserver.crash()
        result = instance.run_workload(
            WorkloadSpec(n_transactions=10, arrival_rate=0.5)
        )
        assert result.statistics.committed > 0

    def test_lossy_network_still_serializable(self):
        instance = quick_instance(n_items=24, settle_time=80)
        instance.network.loss_rate = 0.03
        instance.coordinator_config.op_timeout = 15
        instance.coordinator_config.vote_timeout = 12
        result = instance.run_workload(
            WorkloadSpec(n_transactions=30, arrival_rate=0.4, read_fraction=0.6)
        )
        assert result.serializable is True

    def test_repeated_crash_recover_cycles(self):
        instance = quick_instance(n_items=16, settle_time=60)
        instance.coordinator_config.op_timeout = 10
        instance.coordinator_config.vote_timeout = 8
        for time in (20.0, 60.0, 100.0):
            instance.config.faults.schedule.crashes.append(("site3", time))
            instance.config.faults.schedule.recoveries.append(("site3", time + 15.0))
        result = instance.run_workload(
            WorkloadSpec(n_transactions=40, arrival_rate=0.5)
        )
        assert instance.sites["site3"].stats.crashes == 3
        assert instance.sites["site3"].stats.recoveries == 3
        assert result.serializable is True


class TestWeightedVoting:
    def test_heavyweight_copy_forms_quorum_alone(self):
        """A copy with a majority of votes can read and write alone."""
        from repro.core.config import RainbowConfig
        from repro.core.instance import RainbowInstance
        from repro.nameserver.catalog import Catalog

        config = RainbowConfig.quick(n_sites=3, n_items=1)
        catalog = Catalog()
        catalog.add_item("x1", placement={"site1": 3, "site2": 1, "site3": 1})
        config.set_catalog(catalog)
        config.settle_time = 20
        instance = RainbowInstance(config)
        instance.coordinator_config.op_timeout = 10
        instance.start()
        # Crash both lightweight holders: site1's 3 of 5 votes suffice.
        instance.injector.crash_now("site2")
        instance.injector.crash_now("site3")
        txn = Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.committed
        assert instance.sites["site1"].store.read("x1")[0] == 9
