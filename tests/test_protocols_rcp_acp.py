"""Integration tests for RCP (ROWA/QC) and ACP (2PC/3PC) behaviour.

These drive whole transactions through small instances and assert the
protocol-specific observable effects: which copies get written, how
failures map to abort causes, version currency, orphan handling.
"""

import pytest

from repro.net.message import MessageType
from repro.txn.transaction import Operation, Transaction
from tests.conftest import quick_instance


def run_txn(instance, txn):
    process = instance.submit(txn)
    instance.sim.run(until=process)
    return txn


def copies_of(instance, item):
    return {
        name: site.store.read(item)
        for name, site in instance.sites.items()
        if site.store.has_copy(item)
    }


class TestRowa:
    def test_write_updates_every_copy(self):
        instance = quick_instance(rcp="ROWA", n_items=8)
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.committed
        values = copies_of(instance, "x1")
        assert len(values) == 3
        assert all(value == (9, 1) for value in values.values())

    def test_read_prefers_local_copy_no_messages(self):
        instance = quick_instance(rcp="ROWA", n_items=8)
        instance.start()
        before = dict(instance.network.stats.by_type)
        # x1 is placed on site1..site3; home site1 holds a copy.
        txn = run_txn(
            instance, Transaction(ops=[Operation.read("x1")], home_site="site1")
        )
        assert txn.committed
        after = instance.network.stats.by_type
        assert after.get(MessageType.READ, 0) == before.get(MessageType.READ, 0)

    def test_remote_read_when_no_local_copy(self):
        instance = quick_instance(rcp="ROWA", n_items=8)
        instance.start()
        # x2 is placed on site2..site4: site1 must go remote.
        txn = run_txn(
            instance, Transaction(ops=[Operation.read("x2")], home_site="site1")
        )
        assert txn.committed
        assert instance.network.stats.by_type.get(MessageType.READ, 0) >= 1

    def test_write_aborts_rcp_when_any_copy_down(self):
        instance = quick_instance(rcp="ROWA", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 10
        instance.start()
        instance.injector.crash_now("site3")
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.aborted
        assert txn.abort_cause == "RCP"

    def test_read_survives_one_copy_down(self):
        instance = quick_instance(rcp="ROWA", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 10
        instance.start()
        instance.injector.crash_now("site2")
        txn = run_txn(
            instance, Transaction(ops=[Operation.read("x1")], home_site="site1")
        )
        assert txn.committed


class TestQuorumConsensus:
    def test_write_touches_quorum_not_all(self):
        instance = quick_instance(rcp="QC", n_items=8)
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.committed
        values = copies_of(instance, "x1")
        written = [v for v in values.values() if v == (9, 1)]
        stale = [v for v in values.values() if v == (0, 0)]
        assert len(written) == 2  # w = 2 of 3
        assert len(stale) == 1

    def test_read_returns_highest_version_in_quorum(self):
        instance = quick_instance(rcp="QC", n_items=8)
        run_txn(instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1"))
        # Now one copy is stale.  Any read quorum (2 of 3) must include at
        # least one updated copy, and QC picks the highest version.
        for home in ("site1", "site2", "site3"):
            txn = run_txn(
                instance, Transaction(ops=[Operation.read("x1")], home_site=home)
            )
            assert txn.committed
            assert txn.reads["x1"] == 9

    def test_write_survives_minority_down(self):
        instance = quick_instance(rcp="QC", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 10
        instance.start()
        instance.injector.crash_now("site3")
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.committed

    def test_write_aborts_rcp_when_majority_down(self):
        instance = quick_instance(rcp="QC", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 10
        instance.start()
        instance.injector.crash_now("site2")
        instance.injector.crash_now("site3")
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.aborted
        assert txn.abort_cause == "RCP"

    def test_version_advances_across_writes(self):
        instance = quick_instance(rcp="QC", n_items=8)
        for value in (1, 2, 3):
            txn = run_txn(
                instance,
                Transaction(ops=[Operation.write("x1", value)], home_site="site2"),
            )
            assert txn.committed
        versions = [v for _val, v in copies_of(instance, "x1").values()]
        assert max(versions) == 3

    def test_quorum_expansion_after_member_failure(self):
        """If a first-wave member is down, QC expands to remaining holders."""
        instance = quick_instance(rcp="QC", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 8
        instance.start()
        # x2 lives on site2,3,4.  Home site1 contacts a 2-site wave; crash
        # one holder so the wave must expand.
        instance.injector.crash_now("site2")
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x2", 5)], home_site="site1")
        )
        assert txn.committed


class TestAtomicCommit:
    @pytest.mark.parametrize("acp", ["2PC", "3PC"])
    def test_happy_path_commits_and_cleans_up(self, acp):
        instance = quick_instance(acp=acp, n_items=8)
        txn = run_txn(
            instance,
            Transaction(
                ops=[Operation.write("x1", 1), Operation.read("x2")],
                home_site="site1",
            ),
        )
        assert txn.committed
        instance.sim.run(until=instance.sim.now + 50)
        assert all(site.in_doubt_count() == 0 for site in instance.sites.values())
        assert all(
            site.cc.active_transactions() == set() for site in instance.sites.values()
        )

    def test_vote_no_aborts_globally(self):
        instance = quick_instance(n_items=8)
        instance.start()
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site1")

        # Doom the transaction at a remote participant before it prepares:
        # intercept by pre-dooming at site2 (a holder of x1).
        instance.sites["site2"].cc.doom(txn.txn_id)
        txn = run_txn(instance, txn)
        assert txn.aborted
        assert txn.abort_cause in ("ACP", "CCP")
        # No copy anywhere took the write.
        assert all(v == (0, 0) for v in copies_of(instance, "x1").values())

    def test_participant_crash_before_vote_aborts(self):
        instance = quick_instance(n_items=8, settle_time=10)
        instance.coordinator_config.vote_timeout = 8
        instance.coordinator_config.op_timeout = 10
        instance.start()
        site2 = instance.sites["site2"]

        # Crash the participant right after the prewrite lands, before the
        # vote request arrives.
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.call_later(2.5, site2.crash)
        instance.sim.run(until=process)
        assert txn.aborted

    def test_coordinator_decision_record_written(self):
        instance = quick_instance(n_items=8)
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 1)], home_site="site1")
        )
        assert instance.sites["site1"].wal.decision_for(txn.txn_id) == "COMMIT"

    def test_read_only_transaction_commits_without_prewrites(self):
        instance = quick_instance(n_items=8)
        txn = run_txn(
            instance, Transaction(ops=[Operation.read("x1")], home_site="site1")
        )
        assert txn.committed
        assert txn.write_versions == {}


class TestFailpoints:
    def test_failpoint_consumes_arms(self):
        from repro.txn.coordinator import CoordinatorConfig

        config = CoordinatorConfig(failpoint="after_votes", failpoint_arms=2)
        assert config.hit_failpoint("after_votes")
        assert config.hit_failpoint("after_votes")
        assert not config.hit_failpoint("after_votes")
        assert not config.hit_failpoint("after_precommit")

    def test_2pc_blocking_until_recovery(self):
        instance = quick_instance(n_items=8, uncertainty_timeout=20.0,
                                  decision_retry=10.0, settle_time=0)
        instance.coordinator_config.failpoint = "after_votes"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x2", 2)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.abort_cause == "SYSTEM"
        instance.sim.run(until=instance.sim.now + 150)
        blocked = sum(site.in_doubt_count() for site in instance.sites.values())
        assert blocked >= 1  # still blocked while coordinator is down
        instance.injector.recover_now("site1")
        instance.sim.run(until=instance.sim.now + 150)
        assert sum(site.in_doubt_count() for site in instance.sites.values()) == 0
        # Presumed abort: nothing was written anywhere.
        assert all(v[0] == 0 for v in copies_of(instance, "x1").values())

    def test_2pc_double_failure_participant_and_coordinator(self):
        """Coordinator down after votes AND an in-doubt participant crashes:
        both recover, and presumed abort resolves the orphan consistently."""
        instance = quick_instance(n_items=8, uncertainty_timeout=20.0,
                                  decision_retry=10.0, settle_time=0)
        instance.coordinator_config.failpoint = "after_votes"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x2", 2)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.abort_cause == "SYSTEM"
        victims = [name for name, site in instance.sites.items()
                   if name != "site1" and site.in_doubt_count()]
        assert victims  # at least one participant was left in doubt
        instance.injector.crash_now(victims[0])
        instance.sim.run(until=instance.sim.now + 30)
        instance.injector.recover_now(victims[0])
        instance.injector.recover_now("site1")
        instance.sim.run(until=instance.sim.now + 200)
        assert sum(site.in_doubt_count() for site in instance.sites.values()) == 0
        assert all(v[0] == 0 for v in copies_of(instance, "x1").values())
        assert all(v[0] == 0 for v in copies_of(instance, "x2").values())

    def test_3pc_double_failure_precommitted_participant(self):
        """Coordinator down after PRECOMMIT AND a precommitted participant
        crashes: the survivors commit via termination, and the recovered
        participant learns COMMIT from its peers' retained decisions."""
        instance = quick_instance(acp="3PC", n_items=8, uncertainty_timeout=20.0,
                                  decision_retry=10.0, settle_time=0)
        instance.coordinator_config.failpoint = "after_precommit"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        victims = [name for name, site in instance.sites.items()
                   if name != "site1" and site.in_doubt_count()]
        assert victims
        instance.injector.crash_now(victims[0])
        instance.sim.run(until=instance.sim.now + 100)
        instance.injector.recover_now(victims[0])
        instance.injector.recover_now("site1")
        instance.sim.run(until=instance.sim.now + 200)
        assert sum(site.in_doubt_count() for site in instance.sites.values()) == 0
        values = copies_of(instance, "x1")
        committed = [v for v in values.values() if v == (1, 1)]
        assert len(committed) >= 2  # the write quorum committed...
        assert values[victims[0]] == (1, 1)  # ...including the crashed one

    def test_3pc_terminates_without_coordinator(self):
        instance = quick_instance(acp="3PC", n_items=8, uncertainty_timeout=20.0,
                                  decision_retry=10.0, settle_time=0)
        instance.coordinator_config.failpoint = "after_precommit"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x1", 1)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        instance.sim.run(until=instance.sim.now + 200)
        # Without any recovery of site1, participants committed via the
        # termination protocol.
        assert sum(
            site.in_doubt_count()
            for name, site in instance.sites.items()
            if name != "site1"
        ) == 0
        committed_copies = [
            value for value, _version in copies_of(instance, "x1").values()
            if value == 1
        ]
        assert len(committed_copies) >= 1
