"""Unit tests for RainbowConfig: builders, validation, persistence."""

import pytest

from repro.core.config import (
    FaultConfig,
    NetworkConfig,
    ProtocolConfig,
    RainbowConfig,
    SiteConfig,
)
from repro.errors import ConfigurationError
from repro.net.faults import FaultSchedule
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LanWanLatency,
    UniformLatency,
)


class TestNetworkConfig:
    @pytest.mark.parametrize(
        "kind,params,expected",
        [
            ("constant", {"value": 2.0}, ConstantLatency),
            ("uniform", {"low": 0.5, "high": 1.0}, UniformLatency),
            ("exponential", {"mean": 1.0}, ExponentialLatency),
            ("lanwan", {}, LanWanLatency),
        ],
    )
    def test_build_latency_models(self, kind, params, expected):
        config = NetworkConfig(latency=kind, latency_params=params)
        assert isinstance(config.build_latency_model(), expected)

    def test_unknown_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(latency="warp").build_latency_model()


class TestProtocolConfig:
    def test_defaults_valid(self):
        ProtocolConfig().validate()

    @pytest.mark.parametrize("field,value", [("rcp", "XX"), ("ccp", "XX"), ("acp", "XX")])
    def test_unknown_protocols_rejected(self, field, value):
        config = ProtocolConfig()
        setattr(config, field, value)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_case_insensitive_protocol_names(self):
        ProtocolConfig(rcp="qc", ccp="tso", acp="3pc").validate()

    def test_nonpositive_timeouts_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(op_timeout=0).validate()


class TestQuickBuilder:
    def test_quick_shape(self):
        config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=2)
        assert config.site_names() == ["site1", "site2", "site3", "site4"]
        catalog = config.catalog()
        assert len(catalog) == 8
        assert all(spec.replication_degree == 2 for spec in catalog.items())
        config.validate()

    def test_quick_full_replication_by_default(self):
        config = RainbowConfig.quick(n_sites=3, n_items=4)
        assert all(spec.replication_degree == 3 for spec in config.catalog().items())

    def test_quick_sites_per_host(self):
        config = RainbowConfig.quick(n_sites=4, sites_per_host=2)
        hosts = [site.host for site in config.sites]
        assert hosts == ["host1", "host1", "host2", "host2"]

    def test_quick_overrides(self):
        config = RainbowConfig.quick(n_sites=2, n_items=4, seed=99, settle_time=5.0)
        assert config.seed == 99
        assert config.settle_time == 5.0

    def test_quick_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            RainbowConfig.quick(n_sites=2, n_items=2, nonsense=1)

    def test_quick_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            RainbowConfig.quick(n_sites=0)
        with pytest.raises(ConfigurationError):
            RainbowConfig.quick(n_items=0)


class TestValidation:
    def test_no_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            RainbowConfig().validate()

    def test_duplicate_site_names_rejected(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2)
        config.sites.append(SiteConfig(name="site1", host="hostX"))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_catalog_site_universe_checked(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2)
        catalog = config.catalog()
        catalog.item("x1").placement["ghost"] = 1
        config.set_catalog(catalog)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_fault_targets_checked(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2)
        config.faults.schedule.crashes.append(("ghost", 5.0))
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_nameserver_fault_target_allowed(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2)
        config.faults.schedule.crashes.append(("nameserver", 5.0))
        config.validate()

    def test_random_faults_need_mttf(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2)
        config.faults.random_targets = ["site1"]
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_negative_settle_rejected(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2, settle_time=-1)
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_hosts_include_nameserver(self):
        config = RainbowConfig.quick(n_sites=2, n_items=2)
        assert "ns-host" in config.hosts()


class TestPersistence:
    def test_roundtrip_through_dict(self):
        config = RainbowConfig.quick(n_sites=3, n_items=6, replication_degree=2, seed=5)
        config.protocols.ccp = "TSO"
        config.protocols.ccp_options = {"wait_timeout": 33.0}
        config.faults = FaultConfig(
            schedule=FaultSchedule(
                crashes=[("site1", 10.0)],
                recoveries=[("site1", 20.0)],
                partitions=[(5.0, [["host1"], ["host2"]])],
                heals=[30.0],
                link_cuts=[("host1", "host2", 12.0, 18.0)],
                flaky_links=[("host1", "host2", 40.0, 60.0, 0.2, 0.1)],
            ),
            random_targets=["site2"],
            mttf=100.0,
            mttr=10.0,
            horizon=500.0,
        )
        clone = RainbowConfig.from_dict(config.to_dict())
        assert clone.site_names() == config.site_names()
        assert clone.protocols.ccp == "TSO"
        assert clone.protocols.ccp_options == {"wait_timeout": 33.0}
        assert clone.seed == 5
        assert clone.faults.schedule.crashes == [("site1", 10.0)]
        assert clone.faults.schedule.partitions == [(5.0, [["host1"], ["host2"]])]
        assert clone.faults.schedule.link_cuts == [("host1", "host2", 12.0, 18.0)]
        assert clone.faults.schedule.flaky_links == [
            ("host1", "host2", 40.0, 60.0, 0.2, 0.1)
        ]
        assert clone.faults.mttf == 100.0
        assert clone.catalog().item_names() == config.catalog().item_names()

    def test_save_load_file(self, tmp_path):
        config = RainbowConfig.quick(n_sites=2, n_items=4, seed=77)
        path = tmp_path / "session.json"
        config.save(path)
        loaded = RainbowConfig.load(path)
        assert loaded.seed == 77
        assert loaded.site_names() == config.site_names()
        loaded.validate()

    def test_saved_json_is_readable(self, tmp_path):
        import json

        config = RainbowConfig.quick(n_sites=2, n_items=2)
        path = tmp_path / "c.json"
        config.save(path)
        data = json.loads(path.read_text())
        assert "sites" in data and "protocols" in data
