"""Unit tests for the name-server catalog (replication schema)."""

import random

import pytest

from repro.errors import CatalogError
from repro.nameserver.catalog import Catalog, ItemSpec


def make_catalog(n=4, sites=("s1", "s2", "s3")):
    catalog = Catalog()
    for index in range(n):
        catalog.add_item(f"x{index}", placement=list(sites))
    return catalog


class TestItemSpec:
    def test_votes_and_degree(self):
        spec = ItemSpec("x", placement={"s1": 2, "s2": 1})
        assert spec.total_votes == 3
        assert spec.replication_degree == 2
        assert spec.sites == ["s1", "s2"]

    def test_default_quorums_are_majorities(self):
        spec = ItemSpec("x", placement={"s1": 1, "s2": 1, "s3": 1})
        assert spec.effective_read_quorum() == 2
        assert spec.effective_write_quorum() == 2

    def test_explicit_quorums_respected(self):
        spec = ItemSpec("x", placement={"s1": 1, "s2": 1, "s3": 1},
                        read_quorum=1, write_quorum=3)
        assert spec.effective_read_quorum() == 1
        assert spec.effective_write_quorum() == 3
        spec.validate()

    def test_validate_rejects_no_copies(self):
        with pytest.raises(CatalogError):
            ItemSpec("x").validate()

    def test_validate_rejects_nonpositive_votes(self):
        with pytest.raises(CatalogError):
            ItemSpec("x", placement={"s1": 0}).validate()

    def test_validate_rejects_rw_overlap_violation(self):
        spec = ItemSpec("x", placement={"s1": 1, "s2": 1, "s3": 1, "s4": 1},
                        read_quorum=1, write_quorum=3)
        with pytest.raises(CatalogError, match="r\\+w"):
            spec.validate()

    def test_validate_rejects_ww_overlap_violation(self):
        spec = ItemSpec("x", placement={"s1": 1, "s2": 1, "s3": 1, "s4": 1},
                        read_quorum=3, write_quorum=2)
        with pytest.raises(CatalogError, match="2w"):
            spec.validate()

    def test_validate_rejects_out_of_range_quorums(self):
        spec = ItemSpec("x", placement={"s1": 1}, read_quorum=2, write_quorum=1)
        with pytest.raises(CatalogError):
            spec.validate()

    def test_weighted_votes_change_quorum(self):
        spec = ItemSpec("x", placement={"s1": 3, "s2": 1, "s3": 1})
        assert spec.total_votes == 5
        assert spec.effective_write_quorum() == 3  # s1 alone

    def test_single_copy_valid(self):
        spec = ItemSpec("x", placement={"s1": 1})
        spec.validate()
        assert spec.effective_read_quorum() == 1


class TestCatalogItems:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_item("a", initial_value=5, placement=["s1"])
        assert catalog.item("a").initial_value == 5
        assert "a" in catalog
        assert len(catalog) == 1

    def test_duplicate_item_rejected(self):
        catalog = Catalog()
        catalog.add_item("a", placement=["s1"])
        with pytest.raises(CatalogError):
            catalog.add_item("a")

    def test_unknown_item_rejected(self):
        with pytest.raises(CatalogError):
            Catalog().item("ghost")

    def test_placement_from_iterable_gets_unit_votes(self):
        catalog = Catalog()
        spec = catalog.add_item("a", placement=["s1", "s2"])
        assert spec.placement == {"s1": 1, "s2": 1}

    def test_placement_from_dict_keeps_votes(self):
        catalog = Catalog()
        spec = catalog.add_item("a", placement={"s1": 2})
        assert spec.placement == {"s1": 2}

    def test_item_names_sorted(self):
        catalog = Catalog()
        catalog.add_item("b", placement=["s1"])
        catalog.add_item("a", placement=["s1"])
        assert catalog.item_names() == ["a", "b"]


class TestFragments:
    def test_define_fragment_groups_items(self):
        catalog = make_catalog()
        fragment = catalog.define_fragment("f1", ["x0", "x1"], "first half")
        assert fragment.items == ["x0", "x1"]
        assert catalog.item("x0").fragment == "f1"
        assert catalog.fragment("f1").description == "first half"

    def test_fragment_via_add_item(self):
        catalog = Catalog()
        catalog.add_item("a", placement=["s1"], fragment="accounts")
        assert catalog.fragment("accounts").items == ["a"]

    def test_duplicate_fragment_rejected(self):
        catalog = make_catalog()
        catalog.define_fragment("f1", ["x0"])
        with pytest.raises(CatalogError):
            catalog.define_fragment("f1", ["x1"])

    def test_fragment_of_unknown_item_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.define_fragment("f1", ["ghost"])

    def test_unknown_fragment_rejected(self):
        with pytest.raises(CatalogError):
            make_catalog().fragment("ghost")


class TestPlacementHelpers:
    def test_full_replication(self):
        catalog = make_catalog(sites=("s1",))
        catalog.place_full_replication(["a", "b"], votes=2)
        for spec in catalog.items():
            assert spec.placement == {"a": 2, "b": 2}

    def test_full_replication_empty_sites_rejected(self):
        with pytest.raises(CatalogError):
            make_catalog().place_full_replication([])

    def test_round_robin_balanced_and_deterministic(self):
        catalog = make_catalog(n=8)
        catalog.place_round_robin(["a", "b", "c", "d"], degree=2)
        placements = [tuple(spec.sites) for spec in catalog.items()]
        assert placements == [tuple(sorted(p)) for p in placements]
        counts = {}
        for spec in catalog.items():
            assert spec.replication_degree == 2
            for site in spec.sites:
                counts[site] = counts.get(site, 0) + 1
        assert max(counts.values()) - min(counts.values()) == 0

    def test_round_robin_bad_degree_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.place_round_robin(["a", "b"], degree=3)
        with pytest.raises(CatalogError):
            catalog.place_round_robin(["a", "b"], degree=0)

    def test_random_placement_degree_respected(self):
        catalog = make_catalog(n=10)
        catalog.place_random(["a", "b", "c", "d"], degree=3, rng=random.Random(0))
        for spec in catalog.items():
            assert spec.replication_degree == 3

    def test_queries(self):
        catalog = Catalog()
        catalog.add_item("a", placement=["s1", "s2"])
        catalog.add_item("b", placement=["s2"])
        assert catalog.sites_holding("a") == ["s1", "s2"]
        assert catalog.items_at("s2") == ["a", "b"]
        assert catalog.items_at("s1") == ["a"]
        assert catalog.all_sites() == ["s1", "s2"]


class TestValidationAndRoundtrip:
    def test_empty_catalog_invalid(self):
        with pytest.raises(CatalogError):
            Catalog().validate()

    def test_unknown_site_in_universe_rejected(self):
        catalog = make_catalog(sites=("s1", "ghost"))
        with pytest.raises(CatalogError, match="unknown sites"):
            catalog.validate(known_sites=["s1"])

    def test_valid_catalog_passes(self):
        make_catalog().validate(known_sites=["s1", "s2", "s3"])

    def test_roundtrip_preserves_schema(self):
        catalog = make_catalog()
        catalog.item("x0").read_quorum = 2
        catalog.item("x0").write_quorum = 2
        catalog.define_fragment("f", ["x1", "x2"], "desc")
        data = catalog.to_dict()
        clone = Catalog.from_dict(data)
        assert clone.item_names() == catalog.item_names()
        assert clone.item("x0").read_quorum == 2
        assert clone.item("x1").fragment == "f"
        assert clone.fragment("f").description == "desc"
        assert clone.item("x3").placement == catalog.item("x3").placement
