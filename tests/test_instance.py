"""Unit/integration tests for RainbowInstance bring-up and sessions."""

import pytest

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.errors import ConfigurationError
from repro.txn.transaction import Operation, Transaction
from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance


class TestBringUp:
    def test_sites_and_nameserver_created(self):
        instance = quick_instance(n_sites=3, n_items=6)
        assert sorted(instance.sites) == ["site1", "site2", "site3"]
        assert instance.nameserver.site_names() == ["site1", "site2", "site3"]
        assert set(instance.directory.values()) == {
            site.address for site in instance.sites.values()
        }

    def test_copies_installed_per_catalog(self):
        instance = quick_instance(n_sites=3, n_items=6, replication_degree=2)
        for item in instance.catalog.item_names():
            holders = instance.catalog.sites_holding(item)
            for name, site in instance.sites.items():
                assert site.store.has_copy(item) == (name in holders)

    def test_invalid_config_rejected_at_construction(self):
        config = RainbowConfig()  # no sites
        with pytest.raises(ConfigurationError):
            RainbowInstance(config)

    def test_start_bootstraps_directory_via_ns_messages(self):
        instance = quick_instance(n_sites=2, n_items=4)
        instance.start()
        assert instance.network.stats.by_type.get("NS_LOOKUP", 0) == 2
        assert instance.network.stats.by_type.get("NS_CATALOG", 0) == 2
        for site in instance.sites.values():
            assert site.directory == instance.directory
            assert site.catalog_cache.item_names() == instance.catalog.item_names()

    def test_start_idempotent(self):
        instance = quick_instance(n_sites=2, n_items=4)
        instance.start()
        t = instance.sim.now
        instance.start()
        assert instance.sim.now == t

    def test_bootstrap_survives_crashed_nameserver(self):
        instance = quick_instance(n_sites=2, n_items=4)
        instance.nameserver.crash()
        instance.start()  # falls back to administrator copies
        for site in instance.sites.values():
            assert site.directory == instance.directory

    def test_fault_plan_applied_on_start(self):
        instance = quick_instance(n_sites=2, n_items=4, settle_time=5)
        instance.config.faults.schedule.crashes.append(("site2", 10.0))
        instance.start()
        instance.sim.run(until=15)
        assert not instance.sites["site2"].up


class TestDirectSubmission:
    def test_submit_runs_transaction(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.write("x1", 3)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.committed
        assert instance.monitor.submitted == 1

    def test_submit_unknown_home_rejected(self):
        instance = quick_instance(n_items=8)
        txn = Transaction(ops=[Operation.read("x1")], home_site="ghost")
        with pytest.raises(ConfigurationError):
            instance.submit(txn)

    def test_run_transactions_batch(self):
        instance = quick_instance(n_items=16, settle_time=20)
        txns = [
            Transaction(ops=[Operation.write(f"x{i+1}", i)], home_site="site1")
            for i in range(5)
        ]
        result = instance.run_transactions(txns)
        assert result.statistics.finished == 5
        assert all(txn.committed for txn in txns)


class TestSessions:
    def test_run_workload_produces_result(self):
        instance = quick_instance(n_items=16, settle_time=20)
        result = instance.run_workload(WorkloadSpec(n_transactions=8, arrival_rate=0.5))
        assert result.statistics.finished == 8
        assert result.serializable is True
        assert result.duration > 0
        assert result.committed + result.aborted == 8

    def test_two_sessions_accumulate(self):
        instance = quick_instance(n_items=16, settle_time=20)
        instance.run_workload(WorkloadSpec(n_transactions=5, arrival_rate=0.5))
        result = instance.run_workload(WorkloadSpec(n_transactions=5, arrival_rate=0.5))
        assert result.statistics.finished == 10

    def test_settle_time_respected(self):
        instance = quick_instance(n_items=8, settle_time=50)
        t_before = instance.sim.now
        instance.run_workload(WorkloadSpec(n_transactions=1, arrival_rate=1.0))
        assert instance.sim.now >= t_before + 50

    def test_session_result_contains_fault_log(self):
        instance = quick_instance(n_items=8, settle_time=10)
        instance.config.faults.schedule.crashes.append(("site2", 5.0))
        instance.config.faults.schedule.recoveries.append(("site2", 8.0))
        result = instance.run_workload(WorkloadSpec(n_transactions=2, arrival_rate=0.5))
        kinds = [event.kind for event in result.fault_log]
        assert kinds == ["crash", "recover"]

    def test_seed_reproducibility(self):
        def run(seed):
            instance = quick_instance(n_items=16, seed=seed, settle_time=20)
            result = instance.run_workload(
                WorkloadSpec(n_transactions=10, arrival_rate=0.5)
            )
            stats = result.statistics
            return (
                stats.committed,
                stats.messages_total,
                stats.mean_response_time,
                [o.status for o in result.outcomes],
            )

        assert run(5) == run(5)
        assert run(5) != run(6) or run(5)[1] != run(6)[1]
