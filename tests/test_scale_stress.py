"""Scale/stress tests: larger sessions still correct and fast enough."""

import time

import pytest

from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance


@pytest.mark.slow
class TestScaleStress:
    def test_500_txn_session_serializable(self):
        """A laptop-scale 'big' session: 8 sites, 500 transactions."""
        instance = quick_instance(
            n_sites=8, n_items=128, replication_degree=3, seed=99, settle_time=80
        )
        started = time.perf_counter()
        result = instance.run_workload(
            WorkloadSpec(
                n_transactions=500, arrival="poisson", arrival_rate=1.0,
                min_ops=2, max_ops=5, read_fraction=0.7, increment_fraction=0.3,
            )
        )
        elapsed = time.perf_counter() - started
        stats = result.statistics
        assert stats.finished == 500
        assert stats.commit_rate > 0.7
        assert result.serializable is True
        assert instance.monitor.history.version_collisions() == []
        # No leaked state anywhere at the end.
        for site in instance.sites.values():
            assert site.cc.active_transactions() == set()
            assert site.in_doubt_count() == 0
        # Performance envelope: the whole session simulates in seconds.
        assert elapsed < 60, f"500-txn session took {elapsed:.1f}s"

    def test_long_lived_instance_many_sessions(self):
        """Ten consecutive sessions on one instance stay consistent."""
        instance = quick_instance(
            n_sites=4, n_items=32, replication_degree=3, seed=5, settle_time=30
        )
        for _session in range(10):
            result = instance.run_workload(
                WorkloadSpec(n_transactions=15, arrival_rate=1.0,
                             min_ops=2, max_ops=4)
            )
            assert result.serializable is True
        assert instance.monitor.output_statistics().finished == 150
        ok, _witness = instance.monitor.history.check_serializable()
        assert ok

    def test_heavy_fault_churn_stays_consistent(self):
        """Aggressive random crash/recover across a whole session."""
        instance = quick_instance(
            n_sites=5, n_items=40, replication_degree=5, seed=31, settle_time=100
        )
        instance.coordinator_config.op_timeout = 12
        instance.coordinator_config.vote_timeout = 10
        instance.coordinator_config.ack_timeout = 8
        instance.config.uncertainty_timeout = 25.0
        instance.config.decision_retry = 10.0
        instance.config.faults.random_targets = instance.config.site_names()
        instance.config.faults.mttf = 120.0
        instance.config.faults.mttr = 30.0
        instance.config.faults.horizon = 500.0
        result = instance.run_workload(
            WorkloadSpec(n_transactions=100, arrival_rate=0.4,
                         min_ops=2, max_ops=4, read_fraction=0.5)
        )
        # Transactions submitted to a crashed home site never start: the
        # WLG reports them LOST.  Everything is accounted for either way.
        lost = sum(1 for outcome in result.outcomes if outcome.status == "LOST")
        assert result.statistics.finished + lost >= 100
        assert result.statistics.finished >= 80
        assert instance.injector.crash_count() >= 5
        assert result.serializable is True
        assert instance.monitor.history.reads_see_committed_versions() == []
        # After the horizon everything heals and drains.
        instance.sim.run(until=instance.sim.now + 300)
        assert all(site.up for site in instance.sites.values())
        assert all(
            site.in_doubt_count() == 0 for site in instance.sites.values()
        )
