"""Tests for the classroom package: assignments and the NOCC protocol."""

import pytest

import repro.classroom  # noqa: F401 - registers NOCC
from repro.classroom import (
    all_assignments,
    assignment_2pc_blocking,
    assignment_crash_recovery,
    assignment_deadlock,
    assignment_lost_update_nocc,
    assignment_quorum_intersection,
)
from repro.classroom.nocc import NoConcurrencyController
from repro.protocols.base import ccp_registry, make_ccp
from repro.site.storage import LocalStore
from tests.conftest import drive


class TestNoccRegistration:
    def test_nocc_registered(self):
        assert "NOCC" in ccp_registry()

    def test_nocc_instantiable_via_registry(self, sim):
        store = LocalStore("s")
        store.create_copy("x")
        cc = make_ccp("NOCC", sim, store)
        assert isinstance(cc, NoConcurrencyController)


class TestNoccBehaviour:
    @pytest.fixture
    def cc(self, sim):
        store = LocalStore("s")
        store.create_copy("x", 0)
        return NoConcurrencyController(sim, store)

    def test_reads_never_block_or_reject(self, sim, cc):
        assert drive(sim, cc.read(1, 1.0, "x")) == (0, 0)
        drive(sim, cc.prewrite(2, 2.0, "x", 9))
        # A concurrent read sails through, oblivious to the pending write.
        assert drive(sim, cc.read(3, 3.0, "x")) == (0, 0)

    def test_conflicting_prewrites_both_accepted(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 1))
        drive(sim, cc.prewrite(2, 2.0, "x", 2))  # no rejection, no wait
        assert cc.active_transactions() == {1, 2}

    def test_read_own_write(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 42))
        assert drive(sim, cc.read(1, 1.0, "x"))[0] == 42

    def test_commit_and_abort(self, sim, cc):
        drive(sim, cc.prewrite(1, 1.0, "x", 42))
        cc.commit(1, {"x": 1})
        assert cc.store.read("x") == (42, 1)
        drive(sim, cc.prewrite(2, 2.0, "x", 50))
        cc.abort(2)
        assert cc.store.read("x") == (42, 1)


class TestAssignments:
    """Each stock lab assignment must observe its phenomenon."""

    def test_deadlock_assignment(self):
        report = assignment_deadlock()
        assert report.passed, report.render()
        assert report.observations["deadlocks_detected"] >= 1
        assert "[x1=1]" in report.observations["local_history_site1"]

    def test_2pc_blocking_assignment(self):
        report = assignment_2pc_blocking()
        assert report.passed, report.render()
        assert report.observations["orphans_while_coordinator_down"] >= 1
        assert report.observations["orphans_after_recovery"] == 0

    def test_quorum_intersection_assignment(self):
        report = assignment_quorum_intersection()
        assert report.passed, report.render()
        assert report.observations["value_read"] == 42

    def test_lost_update_assignment(self):
        report = assignment_lost_update_nocc()
        assert report.passed, report.render()
        assert report.observations["version_collisions"]

    def test_crash_recovery_assignment(self):
        report = assignment_crash_recovery()
        assert report.passed, report.render()
        assert report.observations["value_read"] == 11

    def test_all_assignments_listing(self):
        names = [fn().name for fn in all_assignments()]
        assert names == [
            "deadlock",
            "2pc-blocking",
            "quorum-intersection",
            "lost-update-nocc",
            "crash-recovery",
            "distributed-deadlock",
            "checkpoint-recovery",
        ]

    def test_distributed_deadlock_assignment(self):
        from repro.classroom import assignment_distributed_deadlock

        report = assignment_distributed_deadlock()
        assert report.passed, report.render()
        assert report.observations["cycles_found"] >= 1
        assert report.observations["probe_messages"]

    def test_checkpoint_recovery_assignment(self):
        from repro.classroom import assignment_checkpoint_recovery

        report = assignment_checkpoint_recovery()
        assert report.passed, report.render()
        assert report.observations["records_truncated"] > 0
        assert report.observations["value_after_recovery"] == 5

    def test_report_render(self):
        report = assignment_crash_recovery()
        text = report.render()
        assert "Assignment: crash-recovery" in text
        assert "phenomenon observed: True" in text
