"""Unit tests for deterministic random streams and distributions."""

import pytest

from repro.sim.randoms import (
    RandomStreams,
    exponential,
    iterate_poisson_arrivals,
    weighted_choice,
    zipf_weights,
)


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.get("net") is streams.get("net")

    def test_different_names_independent(self):
        streams = RandomStreams(1)
        a = [streams.get("a").random() for _ in range(5)]
        b = [streams.get("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproducible(self):
        first = [RandomStreams(9).get("x").random() for _ in range(3)]
        second = [RandomStreams(9).get("x").random() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        assert RandomStreams(1).get("x").random() != RandomStreams(2).get("x").random()

    def test_spawn_is_deterministic(self):
        child1 = RandomStreams(5).spawn("rep1")
        child2 = RandomStreams(5).spawn("rep1")
        assert child1.seed == child2.seed
        assert RandomStreams(5).spawn("rep2").seed != child1.seed

    def test_adding_stream_does_not_shift_existing(self):
        streams = RandomStreams(3)
        first_draw = streams.get("workload").random()
        streams2 = RandomStreams(3)
        streams2.get("faults")  # extra stream created first
        assert streams2.get("workload").random() == first_draw


class TestZipfWeights:
    def test_theta_zero_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(abs(w - 0.25) < 1e-12 for w in weights)

    def test_weights_sum_to_one(self):
        assert abs(sum(zipf_weights(50, 0.9)) - 1.0) < 1e-9

    def test_weights_decrease_with_rank(self):
        weights = zipf_weights(10, 1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_higher_theta_more_skewed(self):
        mild = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 1.5)
        assert steep[0] > mild[0]

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestWeightedChoice:
    def test_degenerate_weight_always_chosen(self):
        import random

        rng = random.Random(0)
        weights = [0.0, 1.0, 0.0]
        assert all(weighted_choice(rng, weights) == 1 for _ in range(20))

    def test_respects_distribution_roughly(self):
        import random

        rng = random.Random(1)
        weights = [0.8, 0.2]
        draws = [weighted_choice(rng, weights) for _ in range(2000)]
        share = draws.count(0) / len(draws)
        assert 0.75 < share < 0.85


class TestExponential:
    def test_nonpositive_mean_returns_zero(self):
        import random

        assert exponential(random.Random(0), 0) == 0.0
        assert exponential(random.Random(0), -3) == 0.0

    def test_mean_roughly_matches(self):
        import random

        rng = random.Random(2)
        draws = [exponential(rng, 10.0) for _ in range(5000)]
        assert 9.0 < sum(draws) / len(draws) < 11.0


class TestPoissonArrivals:
    def test_invalid_rate_rejected(self):
        import random

        with pytest.raises(ValueError):
            next(iterate_poisson_arrivals(random.Random(0), 0))

    def test_gaps_positive_and_mean_matches(self):
        import random

        gaps = iterate_poisson_arrivals(random.Random(3), 2.0)
        draws = [next(gaps) for _ in range(4000)]
        assert all(g >= 0 for g in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55
