"""Edge-case tests across modules (error paths and rarely-hit branches)."""

import pytest

from repro.errors import (
    AuthorizationError,
    CommitAbort,
    ConcurrencyAbort,
    RainbowError,
    ReplicationAbort,
    SystemAbort,
    TransactionAborted,
    WebTierError,
)
from repro.gui.applet import GuiApplet
from repro.net.message import Message, MessageType
from repro.txn.transaction import Operation, Transaction
from repro.web.requests import WebRequest, WebResponse
from repro.web.tier import RainbowWebTier
from repro.workload.spec import WorkloadSpec
from tests.conftest import drive, quick_instance


class TestErrorHierarchy:
    def test_abort_causes(self):
        assert ReplicationAbort("x").cause == "RCP"
        assert ConcurrencyAbort("x").cause == "CCP"
        assert CommitAbort("x").cause == "ACP"
        assert SystemAbort("x").cause == "SYSTEM"

    def test_aborts_are_transaction_aborted(self):
        for error in (ReplicationAbort(), ConcurrencyAbort(), CommitAbort(), SystemAbort()):
            assert isinstance(error, TransactionAborted)
            assert isinstance(error, RainbowError)

    def test_authorization_is_webtier_error(self):
        assert isinstance(AuthorizationError("x"), WebTierError)

    def test_abort_message_format(self):
        error = ConcurrencyAbort("lock timeout")
        assert "CCP" in str(error)
        assert "lock timeout" in str(error)


class TestKernelOdds:
    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(7)
        assert sim.peek() == 7.0

    def test_run_until_none_with_no_events(self, sim):
        sim.run()
        assert sim.now == 0.0

    def test_event_repr_is_stable(self, sim):
        event = sim.event("named")
        assert "named" in repr(event)


class TestMessageOdds:
    def test_sent_at_stamped_on_send(self, sim, network):
        a = network.endpoint("h1", "a")
        network.endpoint("h2", "b")
        sim.run(until=3)
        msg = a.send("h2/b", "X")
        assert msg.sent_at == 3.0

    def test_reply_defaults_size(self):
        request = Message(src="a/1", dst="b/2", mtype="X", size=10)
        reply = request.reply("Y")
        assert reply.size == 1


class TestWebTierErrorPaths:
    @pytest.fixture
    def applet(self):
        instance = quick_instance(n_items=8, settle_time=10)
        instance.start()
        tier = RainbowWebTier(instance)
        applet = GuiApplet(tier)
        applet.login("student", "student")
        return applet

    def test_wlglet_unknown_home_site(self, applet):
        txn = Transaction(ops=[Operation.read("x1")], home_site="ghost")
        response = applet.call("wlglet", "submit_txn", {"txn": txn})
        assert not response.ok
        assert "unknown home site" in response.error

    def test_wlglet_unknown_workload_id(self, applet):
        response = applet.call("wlglet", "workload_status", {"workload_id": 424242})
        assert not response.ok

    def test_stale_token_rejected(self, applet):
        applet.token = "tok-forged"
        response = applet.call("pmlet", "statistics")
        assert not response.ok
        assert "not logged in" in response.error

    def test_logout_invalidates_token(self, applet):
        token = applet.token
        applet.logout()
        applet.token = token
        response = applet.call("pmlet", "statistics")
        assert not response.ok

    def test_configure_quorums_validates(self, applet):
        admin = GuiApplet(applet.tier)
        admin.login("admin", "admin")
        response = admin.call(
            "nsrunnerlet", "configure_quorums",
            {"item": "x1", "read_quorum": 1, "write_quorum": 1},  # r+w <= V
        )
        assert not response.ok

    def test_web_request_roundtrip_defaults(self):
        request = WebRequest.from_payload({})
        assert request.servlet == ""
        assert request.args == {}
        response = WebResponse.from_payload(None)
        assert not response.ok


class TestWorkloadOdds:
    def test_think_time_slows_closed_loop(self):
        fast = quick_instance(n_items=32, seed=42, settle_time=10)
        slow = quick_instance(n_items=32, seed=42, settle_time=10)
        spec_fast = WorkloadSpec(n_transactions=6, arrival="closed", mpl=2,
                                 think_time=0.0)
        spec_slow = WorkloadSpec(n_transactions=6, arrival="closed", mpl=2,
                                 think_time=25.0)
        fast.run_workload(spec_fast)
        slow.run_workload(spec_slow)
        assert slow.sim.now > fast.sim.now

    def test_manual_workload_time_ordering(self):
        instance = quick_instance(n_items=8, settle_time=20)
        manual = instance.manual_workload()
        late = Transaction(ops=[Operation.read("x1")], home_site="site1")
        early = Transaction(ops=[Operation.write("x1", 1)], home_site="site2")
        manual.add(late, at=50.0).add(early, at=0.0)  # added out of order
        instance.run_manual(manual)
        assert early.decided_at < late.decided_at
        assert late.reads["x1"] == 1  # saw the earlier write

    def test_min_equals_max_ops(self):
        import random

        from repro.workload.generator import WorkloadGenerator

        instance = quick_instance(n_items=32)
        spec = WorkloadSpec(min_ops=3, max_ops=3)
        generator = WorkloadGenerator(
            instance.sim, instance.network, instance.directory, instance.catalog,
            spec, random.Random(0), name="wlg-eq",
        )
        assert all(len(generator.make_transaction().ops) <= 3 for _ in range(10))


class TestMonitorOdds:
    def test_aborted_txn_still_gets_message_count(self):
        instance = quick_instance(n_items=8, settle_time=20)
        instance.start()
        txn = Transaction(ops=[Operation.write("x2", 1)], home_site="site1")
        instance.sites["site2"].cc.doom(txn.txn_id)
        process = instance.submit(txn)
        instance.sim.run(until=process)
        record = next(r for r in instance.monitor.records if r.txn_id == txn.txn_id)
        assert record.status == "ABORTED"
        assert record.messages > 0

    def test_nameserver_counts_queries(self):
        instance = quick_instance(n_items=4)
        instance.start()
        # Bootstrap: every site asked NS_LOOKUP and NS_CATALOG.
        assert instance.nameserver.queries_served == 2 * len(instance.sites)


class TestPanelsOdds:
    def test_session_panel_without_recent(self, sim, network):
        from repro.gui.panels import render_session_panel
        from repro.monitor.stats import ProgressMonitor

        monitor = ProgressMonitor(sim, network)
        panel = render_session_panel(monitor.output_statistics())
        assert "Recent transactions" not in panel

    def test_replication_panel_without_fragments(self):
        from repro.gui.panels import render_replication_panel
        from repro.nameserver.catalog import Catalog

        catalog = Catalog()
        catalog.add_item("a", placement=["s1"])
        panel = render_replication_panel(catalog)
        assert "Fragments:" not in panel


class TestCliOdds:
    def test_experiment_matrix_via_cli(self, capsys, monkeypatch):
        from repro import cli

        monkeypatch.setitem(
            cli.EXPERIMENTS, "matrix",
            lambda: cli.EXPERIMENTS["lb"](n_txns=10),
        )
        assert cli.main(["experiment", "matrix"]) == 0
        assert "EXP-LB" in capsys.readouterr().out
