"""Tests for the available-copies RCP (ROWAA) and network queueing."""

import pytest

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.protocols.base import rcp_registry
from repro.sim.kernel import Simulator
from repro.txn.transaction import Operation, Transaction
from tests.conftest import quick_instance


def run_txn(instance, txn):
    process = instance.submit(txn)
    instance.sim.run(until=process)
    return txn


class TestAvailableCopies:
    def test_registered(self):
        assert "ROWAA" in rcp_registry()

    def test_writes_all_copies_when_healthy(self):
        instance = quick_instance(rcp="ROWAA", n_items=8)
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.committed
        for name in instance.catalog.sites_holding("x1"):
            assert instance.sites[name].store.read("x1") == (9, 1)

    def test_write_survives_crashed_copy_holder(self):
        """The availability win over ROWA."""
        instance = quick_instance(rcp="ROWAA", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 10
        instance.start()
        instance.injector.crash_now("site3")
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x1", 9)], home_site="site1")
        )
        assert txn.committed
        # The two surviving copies took the write.
        live = [
            name for name in instance.catalog.sites_holding("x1") if name != "site3"
        ]
        for name in live:
            assert instance.sites[name].store.read("x1")[0] == 9

    def test_write_fails_only_when_no_copy_reachable(self):
        instance = quick_instance(rcp="ROWAA", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 8
        instance.start()
        # x2 lives on sites 2..4; crash all of them.
        for name in ("site2", "site3", "site4"):
            instance.injector.crash_now(name)
        txn = run_txn(
            instance, Transaction(ops=[Operation.write("x2", 9)], home_site="site1")
        )
        assert txn.aborted
        assert txn.abort_cause == "RCP"

    def test_partition_anomaly_demonstrated(self):
        """ROWAA without validation is NOT partition-safe — by design.

        Both sides of a partition write their reachable copies of x1; the
        history checker's version-collision detector flags the conflict.
        """
        config = RainbowConfig.quick(
            n_sites=4, n_items=8, replication_degree=3, sites_per_host=1, seed=5
        )
        config.protocols.rcp = "ROWAA"
        config.protocols.op_timeout = 8
        config.settle_time = 20
        instance = RainbowInstance(config)
        instance.start()
        # x1 lives on sites 1-3 (hosts 1-3); split host1 from hosts 2-4.
        instance.network.partition([["host1"], ["host2", "host3", "host4"]])
        t1 = Transaction(ops=[Operation.write("x1", 111)], home_site="site1")
        t2 = Transaction(ops=[Operation.write("x1", 222)], home_site="site2")
        p1, p2 = instance.submit(t1), instance.submit(t2)
        instance.sim.run(until=instance.sim.all_of([p1, p2]))
        assert t1.committed and t2.committed  # both sides "succeeded"
        collisions = instance.monitor.history.version_collisions()
        assert collisions  # ...and the checker catches the divergence
        instance.network.heal_partition()

    def test_fail_stop_session_serializable(self):
        from repro.workload.spec import WorkloadSpec

        instance = quick_instance(rcp="ROWAA", n_items=24, settle_time=60)
        instance.coordinator_config.op_timeout = 12
        instance.config.faults.schedule.crashes.append(("site2", 30.0))
        instance.config.faults.schedule.recoveries.append(("site2", 90.0))
        result = instance.run_workload(
            WorkloadSpec(n_transactions=30, arrival_rate=0.4, read_fraction=0.5)
        )
        assert result.serializable is True


class TestHostQueueing:
    def test_burst_to_one_host_queues(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(1.0), host_service_time=0.5)
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        arrivals = []

        def receiver():
            while True:
                yield b.receive()
                arrivals.append(sim.now)

        sim.process(receiver())
        for _ in range(4):
            a.send(b.address, "X")
        sim.run(until=20)
        # First message: latency 1 + service 0.5; then spaced by 0.5 each.
        assert arrivals == [1.5, 2.0, 2.5, 3.0]
        assert network.stats.queueing_delay_total > 0

    def test_different_hosts_do_not_queue_on_each_other(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(1.0), host_service_time=0.5)
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        c = network.endpoint("h3", "c")
        times = {}

        def receiver(endpoint, key):
            yield endpoint.receive()
            times[key] = sim.now

        sim.process(receiver(b, "b"))
        sim.process(receiver(c, "c"))
        a.send(b.address, "X")
        a.send(c.address, "X")
        sim.run(until=10)
        assert times == {"b": 1.5, "c": 1.5}

    def test_size_scales_service_time(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(1.0), host_service_time=0.5)
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        arrivals = []

        def receiver():
            while True:
                yield b.receive()
                arrivals.append(sim.now)

        sim.process(receiver())
        a.send(b.address, "BIG", size=4)
        sim.run(until=10)
        assert arrivals == [3.0]  # 1 latency + 4 * 0.5 service

    def test_zero_service_time_disables_queueing(self):
        sim = Simulator()
        network = Network(sim, ConstantLatency(1.0), host_service_time=0.0)
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        for _ in range(3):
            a.send(b.address, "X")
        sim.run()
        assert network.stats.queueing_delay_total == 0.0
        assert b.pending_count() == 3

    def test_negative_service_time_rejected(self):
        with pytest.raises(Exception):
            Network(Simulator(), host_service_time=-1)

    def test_config_plumbs_service_time(self):
        config = RainbowConfig.quick(n_sites=2, n_items=4)
        config.network.host_service_time = 0.25
        instance = RainbowInstance(config)
        assert instance.network.host_service_time == 0.25

    def test_session_runs_under_queueing(self):
        from repro.workload.spec import WorkloadSpec

        config = RainbowConfig.quick(n_sites=3, n_items=12, seed=4)
        config.network.host_service_time = 0.1
        config.settle_time = 40
        instance = RainbowInstance(config)
        result = instance.run_workload(
            WorkloadSpec(n_transactions=15, arrival_rate=0.5)
        )
        assert result.statistics.finished == 15
        assert result.serializable is True
        assert instance.network.stats.queueing_delay_total > 0
