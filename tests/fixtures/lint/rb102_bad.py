"""Fixture: RB102 must fire — every flavour of nondeterminism hazard.

Never imported; analyzed as source only.
"""

import random
import time
from random import choice

JITTER = random.random()  # RB102: module-level global-RNG draw


def make_rng():
    return random.Random()  # RB102: unseeded Random


def pick_site(sites):
    return choice(sites)  # RB102: from-imported global-RNG function


def stamp():
    return time.time()  # RB102: wall clock outside monitor//benchmarks/


def break_ties(waiters):
    return sorted(waiters, key=id)  # RB102: memory addresses as sort key


def drain(pending):
    for txn in set(pending):  # RB102: set iteration order feeds scheduling
        yield txn


def victims(sites):
    return [site for site in {"s1", "s2", "s3"}]  # RB102: set literal iteration
