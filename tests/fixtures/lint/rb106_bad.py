"""Fixture: RB106 must fire — entropy inside span/trace emission code.

Every hazard here is one RB102 cannot see (RNG drawn through an object,
a from-imported clock, name-indirected set iteration, a set expression
fed straight to a tracer call).  Never imported; analyzed as source only.
"""

from time import perf_counter


def make_span_id(rng, txn_id, site):
    return f"t{txn_id}:{site}:{rng.randint(0, 9999)}"  # RB106: RNG span id


def emit_flight(tracer, msg):
    tracer.record(
        msg.txn_id,
        msg.src,
        "net.msg",
        start=perf_counter(),  # RB106: wall-clock span timestamp
        end=perf_counter(),  # RB106: wall-clock span timestamp
    )


def span_order_key(span):
    return id(span)  # RB106: memory address as span identity


def render_trace(spans):
    sites = {span.site for span in spans}
    lines = []
    for site in sites:  # RB106: local set drives span ordering
        lines.append(site)
    return lines


def begin_wave(tracer, txn, active):
    return tracer.begin(txn, "rcp.wave", sites=set(active))  # RB106: set arg
