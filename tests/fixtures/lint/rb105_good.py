"""Fixture: the corrected counterpart of rb105_bad — RB105 must stay quiet."""


class FixtureEvent:
    __slots__ = ("sim", "callbacks")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []


class FixtureTimeout(FixtureEvent):
    __slots__ = ("delay",)

    def __init__(self, sim, delay):
        super().__init__(sim)
        self.delay = delay


class UnrelatedHelper:
    """No slotted ancestor: nothing to preserve, no finding."""

    def __init__(self):
        self.cache = {}


def enqueue(item, queue=None):
    if queue is None:
        queue = []
    queue.append(item)
    return queue


def tally(name, counts=None, *, seen=frozenset()):
    counts = {} if counts is None else counts
    counts[name] = counts.get(name, 0) + 1
    return counts, seen | {name}
