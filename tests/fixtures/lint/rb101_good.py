"""Fixture: the corrected counterpart of rb101_bad — RB101 must stay quiet."""


def commit_handler(ctx):
    acked = yield from ctx.broadcast("COMMIT")  # driven with yield from
    yield ctx.timeout_event
    return acked


def vote_phase(ctx, sim):
    all_yes, detail = yield from ctx.collect_votes("2PC")  # driven
    grant = sim.timeout(5.0)  # bound for later yielding
    yield grant
    done = yield sim.event("done")
    return all_yes, detail, done


def not_a_generator(ctx):
    # Outside a generator the rule does not apply: a plain function may
    # legitimately hand the event to its caller or register callbacks.
    return ctx.timeout_event
