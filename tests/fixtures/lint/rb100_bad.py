"""Fixture: RB100 must fire — this file deliberately does not parse."""

def broken(:
    return None
