"""Fixture: RB104 must fire — incomplete and unregistered protocol classes.

Never imported; the undefined base-class names only matter to the AST.
"""

from typing import Generator


class HalfCcp(ConcurrencyController):  # noqa: F821 - fixture, never imported
    """RB104 x2: missing most required methods AND never registered."""

    name = "HALF"

    def read(self, txn_id, ts, item) -> Generator:
        value = yield None
        return value


class SilentAcp(CommitProtocol):  # noqa: F821 - fixture, never imported
    """RB104: implements run() but is never passed to register_acp."""

    name = "SILENT"

    def run(self, ctx) -> Generator:
        decision = yield None
        return decision
