"""Fixture: RB106 corrected twin — fully deterministic span emission.

Span ids come from per-key counters, timestamps from ``sim.now``, and
every ordering from ``sorted(...)``.  Never imported; analyzed as source
only.
"""


def make_span_id(counters, txn_id, site):
    seq = counters.get((txn_id, site), 0) + 1
    counters[(txn_id, site)] = seq
    return f"t{txn_id}:{site}:{seq}"


def emit_flight(tracer, sim, msg, delay):
    tracer.record(
        msg.txn_id,
        msg.src,
        "net.msg",
        start=sim.now,
        end=sim.now + delay,
    )


def span_order_key(span):
    return (span.start, span.span_id)


def render_trace(spans):
    lines = []
    for site in sorted({span.site for span in spans}):
        lines.append(site)
    return lines


def begin_wave(tracer, txn, active):
    return tracer.begin(txn, "rcp.wave", sites=sorted(active))
