"""Fixture: the corrected counterpart of rb102_bad — RB102 must stay quiet."""

import random


def make_rng(seed):
    return random.Random(seed)  # seeded: reproducible


def pick_site(rng, sites):
    return rng.choice(sites)  # instance stream, not the global RNG


def stamp(sim):
    return sim.now  # simulated time, not the wall clock


def break_ties(waiters):
    return sorted(waiters, key=lambda w: (w.ts, w.txn_id))  # value-based key


def drain(pending):
    for txn in sorted(set(pending)):  # sorted() pins the order
        yield txn


def victims(sites):
    return [site for site in sorted({"s1", "s2", "s3"})]
