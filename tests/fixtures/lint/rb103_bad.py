"""Fixture: RB103 must fire — both directions of the generator contract.

Never imported; the undefined base-class names only matter to the AST.
"""

from typing import Generator


def build_schedule(n: int) -> Generator:  # RB103: annotated, but no yield
    return list(range(n))


class FixtureRcp(ReplicationController):  # noqa: F821 - fixture, never imported
    name = "FIXRCP"

    def do_read(self, ctx, item):  # RB103: generator handler, no annotation
        value = yield ctx.read_event(item)
        return value

    def do_write(self, ctx, item, value) -> Generator:  # correct: annotated
        yield from ctx.prewrite_all(item, value)


register_rcp("FIXRCP", FixtureRcp)  # noqa: F821 - keeps RB104 satisfied
