"""Fixture: the corrected counterpart of rb103_bad — RB103 must stay quiet."""

from typing import Generator, Iterator


def build_schedule(n: int) -> list:
    return list(range(n))


def emit_schedule(n: int) -> Iterator:
    yield from range(n)


class AbstractHandler:
    def run(self, ctx) -> Generator:
        """Interface stub: exempt even though it contains no yield."""
        raise NotImplementedError


class FixtureRcp(ReplicationController):  # noqa: F821 - fixture, never imported
    name = "FIXRCP"

    def do_read(self, ctx, item) -> Generator:
        value = yield ctx.read_event(item)
        return value

    def do_write(self, ctx, item, value) -> Generator:
        yield from ctx.prewrite_all(item, value)


register_rcp("FIXRCP", FixtureRcp)  # noqa: F821
