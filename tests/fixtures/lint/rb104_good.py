"""Fixture: RB104 must stay quiet — complete, registered protocol classes.

Exercises the intermediate-base exemption too: ``FixtureBase`` provides the
bookkeeping half, the registered leaf provides the ordering half, and only
the leaf is judged for completeness.
"""

from typing import Generator


class FixtureBase(ConcurrencyController):  # noqa: F821 - fixture, never imported
    """Intermediate base (like WorkspaceController): judged at its leaves."""

    def buffered_writes(self, txn_id):
        return {}

    def commit(self, txn_id, versions):
        pass

    def abort(self, txn_id):
        pass

    def doom(self, txn_id):
        pass

    def is_doomed(self, txn_id):
        return False

    def active_transactions(self):
        return frozenset()

    def clear(self):
        pass


class FullCcp(FixtureBase):
    name = "FULL"

    def read(self, txn_id, ts, item) -> Generator:
        value = yield None
        return value

    def prewrite(self, txn_id, ts, item, value) -> Generator:
        version = yield None
        return version


class PlainHelper:
    """Not a protocol: same method names, no interface base — exempt."""

    def run(self, ctx):
        return ctx


register_ccp("FULL", FullCcp)  # noqa: F821 - fixture, never imported
