"""Fixture: RB101 must fire — event-returning calls discarded in generators.

Never imported; analyzed as source only.
"""


def commit_handler(ctx):
    """The classic silent no-op: broadcast without `yield from`."""
    ctx.broadcast("COMMIT")  # RB101: result discarded
    yield ctx.timeout_event


def vote_phase(ctx, sim):
    ctx.collect_votes("2PC")  # RB101: generator never driven
    sim.timeout(5.0)  # RB101: timeout event dropped on the floor
    done = yield sim.event("done")
    return done
