"""Fixture: RB105 must fire — mutable defaults and dropped __slots__.

Never imported; analyzed as source only.
"""


class FixtureEvent:
    __slots__ = ("sim", "callbacks")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []


class FixtureTimeout(FixtureEvent):  # RB105: slotted parent, no __slots__ here
    def __init__(self, sim, delay):
        super().__init__(sim)
        self.delay = delay


def enqueue(item, queue=[]):  # RB105: mutable default list
    queue.append(item)
    return queue


def tally(name, counts={}, *, seen=set()):  # RB105 x2: dict and set defaults
    counts[name] = counts.get(name, 0) + 1
    seen.add(name)
    return counts
