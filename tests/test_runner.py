"""Tests for the parallel trial-execution engine (`repro.experiments.runner`).

The heart of the contract: ``n_jobs`` only ever changes wall-clock time.
Results come back in trial order, parallel runs match serial runs exactly,
dead workers degrade to in-parent execution, and trial exceptions surface
to the caller the same way they would serially.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments import load_balance, protocol_matrix
from repro.experiments.common import build_instance
from repro.experiments.runner import Trial, resolve_jobs, run_trials, sweep
from repro.workload.spec import WorkloadSpec


# -- module-level trial functions (spawn workers pickle them by reference) --

def _square(x):
    return x * x


def _raise_value_error(x):
    raise ValueError(f"boom {x}")


def _die_in_worker(x):
    """Kill the process when run in a pool worker; succeed in the parent."""
    if multiprocessing.parent_process() is not None:
        os._exit(17)
    return x * 10


def _session_fingerprint(seed):
    """Run one small session and summarise its per-transaction history."""
    instance = build_instance(3, 12, 2, seed=seed, settle_time=30.0)
    instance.run_workload(
        WorkloadSpec(
            n_transactions=12,
            arrival="poisson",
            arrival_rate=0.5,
            min_ops=2,
            max_ops=4,
            read_fraction=0.7,
        )
    )
    # Transaction ids come from a process-global counter, so report them
    # relative to the session's first id: the *history* must be identical
    # across repeated same-seed sessions, wherever their ids started.
    base = min((r.txn_id for r in instance.monitor.records), default=0)
    return [
        (r.txn_id - base, r.home_site, r.status, r.abort_cause, r.response_time, r.messages)
        for r in instance.monitor.records
    ]


class TestResolveJobs:
    def test_explicit_positive(self):
        assert resolve_jobs(3, 10) == 3

    def test_clamped_to_trials(self):
        assert resolve_jobs(16, 2) == 2

    def test_none_zero_negative_mean_cores(self):
        cores = os.cpu_count() or 1
        assert resolve_jobs(None, 100) == min(cores, 100)
        assert resolve_jobs(0, 100) == min(cores, 100)
        assert resolve_jobs(-1, 100) == min(cores, 100)

    def test_never_below_one(self):
        assert resolve_jobs(-999, 10) == 1
        assert resolve_jobs(1, 0) == 1


class TestRunTrials:
    def test_empty(self):
        assert run_trials([], n_jobs=4) == []

    def test_serial_preserves_order(self):
        trials = [Trial(_square, {"x": x}) for x in range(8)]
        assert run_trials(trials, n_jobs=1) == [x * x for x in range(8)]

    def test_parallel_matches_serial(self):
        trials = [Trial(_square, {"x": x}) for x in range(10)]
        assert run_trials(trials, n_jobs=4) == run_trials(trials, n_jobs=1)

    def test_trial_exception_surfaces_serially(self):
        trials = [Trial(_square, {"x": 1}), Trial(_raise_value_error, {"x": 2})]
        with pytest.raises(ValueError, match="boom 2"):
            run_trials(trials, n_jobs=1)

    def test_trial_exception_surfaces_in_parallel(self):
        trials = [Trial(_square, {"x": 1}), Trial(_raise_value_error, {"x": 2})]
        with pytest.raises(ValueError, match="boom 2"):
            run_trials(trials, n_jobs=2)

    def test_dead_worker_degrades_to_parent_execution(self):
        trials = [Trial(_die_in_worker, {"x": x}) for x in range(4)]
        assert run_trials(trials, n_jobs=2) == [0, 10, 20, 30]

    def test_sweep_merges_common_kwargs(self):
        results = sweep(_square, [{"x": 2}, {"x": 5}], n_jobs=1)
        assert results == [4, 25]


class TestDeterminismUnderParallelism:
    def test_experiment_table_identical_across_n_jobs(self):
        kwargs = dict(
            rcps=("ROWA", "QC"), ccps=("2PL",), acps=("2PC",),
            n_txns=10, n_sites=3, n_items=12, seed=77,
        )
        serial = protocol_matrix.run(**kwargs, n_jobs=1)
        parallel = protocol_matrix.run(**kwargs, n_jobs=4)
        assert parallel.rows == serial.rows
        assert parallel.to_text() == serial.to_text()
        assert parallel.to_json() == serial.to_json()

    def test_load_balance_identical_across_n_jobs(self):
        serial = load_balance.run(n_txns=16, n_jobs=1)
        parallel = load_balance.run(n_txns=16, n_jobs=2)
        assert parallel.rows == serial.rows

    def test_same_seed_sessions_identical_histories(self):
        first = _session_fingerprint(seed=5)
        second = _session_fingerprint(seed=5)
        assert first and first == second

    def test_parallel_workers_reproduce_parent_histories(self):
        trials = [Trial(_session_fingerprint, {"seed": seed}) for seed in (3, 9)]
        in_parent = run_trials(trials, n_jobs=1)
        in_workers = run_trials(trials, n_jobs=2)
        assert in_workers == in_parent


class TestTableJson:
    def test_to_json_round_trips(self):
        import json

        table = load_balance.run(n_txns=12)
        payload = json.loads(table.to_json())
        assert payload["title"] == table.title
        assert payload["columns"] == table.columns
        assert payload["rows"] == table.rows
        assert payload["notes"] == table.notes
