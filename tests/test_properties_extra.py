"""Additional property-based tests: lock strategies, WAL checkpoints, network."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.site.locks import LockManager, LockMode
from repro.site.wal import WriteAheadLog

# ---------------------------------------------------------------------------
# Lock safety holds under every deadlock strategy


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(
    strategy=st.sampled_from(["detect", "timeout", "wait_die", "wound_wait"]),
    seed=st.integers(0, 10_000),
    n_txns=st.integers(2, 5),
    n_steps=st.integers(5, 25),
)
def test_every_strategy_preserves_mutual_exclusion(strategy, seed, n_txns, n_steps):
    sim = Simulator()
    locks = LockManager(sim, strategy=strategy, wait_timeout=40.0)
    rng = random.Random(seed)
    items = ["x", "y"]

    def invariant():
        for item in items:
            modes = [
                mode
                for txn in range(1, n_txns + 1)
                for held, mode in locks.held_locks(txn).items()
                if held == item
            ]
            if LockMode.X in modes:
                assert len(modes) == 1

    def worker(txn_id):
        for _ in range(n_steps):
            mode = LockMode.X if rng.random() < 0.5 else LockMode.S
            try:
                yield locks.acquire(txn_id, float(txn_id), rng.choice(items), mode)
            except Exception:
                locks.release_all(txn_id)
                return
            invariant()
            yield sim.timeout(rng.random() * 2)
            invariant()
            if rng.random() < 0.4:
                locks.release_all(txn_id)
        locks.release_all(txn_id)

    for txn_id in range(1, n_txns + 1):
        sim.process(worker(txn_id))
    sim.run()
    invariant()
    # Liveness: nothing is left waiting after everyone released.
    assert locks.waiting_count() == 0


# ---------------------------------------------------------------------------
# Checkpointing never changes what recovery concludes


@given(
    ops=st.lists(
        st.tuples(st.integers(1, 5), st.sampled_from(["P", "PC", "C", "A"])),
        max_size=25,
    ),
    checkpoint_after=st.integers(0, 25),
)
def test_checkpoint_preserves_recovery_semantics(ops, checkpoint_after):
    def build(with_checkpoint):
        wal = WriteAheadLog("s")
        prepared, precommitted, decided = set(), set(), set()
        for index, (txn, kind) in enumerate(ops):
            if with_checkpoint and index == checkpoint_after:
                wal.checkpoint({}, at=float(index))
            if kind == "P" and txn not in prepared:
                wal.log_prepare(txn, {"x": (txn, txn)}, f"c/{txn}", at=0.0, ts=txn)
                prepared.add(txn)
            elif kind == "PC" and txn in prepared and txn not in decided:
                wal.log_precommit(txn, at=0.0)
                precommitted.add(txn)
            elif kind == "C" and txn in prepared and txn not in decided:
                wal.log_commit(txn, at=0.0)
                decided.add(txn)
            elif kind == "A" and txn in prepared and txn not in decided:
                wal.log_abort(txn, at=0.0)
                decided.add(txn)
        if with_checkpoint and checkpoint_after >= len(ops):
            wal.checkpoint({}, at=99.0)
        return wal

    plain = build(False)
    checked = build(True)
    in_doubt_plain, _ = plain.recover_state()
    in_doubt_checked, _ = checked.recover_state()
    # The in-doubt classification — the part recovery acts on — is
    # identical with or without a checkpoint anywhere in the history.
    def key(doubt):
        return (doubt.txn_id, doubt.precommitted, doubt.coordinator, doubt.ts)

    assert sorted(map(key, in_doubt_plain)) == sorted(map(key, in_doubt_checked))


# ---------------------------------------------------------------------------
# Partitions drop exactly the cross-group traffic


@settings(max_examples=30)
@given(
    hosts=st.integers(2, 5),
    split=st.integers(1, 4),
    messages=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20),
)
def test_partition_drops_exactly_cross_group(hosts, split, messages):
    split = min(split, hosts - 1)
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.1))
    endpoints = [network.endpoint(f"h{i}", "e") for i in range(hosts)]
    group_a = [f"h{i}" for i in range(split)]
    group_b = [f"h{i}" for i in range(split, hosts)]
    network.partition([group_a, group_b])

    expected_delivered = 0
    for src, dst in messages:
        src %= hosts
        dst %= hosts
        endpoints[src].send(endpoints[dst].address, "X")
        same_side = (src < split) == (dst < split)
        if same_side:
            expected_delivered += 1
    sim.run()
    total_queued = sum(e.pending_count() for e in endpoints)
    assert total_queued == expected_delivered
    assert network.stats.dropped == len(messages) - expected_delivered
