"""Focused tests for protocol internals not fully covered elsewhere."""

import pytest

from repro.errors import ProtocolError, ReplicationAbort
from repro.protocols.base import (
    CommitProtocol,
    ConcurrencyController,
    ReplicationController,
    make_acp,
    make_rcp,
    register_acp,
    register_ccp,
    register_rcp,
)
from repro.protocols.rcp.quorum import QuorumConsensusController
from repro.txn.transaction import Operation, Transaction
from tests.conftest import drive, quick_instance


class TestRegistries:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ProtocolError):
            register_rcp("QC", QuorumConsensusController)
        with pytest.raises(ProtocolError):
            register_ccp("2PL", object)
        with pytest.raises(ProtocolError):
            register_acp("2PC", object)

    def test_unknown_rcp_and_acp_rejected(self):
        with pytest.raises(ProtocolError):
            make_rcp("WARP")
        with pytest.raises(ProtocolError):
            make_acp("4PC")

    def test_interface_defaults(self):
        cc = ConcurrencyController()
        assert cc.validate(1) == (True, "")
        with pytest.raises(NotImplementedError):
            cc.read(1, 1.0, "x")
        with pytest.raises(NotImplementedError):
            ReplicationController().do_read(None, "x")
        with pytest.raises(NotImplementedError):
            CommitProtocol().run(None)


class TestQuorumWaves:
    def test_next_wave_minimal_prefix(self):
        wave = QuorumConsensusController._next_wave(
            ["s1", "s2", "s3"], {"s1": 1, "s2": 1, "s3": 1}, needed=2
        )
        assert wave == ["s1", "s2"]

    def test_next_wave_weighted_short_circuit(self):
        wave = QuorumConsensusController._next_wave(
            ["s1", "s2", "s3"], {"s1": 3, "s2": 1, "s3": 1}, needed=3
        )
        assert wave == ["s1"]

    def test_next_wave_returns_all_when_insufficient(self):
        wave = QuorumConsensusController._next_wave(
            ["s1"], {"s1": 1}, needed=5
        )
        assert wave == ["s1"]

    def test_read_quorum_unattainable_is_rcp_abort(self):
        instance = quick_instance(rcp="QC", n_items=8, settle_time=10)
        instance.coordinator_config.op_timeout = 8
        instance.start()
        # x2 lives on sites 2..4; crash two of three holders so even the
        # expanded wave cannot reach the read quorum of 2 votes.
        instance.injector.crash_now("site2")
        instance.injector.crash_now("site3")
        txn = Transaction(ops=[Operation.read("x2")], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.aborted
        assert txn.abort_cause == "RCP"
        assert "quorum" in txn.abort_detail

    def test_explicit_read_one_write_all_quorums(self):
        """r=1/w=n quorums make QC behave like ROWA for reads."""
        from repro.core.config import RainbowConfig
        from repro.core.instance import RainbowInstance
        from repro.nameserver.catalog import Catalog

        config = RainbowConfig.quick(n_sites=3, n_items=1)
        catalog = Catalog()
        catalog.add_item(
            "x1", placement={"site1": 1, "site2": 1, "site3": 1},
            read_quorum=1, write_quorum=3,
        )
        config.set_catalog(catalog)
        config.settle_time = 20
        instance = RainbowInstance(config)
        instance.start()
        before = instance.network.stats.by_type.get("READ", 0)
        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.committed
        # Local copy satisfied the 1-vote read quorum: zero READ messages.
        assert instance.network.stats.by_type.get("READ", 0) == before


class TestUncertaintyEdges:
    def test_disabled_uncertainty_keeps_orphans_forever(self):
        """Pure-blocking pedagogy mode: no resolution machinery at all."""
        instance = quick_instance(n_items=8, settle_time=0,
                                  uncertainty_timeout=None)
        instance.coordinator_config.failpoint = "after_votes"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x2", 2)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        instance.sim.run(until=instance.sim.now + 400)
        # Nobody ever resolves: the orphans persist (the blocking lesson).
        assert sum(s.in_doubt_count() for s in instance.sites.values()) >= 1

    def test_orphan_statistics_track_resolution(self):
        instance = quick_instance(n_items=8, settle_time=0,
                                  uncertainty_timeout=20.0, decision_retry=10.0)
        instance.coordinator_config.failpoint = "after_votes"
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        txn = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x2", 2)],
            home_site="site1",
        )
        process = instance.submit(txn)
        instance.sim.run(until=process)
        instance.sim.run(until=instance.sim.now + 100)
        stats_mid = instance.monitor.output_statistics()
        assert stats_mid.orphans_current >= 1
        assert stats_mid.orphan_events >= 1
        instance.injector.recover_now("site1")
        instance.sim.run(until=instance.sim.now + 150)
        stats_end = instance.monitor.output_statistics()
        assert stats_end.orphans_current == 0
        assert stats_end.orphans_resolved >= 1


class TestGatherSemantics:
    def test_access_many_preserves_site_order(self):
        instance = quick_instance(n_items=8)
        instance.start()
        from repro.txn.coordinator import TxnContext

        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        txn.ts = 1.0
        ctx = TxnContext(
            txn, instance.sites["site1"], instance.catalog,
            instance.directory, instance.coordinator_config, None,
        )

        def run():
            results = yield from ctx.access_read_many(["site1", "site2"], "x1")
            return results

        process = instance.sim.process(run())
        results = instance.sim.run(until=process)
        assert [result.site for result in results] == ["site1", "site2"]
        assert all(result.ok for result in results)

    def test_settle_converts_failures_to_values(self):
        instance = quick_instance(n_items=8)
        instance.start()
        from repro.errors import RpcTimeout
        from repro.txn.coordinator import TxnContext

        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        ctx = TxnContext(
            txn, instance.sites["site1"], instance.catalog,
            instance.directory, instance.coordinator_config, None,
        )
        event = instance.sites["site1"].endpoint.request(
            "ghost/address", "READ", {}, timeout=5
        )

        def run():
            value = yield from ctx._settle(event)
            return value

        process = instance.sim.process(run())
        value = instance.sim.run(until=process)
        assert isinstance(value, RpcTimeout)
