"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Tx Processing Output" in out
        assert "one-copy serializable: True" in out

    def test_classroom_session(self):
        out = run_example("classroom_session.py")
        assert "Classroom session with ACP = 2PC" in out
        assert "Classroom session with ACP = 3PC" in out
        assert "COMMITTED" in out
        assert "logged in as 'student'" in out

    def test_quorum_study_quick(self):
        out = run_example("quorum_study.py", "--quick")
        assert "EXP-QCMSG" in out
        assert "EXP-AVAIL" in out
        assert "advantage to QC" in out

    def test_fault_tolerance_demo(self):
        out = run_example("fault_tolerance_demo.py")
        assert "participant crash & WAL recovery" in out
        assert "orphans while coordinator is down: 2" in out
        assert "network partition & heal" in out

    def test_bank_transfers(self):
        out = run_example("bank_transfers.py")
        # Every correct protocol conserves money; NOCC must violate.
        assert out.count("money conserved") == 4
        assert "VIOLATED" in out
        assert "serializable=False" in out  # only on the NOCC line
