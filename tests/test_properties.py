"""Property-based tests (hypothesis) for core data structures & invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import RainbowConfig
from repro.nameserver.catalog import Catalog
from repro.sim.kernel import Simulator
from repro.sim.randoms import zipf_weights
from repro.site.locks import LockManager, LockMode
from repro.site.storage import LocalStore
from repro.site.wal import WriteAheadLog
from repro.txn.history import HistoryRecorder, SerializationGraph

# ---------------------------------------------------------------------------
# Distributions


@given(n=st.integers(1, 200), theta=st.floats(0, 3, allow_nan=False))
def test_zipf_weights_normalised_and_monotone(n, theta):
    weights = zipf_weights(n, theta)
    assert len(weights) == n
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))
    assert all(w > 0 for w in weights)


# ---------------------------------------------------------------------------
# Catalog quorum invariants


@given(
    votes=st.lists(st.integers(1, 5), min_size=1, max_size=8),
)
def test_default_quorums_always_valid(votes):
    placement = {f"s{i}": v for i, v in enumerate(votes)}
    catalog = Catalog()
    spec = catalog.add_item("x", placement=placement)
    spec.validate()  # majorities always satisfy r+w>V and 2w>V
    r, w = spec.effective_read_quorum(), spec.effective_write_quorum()
    total = spec.total_votes
    assert r + w > total
    assert 2 * w > total


@given(
    n_sites=st.integers(1, 8),
    n_items=st.integers(1, 20),
    degree=st.integers(1, 8),
)
def test_round_robin_placement_balanced(n_sites, n_items, degree):
    if degree > n_sites:
        return
    catalog = Catalog()
    for index in range(n_items):
        catalog.add_item(f"x{index}")
    sites = [f"s{i}" for i in range(n_sites)]
    catalog.place_round_robin(sites, degree)
    counts = {site: 0 for site in sites}
    for spec in catalog.items():
        assert spec.replication_degree == degree
        for site in spec.sites:
            counts[site] += 1
    # Conservation: every copy is placed exactly once.
    assert sum(counts.values()) == n_items * degree
    # Consecutive-window placement keeps the spread within the degree.
    assert max(counts.values()) - min(counts.values()) <= degree


# ---------------------------------------------------------------------------
# Serialization graph: cycle detection agrees with topological sort


@given(
    edges=st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 8)), max_size=30
    )
)
def test_cycle_detection_iff_no_topological_order(edges):
    graph = SerializationGraph()
    for before, after in edges:
        graph.add_edge(before, after)
    cycle = graph.find_cycle()
    order = graph.topological_order()
    assert (cycle is None) == (order is not None)
    if cycle is not None:
        # Verify the cycle is a real path: consecutive members are edges.
        for a, b in zip(cycle, cycle[1:]):
            assert b in graph.edges[a]
    if order is not None:
        position = {node: i for i, node in enumerate(order)}
        for node, successors in graph.edges.items():
            for successor in successors:
                assert position[node] < position[successor]


# ---------------------------------------------------------------------------
# Histories generated from *serial* executions must always verify


@given(
    script=st.lists(
        st.tuples(
            st.booleans(),  # write?
            st.integers(0, 3),  # item index
        ),
        min_size=1,
        max_size=30,
    ),
    txn_sizes=st.lists(st.integers(1, 4), min_size=1, max_size=10),
)
def test_serial_execution_always_serializable(script, txn_sizes):
    recorder = HistoryRecorder()
    versions = {f"x{i}": 0.0 for i in range(4)}
    writer_version = {f"x{i}": 0 for i in range(4)}
    cursor = 0
    txn_id = 0
    for size in txn_sizes:
        txn_id += 1
        reads, writes = {}, {}
        for _ in range(size):
            if cursor >= len(script):
                break
            is_write, item_index = script[cursor]
            cursor += 1
            item = f"x{item_index}"
            if is_write:
                # A transaction installs one version per item, whatever the
                # number of times it overwrote it in its workspace.
                if item not in writes:
                    writer_version[item] += 1
                    writes[item] = writer_version[item]
            elif item not in writes:
                # Reads of the transaction's own buffered write observe no
                # committed version and constrain nothing.
                reads[item] = versions[item]
        for item, version in writes.items():
            versions[item] = version
        if reads or writes:
            recorder.record_commit(txn_id, reads, writes)
    ok, _witness = recorder.check_serializable()
    assert ok
    assert recorder.reads_see_committed_versions() == []


# ---------------------------------------------------------------------------
# Lock manager safety under random schedules


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n_txns=st.integers(2, 6),
    n_items=st.integers(1, 4),
    n_steps=st.integers(5, 40),
)
def test_lock_manager_never_grants_conflicting_locks(seed, n_txns, n_items, n_steps):
    """Random acquire/release schedules never produce conflicting holders."""
    sim = Simulator()
    locks = LockManager(sim, strategy="detect", wait_timeout=50.0)
    rng = random.Random(seed)
    items = [f"x{i}" for i in range(n_items)]

    def check_invariant():
        for item in items:
            holders = [
                (txn, mode)
                for txn in range(1, n_txns + 1)
                for held_item, mode in locks.held_locks(txn).items()
                if held_item == item
            ]
            x_holders = [txn for txn, mode in holders if mode == LockMode.X]
            assert len(x_holders) <= 1
            if x_holders:
                assert len(holders) == 1

    def txn_proc(txn_id):
        for _ in range(n_steps):
            item = rng.choice(items)
            mode = LockMode.X if rng.random() < 0.4 else LockMode.S
            try:
                yield locks.acquire(txn_id, float(txn_id), item, mode)
            except Exception:
                locks.release_all(txn_id)
                return
            check_invariant()
            yield sim.timeout(rng.random())
            check_invariant()
            if rng.random() < 0.3:
                locks.release_all(txn_id)
        locks.release_all(txn_id)

    for txn_id in range(1, n_txns + 1):
        sim.process(txn_proc(txn_id))
    sim.run()
    check_invariant()


# ---------------------------------------------------------------------------
# Storage and WAL


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 1000)),  # (version, value)
        max_size=40,
    )
)
def test_store_version_never_regresses(writes):
    store = LocalStore("s")
    store.create_copy("x", 0)
    high = 0
    for version, value in writes:
        store.apply("x", value, version, txn_id=1, at=0.0)
        high = max(high, version)
        assert store.version("x") == high


@given(
    ops=st.lists(
        st.tuples(st.integers(1, 6), st.sampled_from(["P", "C", "A"])),
        max_size=30,
    )
)
def test_wal_recovery_partitions_transactions(ops):
    """Every prepared txn is exactly one of: in-doubt, committed, aborted."""
    wal = WriteAheadLog("s")
    prepared, decided = set(), {}
    for txn, kind in ops:
        if kind == "P" and txn not in prepared:
            wal.log_prepare(txn, {"x": (1, 1)}, None, at=0.0)
            prepared.add(txn)
        elif kind == "C" and txn in prepared and txn not in decided:
            wal.log_commit(txn, at=1.0)
            decided[txn] = "COMMIT"
        elif kind == "A" and txn in prepared and txn not in decided:
            wal.log_abort(txn, at=1.0)
            decided[txn] = "ABORT"
    in_doubt, committed = wal.recover_state()
    in_doubt_ids = {d.txn_id for d in in_doubt}
    committed_ids = {r.txn_id for r in committed}
    assert in_doubt_ids == prepared - set(decided)
    assert committed_ids == {t for t, d in decided.items() if d == "COMMIT"}
    assert in_doubt_ids.isdisjoint(committed_ids)


# ---------------------------------------------------------------------------
# Config roundtrip


@given(
    n_sites=st.integers(1, 6),
    n_items=st.integers(1, 10),
    seed=st.integers(0, 1000),
    rcp=st.sampled_from(["ROWA", "QC"]),
    ccp=st.sampled_from(["2PL", "TSO", "MVTO"]),
    acp=st.sampled_from(["2PC", "3PC"]),
)
def test_config_roundtrip_preserves_everything(n_sites, n_items, seed, rcp, ccp, acp):
    config = RainbowConfig.quick(
        n_sites=n_sites,
        n_items=n_items,
        replication_degree=min(3, n_sites),
        seed=seed,
    )
    config.protocols.rcp = rcp
    config.protocols.ccp = ccp
    config.protocols.acp = acp
    clone = RainbowConfig.from_dict(config.to_dict())
    assert clone.to_dict() == config.to_dict()
    clone.validate()


# ---------------------------------------------------------------------------
# Counter invariant: committed increments are never lost


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    ccp=st.sampled_from(["2PL", "TSO", "MVTO", "OCC"]),
    n_increments=st.integers(3, 10),
    gap=st.floats(2.0, 8.0),
)
def test_counter_invariant_random(seed, ccp, n_increments, gap):
    """Every committed +1 increment is reflected in the final counter."""
    from repro.core.instance import RainbowInstance
    from repro.txn.transaction import Operation, Transaction

    config = RainbowConfig.quick(n_sites=3, n_items=2, replication_degree=3,
                                 seed=seed, settle_time=60)
    config.protocols.ccp = ccp
    instance = RainbowInstance(config)
    instance.start()
    txns = []
    processes = []
    for index in range(n_increments):
        txn = Transaction(
            ops=[Operation.increment("x1", 1)],
            home_site=f"site{(index % 3) + 1}",
        )
        txns.append(txn)
        processes.append(instance.submit(txn))
        instance.sim.run(until=instance.sim.now + gap)
    instance.sim.run(until=instance.sim.all_of(processes))
    instance.sim.run(until=instance.sim.now + 60)

    committed = sum(1 for txn in txns if txn.committed)
    final = max(
        (
            instance.sites[name].store.read("x1")
            for name in instance.catalog.sites_holding("x1")
        ),
        key=lambda pair: pair[1],  # highest committed version wins
    )
    assert final[0] == committed
    ok, _witness = instance.monitor.history.check_serializable()
    assert ok


# ---------------------------------------------------------------------------
# End-to-end: random tiny sessions always produce serializable histories


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    ccp=st.sampled_from(["2PL", "TSO", "MVTO"]),
    rcp=st.sampled_from(["ROWA", "QC"]),
    read_fraction=st.floats(0.0, 1.0),
)
def test_random_sessions_serializable(seed, ccp, rcp, read_fraction):
    from repro.core.instance import RainbowInstance
    from repro.workload.spec import WorkloadSpec

    config = RainbowConfig.quick(n_sites=3, n_items=8, replication_degree=2,
                                 seed=seed, settle_time=40)
    config.protocols.rcp = rcp
    config.protocols.ccp = ccp
    instance = RainbowInstance(config)
    spec = WorkloadSpec(
        n_transactions=12, arrival="poisson", arrival_rate=1.0,
        min_ops=1, max_ops=4, read_fraction=read_fraction,
    )
    result = instance.run_workload(spec)
    assert result.serializable is True
    assert instance.monitor.history.reads_see_committed_versions() == []
