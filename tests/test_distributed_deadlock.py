"""Tests for distributed deadlock detection (CMH edge chasing)."""

import pytest

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.site.deadlock import ProbeTypes
from repro.txn.transaction import Operation, Transaction


def build_instance(*, probes=True, wait_timeout=None, seed=1, local_detection=True):
    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3, seed=seed)
    config.distributed_deadlock = probes
    config.probe_interval = 5.0
    ccp_options = {"wait_timeout": wait_timeout}
    if not local_detection:
        # "timeout" disables the local wait-for graph; with a huge timeout
        # only the probe protocol can break cycles inside the test window.
        ccp_options = {"deadlock_strategy": "timeout", "wait_timeout": 10_000.0}
    config.protocols.ccp_options = ccp_options
    config.settle_time = 30.0
    # Constant latency makes the conflicting interleaving deterministic:
    # both writers take their local lock before the remote request lands.
    config.network.latency = "constant"
    config.network.latency_params = {"value": 1.0}
    instance = RainbowInstance(config)
    instance.start()
    return instance


def cross_site_deadlock(instance):
    """Two writers locking x1/x5 in opposite orders from different homes."""
    t1 = Transaction(
        ops=[Operation.write("x1", 1), Operation.write("x5", 1)], home_site="site1"
    )
    t2 = Transaction(
        ops=[Operation.write("x5", 2), Operation.write("x1", 2)], home_site="site2"
    )
    p1, p2 = instance.submit(t1), instance.submit(t2)
    instance.sim.run(until=instance.sim.all_of([p1, p2]))
    instance.sim.run(until=instance.sim.now + 60)
    return t1, t2


class TestDetection:
    def test_cross_site_cycle_broken_without_timeouts(self):
        instance = build_instance(probes=True, wait_timeout=None)
        t1, t2 = cross_site_deadlock(instance)
        outcomes = {t1.status, t2.status}
        assert outcomes == {"COMMITTED", "ABORTED"}
        victim = t1 if t1.aborted else t2
        assert victim.abort_cause == "CCP"
        assert "deadlock" in victim.abort_detail

    def test_probe_messages_flow_on_network(self):
        instance = build_instance(probes=True, local_detection=False)
        t1, t2 = cross_site_deadlock(instance)
        assert {t1.status, t2.status} == {"COMMITTED", "ABORTED"}
        by_type = instance.network.stats.by_type
        assert by_type.get(ProbeTypes.PROBE_HOME, 0) >= 1
        # The victim notification travelled (over the network or locally).
        total_victim_msgs = by_type.get(ProbeTypes.VICTIM_HOME, 0) + by_type.get(
            ProbeTypes.ABORT_WAIT, 0
        )
        victims = sum(
            site.deadlock_detector.stats.victims_aborted
            for site in instance.sites.values()
        )
        assert victims >= 1
        assert total_victim_msgs >= 0  # may be fully local; victims prove it ran

    def test_cycle_found_and_victim_counted(self):
        instance = build_instance(probes=True, wait_timeout=None)
        cross_site_deadlock(instance)
        cycles = sum(
            site.deadlock_detector.stats.cycles_found
            for site in instance.sites.values()
        )
        victims = sum(
            site.deadlock_detector.stats.victims_aborted
            for site in instance.sites.values()
        )
        assert cycles >= 1
        assert victims >= 1

    def test_without_probes_and_timeouts_deadlock_persists(self):
        """Negative control: nothing breaks the cycle, both txns hang."""
        instance = build_instance(probes=False, local_detection=False)
        t1 = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x5", 1)], home_site="site1"
        )
        t2 = Transaction(
            ops=[Operation.write("x5", 2), Operation.write("x1", 2)], home_site="site2"
        )
        instance.submit(t1)
        instance.submit(t2)
        instance.sim.run(until=instance.sim.now + 120)
        # Neither finished: the deadlock is real and unbroken.  (The op
        # timeout would eventually fire at 90; stay below it.)
        assert t1.status == "RUNNING"
        assert t2.status == "RUNNING"

    def test_history_serializable_after_detection(self):
        instance = build_instance(probes=True, wait_timeout=None)
        cross_site_deadlock(instance)
        ok, _witness = instance.monitor.history.check_serializable()
        assert ok

    def test_no_false_positives_without_conflicts(self):
        instance = build_instance(probes=True, wait_timeout=None)
        txns = [
            Transaction(ops=[Operation.write(f"x{i + 1}", i)], home_site="site1")
            for i in range(4)
        ]
        processes = [instance.submit(txn) for txn in txns]
        instance.sim.run(until=instance.sim.all_of(processes))
        assert all(txn.committed for txn in txns)
        victims = sum(
            site.deadlock_detector.stats.victims_aborted
            for site in instance.sites.values()
        )
        assert victims == 0


class TestWorkloadWithProbes:
    def test_contended_workload_completes_and_serializes(self):
        from repro.workload.spec import WorkloadSpec

        instance = build_instance(probes=True, wait_timeout=None, seed=9)
        result = instance.run_workload(
            WorkloadSpec(
                n_transactions=30, arrival="closed", mpl=6,
                min_ops=3, max_ops=5, read_fraction=0.4,
            )
        )
        assert result.statistics.finished == 30
        assert result.statistics.committed > 0
        assert result.serializable is True

    def test_config_roundtrip_keeps_flag(self):
        config = RainbowConfig.quick(n_sites=2, n_items=4)
        config.distributed_deadlock = True
        config.probe_interval = 7.5
        clone = RainbowConfig.from_dict(config.to_dict())
        assert clone.distributed_deadlock is True
        assert clone.probe_interval == 7.5


class TestLockManagerHooks:
    def test_waiting_info_reports_blockers(self, sim):
        from repro.site.locks import LockManager, LockMode

        locks = LockManager(sim, wait_timeout=None)
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "x", LockMode.X)
        info = locks.waiting_info()
        assert len(info) == 1
        txn, ts, item, blockers, _since = info[0]
        assert (txn, item, blockers) == (2, "x", {1})

    def test_blockers_of(self, sim):
        from repro.site.locks import LockManager, LockMode

        locks = LockManager(sim, wait_timeout=None)
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "x", LockMode.X)
        assert locks.blockers_of(2) == {1}
        assert locks.blockers_of(1) == set()

    def test_abort_waiter_public(self, sim):
        from repro.errors import ConcurrencyAbort
        from repro.site.locks import LockManager, LockMode

        locks = LockManager(sim, wait_timeout=None)
        locks.acquire(1, 1.0, "x", LockMode.X)
        event = locks.acquire(2, 2.0, "x", LockMode.X)
        assert locks.abort_waiter(2, reason="external") is True
        sim.run()
        assert event.triggered and not event.ok
        assert locks.abort_waiter(2, reason="again") is False

    def test_on_block_hook_fires(self, sim):
        from repro.site.locks import LockManager, LockMode

        seen = []
        locks = LockManager(
            sim, wait_timeout=None,
            on_block=lambda txn, ts, blockers: seen.append((txn, blockers)),
        )
        locks.acquire(1, 1.0, "x", LockMode.X)
        locks.acquire(2, 2.0, "x", LockMode.X)
        assert seen == [(2, {1})]
