"""The 'full semester' integration test: everything on one instance.

One Rainbow domain lives through an entire course's worth of activity:
bring-up, GUI administration, manual transactions, a simulated workload,
fault injection and recovery, a second workload, checkpoints, config
save/reload, and a final report — asserting global consistency at the end.
"""

import pytest

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.gui.applet import GuiApplet
from repro.monitor.report import session_report
from repro.monitor.tracing import ExecutionTracer
from repro.txn.transaction import Operation, Transaction
from repro.web.tier import RainbowWebTier
from repro.workload.spec import WorkloadSpec


@pytest.mark.slow
def test_full_semester(tmp_path):
    # --- The TA sets up the domain --------------------------------------
    config = RainbowConfig.quick(
        n_sites=4, n_items=24, replication_degree=3, sites_per_host=2, seed=21
    )
    config.sample_interval = 20.0
    config.checkpoint_interval = 150.0
    config.settle_time = 60.0
    instance = RainbowInstance(config)
    instance.start()
    tracer = ExecutionTracer(instance.sim)
    tracer.attach_all(instance)
    tier = RainbowWebTier(instance)

    # --- Students log in and poke around --------------------------------
    admin = GuiApplet(tier)
    assert admin.login("admin", "admin") == "admin"
    student = GuiApplet(tier)
    assert student.login("student", "student") == "student"
    assert len(student.lookup_sites()) == 4

    # Manual transactions (lab 0)
    t1 = Transaction(
        ops=[Operation.write("x1", 1), Operation.read("x2")], home_site="site1"
    )
    outcome = student.submit_transaction(t1)
    assert outcome["status"] == "COMMITTED"
    assert outcome["reads"]["x2"] == 0

    # --- Session 1: simulated workload ----------------------------------
    result1 = instance.run_workload(
        WorkloadSpec(n_transactions=40, arrival_rate=0.5, read_fraction=0.6,
                     min_ops=2, max_ops=4, increment_fraction=0.3)
    )
    assert result1.serializable is True
    assert result1.statistics.commit_rate > 0.5

    # --- Mid-semester failure drill -------------------------------------
    student.crash_site("site2")
    drill = Transaction(ops=[Operation.write("x1", 99)], home_site="site1")
    process = instance.submit(drill)
    instance.sim.run(until=process)
    assert drill.committed  # QC tolerates the minority outage
    student.recover_site("site2")
    instance.sim.run(until=instance.sim.now + 60)

    # --- Session 2 after recovery ----------------------------------------
    result2 = instance.run_workload(
        WorkloadSpec(n_transactions=40, arrival_rate=0.5, read_fraction=0.6,
                     min_ops=2, max_ops=4)
    )
    assert result2.serializable is True
    assert result2.statistics.finished == 82  # manual + 40 + drill + 40

    # --- Checkpoints actually happened ----------------------------------
    assert any(site.checkpoints_taken > 0 for site in instance.sites.values())

    # --- Config save/reload round trip -----------------------------------
    saved = tmp_path / "semester.json"
    admin.save_configuration(saved)
    reloaded = RainbowConfig.load(saved)
    reloaded.validate()
    assert reloaded.site_names() == config.site_names()
    # The reloaded config boots a working clone.
    clone = RainbowInstance(reloaded)
    clone_result = clone.run_workload(WorkloadSpec(n_transactions=5, arrival_rate=1.0))
    assert clone_result.statistics.finished == 5

    # --- Global end-state consistency ------------------------------------
    stats = result2.statistics
    assert stats.orphans_current == 0
    for site in instance.sites.values():
        assert site.up
        assert site.cc.active_transactions() == set()
    ok, _witness = instance.monitor.history.check_serializable()
    assert ok
    assert instance.monitor.history.reads_see_committed_versions() == []
    assert instance.monitor.history.version_collisions() == []

    # Replica convergence: every item's copies at or below max version are
    # consistent with quorum semantics (the max-version value is unique).
    for item in instance.catalog.item_names():
        copies = [
            instance.sites[name].store.read(item)
            for name in instance.catalog.sites_holding(item)
        ]
        top_version = max(version for _value, version in copies)
        top_values = {value for value, version in copies if version == top_version}
        assert len(top_values) == 1, item

    # --- The lab report renders ------------------------------------------
    report = session_report(instance, result2, tracer=tracer, title="Semester wrap")
    assert "Semester wrap" in report
    assert "one-copy serializable: **True**" in report
    # Time series kept sampling across the whole semester.
    assert len(instance.monitor.series["t"]) > 10
