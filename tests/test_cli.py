"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dance"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "qcmsg" in out
        assert "deadlock" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_experiment_lb_with_csv(self, tmp_path, capsys):
        target = tmp_path / "lb.csv"
        assert main(["experiment", "lb", "--csv", str(target)]) == 0
        out = capsys.readouterr().out
        assert "EXP-LB" in out
        assert target.exists()
        assert "policy" in target.read_text()

    def test_quickstart_small(self, capsys):
        assert main(["quickstart", "--transactions", "10"]) == 0
        out = capsys.readouterr().out
        assert "Tx Processing Output" in out
        assert "serializable: True" in out

    def test_quickstart_chart(self, capsys):
        assert main(["quickstart", "--transactions", "5", "--chart"]) == 0
        assert "Committed transactions over time" in capsys.readouterr().out

    def test_classroom_single(self, capsys):
        assert main(["classroom", "crash-recovery"]) == 0
        out = capsys.readouterr().out
        assert "Assignment: crash-recovery" in out
        assert "Assignment: deadlock" not in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--transactions", "8", "--out", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Rainbow session report")
        assert "## Output statistics" in text
        assert "## Global execution history" in text

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--transactions", "5"]) == 0
        assert "# Rainbow session report" in capsys.readouterr().out

    def test_panels(self, capsys):
        assert main(["panels"]) == 0
        out = capsys.readouterr().out
        assert "Protocols Configuration" in out
        assert "Database Replication Configuration" in out

    def test_chaos_small_suite(self, capsys):
        assert main(["chaos", "--seeds", "3", "--transactions", "15"]) == 0
        out = capsys.readouterr().out
        assert "Chaos suite" in out
        assert "3/3 seeds green" in out

    def test_chaos_broken_protocol_fails(self, capsys):
        assert main(["chaos", "--seeds", "1", "--ccp", "NOCC", "--no-shrink"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "qcmsg", "avail", "ccp", "scale", "acp", "lb", "abl", "matrix",
            "msgecon",
        }
