"""Tests for the sites panel, store reset, per-txn messages, config download."""

import json

import pytest

from repro.gui.applet import GuiApplet
from repro.gui.panels import render_sites_panel
from repro.site.storage import LocalStore
from repro.txn.transaction import Operation, Transaction
from repro.web.tier import RainbowWebTier
from repro.workload.spec import WorkloadSpec
from tests.conftest import quick_instance


class TestSitesPanel:
    def test_lists_every_site_with_status(self):
        instance = quick_instance(n_items=8, settle_time=20)
        instance.run_workload(WorkloadSpec(n_transactions=5, arrival_rate=1.0))
        instance.injector.crash_now("site3")
        panel = render_sites_panel(instance.sites.values())
        assert "Rainbow Sites" in panel
        for name in instance.sites:
            assert name in panel
        assert "DOWN" in panel
        assert "in-doubt" in panel


class TestStoreReset:
    def test_reset_value_keeps_version_zero(self):
        store = LocalStore("s")
        store.create_copy("x", 0)
        store.reset_value("x", 500)
        assert store.read("x") == (500, 0)
        store.apply("x", 501, version=1, txn_id=1, at=0.0)
        assert store.read("x") == (501, 1)

    def test_quick_config_initial_value(self):
        instance = quick_instance(n_items=4)
        # default initial value is 0
        assert instance.sites["site1"].store.read("x1") == (0, 0)
        from repro.core.config import RainbowConfig
        from repro.core.instance import RainbowInstance

        config = RainbowConfig.quick(n_sites=2, n_items=2, initial_value=100)
        funded = RainbowInstance(config)
        assert funded.sites["site1"].store.read("x1") == (100, 0)


class TestPerTxnMessages:
    def test_remote_txn_counts_messages(self):
        instance = quick_instance(n_items=8, settle_time=20)
        instance.start()
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site4")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        instance.sim.run(until=instance.sim.now + 30)
        record = next(
            r for r in instance.monitor.records if r.txn_id == txn.txn_id
        )
        assert record.messages > 0

    def test_purely_local_txn_counts_zero(self):
        # Single site: everything is local, no messages carry the txn id.
        instance = quick_instance(n_sites=1, n_items=4, replication_degree=1,
                                  settle_time=10)
        txn = Transaction(ops=[Operation.write("x1", 1)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        record = next(
            r for r in instance.monitor.records if r.txn_id == txn.txn_id
        )
        assert record.messages == 0

    def test_mean_messages_statistic(self):
        instance = quick_instance(n_items=16, settle_time=30)
        result = instance.run_workload(WorkloadSpec(n_transactions=6, arrival_rate=0.5))
        assert result.statistics.mean_messages_per_txn > 0
        rows = dict(result.statistics.as_rows())
        assert "Mean messages per transaction" in rows


class TestConfigDownload:
    def test_admin_downloads_config(self, tmp_path):
        instance = quick_instance(n_items=8)
        instance.start()
        tier = RainbowWebTier(instance)
        applet = GuiApplet(tier)
        applet.login("admin", "admin")
        target = tmp_path / "session-config.json"
        data = applet.save_configuration(target)
        assert data["protocols"]["rcp"] == "QC"
        saved = json.loads(target.read_text())
        assert saved == data
        # The saved file round-trips into a valid configuration.
        from repro.core.config import RainbowConfig

        RainbowConfig.load(target).validate()

    def test_student_cannot_download_config(self, tmp_path):
        from repro.errors import WebTierError

        instance = quick_instance(n_items=8)
        instance.start()
        tier = RainbowWebTier(instance)
        applet = GuiApplet(tier)
        applet.login("student", "student")
        with pytest.raises(WebTierError):
            applet.save_configuration(tmp_path / "nope.json")


class TestProtocolMatrixExperiment:
    def test_tiny_matrix_runs(self):
        from repro.experiments import protocol_matrix

        table = protocol_matrix.run(
            rcps=("QC",), ccps=("2PL", "OCC"), acps=("2PC",), n_txns=10
        )
        assert len(table.rows) == 2
        assert all(row["serializable"] for row in table.rows)

    def test_cli_knows_matrix(self):
        from repro.cli import EXPERIMENTS

        assert "matrix" in EXPERIMENTS
