"""Tests for the message-economy optimizations (docs/PERF.md).

Covers the three config-flagged optimizations — per-host operation
batching, the piggybacked 2PC prepare, and latency-aware quorum routing —
plus the satellites that ride with them: ``expected_delay`` on every
latency model, decision idempotence under duplicated deliveries, catalog
spec memoization, payload-derived reply sizes, and the EXP-MSGECON sweep.
"""

import pytest

from repro.chaos import invariants
from repro.experiments import message_economy
from repro.experiments.common import build_instance
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LanWanLatency,
    LinkOverrideLatency,
    UniformLatency,
)
from repro.net.message import MessageType
from repro.txn.coordinator import TxnContext
from repro.txn.transaction import Operation, Transaction
from repro.workload.spec import WorkloadSpec
from tests.conftest import drive, quick_instance


def econ_instance(
    n_sites=2,
    n_items=4,
    degree=None,
    *,
    ccp="MVTO",
    acp="2PC",
    sites_per_host=1,
    latency=None,
    seed=11,
    **flags,
):
    """A small instance with the optimization flags applied."""
    return build_instance(
        n_sites,
        n_items,
        degree if degree is not None else n_sites,
        rcp="QC",
        ccp=ccp,
        acp=acp,
        seed=seed,
        settle_time=60.0,
        latency=latency,
        **flags,
        sites_per_host=sites_per_host,
    )


def wal_decisions(site, kind, *, participant_only=False):
    """txn_id -> number of ``kind`` records in the site's WAL.

    With ``participant_only`` the count covers only participant-apply
    records (those tagged with a coordinator address); the home site
    additionally forces one untagged coordinator decision record.
    """
    counts = {}
    for record in site.wal.records:
        if record.kind != kind:
            continue
        if participant_only and record.coordinator is None:
            continue
        counts[record.txn_id] = counts.get(record.txn_id, 0) + 1
    return counts


class TestExpectedDelay:
    """expected_delay: the deterministic expectation of each latency model."""

    def test_constant(self):
        assert ConstantLatency(2.5).expected_delay("a", "b") == 2.5

    def test_uniform_is_midpoint(self):
        assert UniformLatency(1.0, 3.0).expected_delay("a", "b") == 2.0

    def test_exponential_is_floor_plus_mean(self):
        assert ExponentialLatency(mean=2.0, floor=0.5).expected_delay("a", "b") == 2.5

    def test_lanwan_distinguishes_hosts(self):
        model = LanWanLatency(local=0.05, remote_low=0.8, remote_high=1.2)
        assert model.expected_delay("h1", "h1") == 0.05
        assert model.expected_delay("h1", "h2") == pytest.approx(1.0)

    def test_link_override_resolves_pair(self):
        model = LinkOverrideLatency(
            ConstantLatency(1.0),
            {("hA", "hB"): 10.0, ("hA", "hC"): UniformLatency(2.0, 4.0)},
        )
        assert model.expected_delay("hA", "hB") == 10.0
        assert model.expected_delay("hB", "hA") == 10.0
        assert model.expected_delay("hA", "hC") == 3.0
        assert model.expected_delay("hA", "hD") == 1.0


class TestLatencyAwareRouting:
    def _context(self, instance, home="site1"):
        txn = Transaction(ops=[Operation.read("x1")], home_site=home)
        return TxnContext(
            txn,
            instance.sites[home],
            instance.catalog,
            instance.directory,
            instance.coordinator_config,
        )

    def test_routing_prefers_lan_siblings(self):
        # site1/site2 share host1, site3/site4 share host2.
        instance = econ_instance(
            n_sites=4, sites_per_host=2, latency="lanwan",
            latency_aware_routing=True,
        )
        ctx = self._context(instance, home="site3")
        order = ctx.order_local_first(["site1", "site2", "site3", "site4"])
        assert order == ["site3", "site4", "site1", "site2"]

    def test_flag_off_keeps_alphabetical_order(self):
        instance = econ_instance(n_sites=4, sites_per_host=2, latency="lanwan")
        ctx = self._context(instance, home="site3")
        order = ctx.order_local_first(["site1", "site2", "site3", "site4"])
        assert order == ["site3", "site1", "site2", "site4"]

    def test_routing_tie_break_is_name(self):
        instance = econ_instance(
            n_sites=4, sites_per_host=4, latency="lanwan",
            latency_aware_routing=True,
        )
        ctx = self._context(instance, home="site2")
        order = ctx.order_local_first(["site4", "site3", "site1", "site2"])
        assert order == ["site2", "site1", "site3", "site4"]


def _econ_workload(n=40):
    return WorkloadSpec(
        n_transactions=n,
        arrival="poisson",
        arrival_rate=0.3,
        min_ops=3,
        max_ops=5,
        read_fraction=0.6,
        increment_fraction=0.5,
        restart_on_abort=False,
    )


class TestBatching:
    def test_batching_coalesces_and_preserves_safety(self):
        batched = econ_instance(
            n_sites=6, n_items=12, degree=3, sites_per_host=3,
            batch_site_ops=True,
        )
        plain = econ_instance(n_sites=6, n_items=12, degree=3, sites_per_host=3)
        result_b = batched.run_workload(_econ_workload())
        result_p = plain.run_workload(_econ_workload())

        by_type = batched.network.stats.by_type
        assert by_type.get(MessageType.BATCH_ACCESS, 0) > 0
        assert result_b.statistics.batched_ops > 0
        assert result_b.statistics.round_trips_saved > 0
        assert plain.network.stats.by_type.get(MessageType.BATCH_ACCESS, 0) == 0
        assert batched.network.stats.sent < plain.network.stats.sent

        for result, instance in ((result_b, batched), (result_p, plain)):
            assert result.serializable is True
            violations = invariants.check_all(instance, result)
            assert not any(violations.values()), violations

    def test_flag_off_by_default(self):
        instance = quick_instance(n_sites=3, n_items=6)
        instance.run_workload(_econ_workload(10))
        assert MessageType.BATCH_ACCESS not in instance.network.stats.by_type


class TestPiggybackedPrepare:
    def _one_write_final_txn(self, **flags):
        instance = econ_instance(n_sites=2, n_items=2, **flags)
        txn = Transaction(
            ops=[Operation.read("x1"), Operation.write("x2", 42)],
            home_site="site1",
        )
        instance.run_transactions([txn])
        return instance, txn

    def test_piggyback_saves_the_vote_round(self):
        instance, txn = self._one_write_final_txn(piggyback_prepare=True)
        assert txn.committed
        # The remote prewrite carried the prepare: no explicit VOTE_REQ.
        assert instance.network.stats.by_type.get(MessageType.VOTE_REQ, 0) == 0
        stats = instance.monitor.output_statistics()
        assert stats.round_trips_saved == 1
        for site in instance.sites.values():
            assert site.store.read("x2")[0] == 42
        # Exactly one participant-apply COMMIT at each site (the home also
        # forces one untagged coordinator decision record).
        for site in instance.sites.values():
            applied = wal_decisions(site, "COMMIT", participant_only=True)
            assert applied.get(txn.txn_id) == 1
        assert wal_decisions(instance.sites["site1"], "COMMIT") == {txn.txn_id: 2}
        assert wal_decisions(instance.sites["site2"], "COMMIT") == {txn.txn_id: 1}
        # The piggybacked prepare was logged exactly once at the remote.
        prepares = wal_decisions(instance.sites["site2"], "PREPARE")
        assert prepares.get(txn.txn_id) == 1

    def test_explicit_round_without_flag(self):
        instance, txn = self._one_write_final_txn()
        assert txn.committed
        assert instance.network.stats.by_type.get(MessageType.VOTE_REQ, 0) == 1
        assert instance.monitor.output_statistics().round_trips_saved == 0

    def test_3pc_falls_back_to_explicit_votes(self):
        instance, txn = self._one_write_final_txn(
            piggyback_prepare=True, acp="3PC"
        )
        assert txn.committed
        assert instance.network.stats.by_type.get(MessageType.VOTE_REQ, 0) == 1
        assert instance.monitor.output_statistics().round_trips_saved == 0

    def test_counter_version_ccp_skips_write_piggyback(self):
        # 2PL stamps versions after the prewrite replies, so a final-op
        # *write* misses the piggyback window and keeps the explicit round.
        instance, txn = self._one_write_final_txn(
            piggyback_prepare=True, ccp="2PL"
        )
        assert txn.committed
        assert instance.network.stats.by_type.get(MessageType.VOTE_REQ, 0) == 1
        for site in instance.sites.values():
            assert site.store.read("x2")[0] == 42

    def test_piggybacked_no_vote_aborts(self):
        instance = econ_instance(n_sites=2, n_items=2, piggyback_prepare=True)
        instance.start()
        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        ctx = TxnContext(
            txn,
            instance.sites["site1"],
            instance.catalog,
            instance.directory,
            instance.coordinator_config,
        )
        ctx._register("site2")
        ctx._pending_votes["site2"] = (False, "validation failed")
        all_yes, detail = drive(instance.sim, ctx.collect_votes("2PC"))
        assert all_yes is False
        assert "site2: validation failed" in detail


class TestDecisionIdempotence:
    def _assert_no_double_apply(self, instance, result, expected):
        violations = invariants.check_all(
            instance, result, expected_submissions=expected
        )
        assert not any(violations.values()), violations
        for site in instance.sites.values():
            # A participant applied each decision at most once, no matter
            # how many duplicate deliveries arrived.
            for txn_id, count in wal_decisions(
                site, "COMMIT", participant_only=True
            ).items():
                assert count == 1, (
                    f"{site.name} applied COMMIT x{count} for txn {txn_id}"
                )
            # Per site: at most one coordinator decision record plus one
            # participant-apply record.
            for kind in ("COMMIT", "ABORT"):
                for txn_id, count in wal_decisions(site, kind).items():
                    assert count <= 2, (
                        f"{site.name} logged {kind} x{count} for txn {txn_id}"
                    )

    def test_flaky_link_duplicates_do_not_double_apply(self):
        instance = econ_instance(n_sites=2, n_items=6, ccp="2PL")
        instance.start()
        instance.network.set_link_flakiness("host1", "host2", duplicate=0.9)
        result = instance.run_workload(_econ_workload(30))
        assert instance.network.stats.duplicated > 0
        assert result.statistics.committed > 0
        self._assert_no_double_apply(instance, result, 30)

    def test_global_duplication_with_optimizations_on(self):
        instance = econ_instance(
            n_sites=4, n_items=8, degree=3, sites_per_host=2,
            batch_site_ops=True, piggyback_prepare=True,
            latency_aware_routing=True, latency="lanwan",
        )
        instance.start()
        instance.network.duplication_rate = 0.3
        result = instance.run_workload(_econ_workload(30))
        assert instance.network.stats.duplicated > 0
        assert result.statistics.committed > 0
        self._assert_no_double_apply(instance, result, 30)


class TestSpecMemoization:
    def test_item_spec_cached_per_attempt(self):
        instance = quick_instance(n_sites=2, n_items=2)
        txn = Transaction(ops=[Operation.read("x1")], home_site="site1")
        ctx = TxnContext(
            txn,
            instance.sites["site1"],
            instance.catalog,
            instance.directory,
            instance.coordinator_config,
        )
        calls = []
        real = instance.catalog.item

        def counting(name):
            calls.append(name)
            return real(name)

        instance.catalog.item = counting
        first = ctx.item_spec("x1")
        assert ctx.item_spec("x1") is first
        assert calls == ["x1"]
        ctx.invalidate_spec_cache()
        ctx.item_spec("x1")
        assert calls == ["x1", "x1"]


class TestReplySizes:
    def _ask(self, instance, mtype):
        site = instance.sites["site1"]

        def request():
            msg = yield site.endpoint.request(
                instance.nameserver.address, mtype, {}, timeout=50.0
            )
            return msg

        return drive(instance.sim, request())

    def test_ns_lookup_reply_sized_by_site_count(self):
        instance = quick_instance(n_sites=3, n_items=4)
        instance.start()
        reply = self._ask(instance, MessageType.NS_LOOKUP)
        assert reply.size == 3

    def test_ns_catalog_reply_sized_by_catalog(self):
        instance = quick_instance(n_sites=2, n_items=5)
        instance.start()
        reply = self._ask(instance, MessageType.NS_CATALOG)
        assert reply.size == 5


class TestMessageEconomyExperiment:
    def test_sweep_shows_savings(self):
        table = message_economy.run(
            flag_sets=("none", "all"),
            rcps=("QC",),
            latencies=("lanwan",),
            n_txns=40,
        )
        assert len(table.rows) == 2
        rows = {row["flags"]: row for row in table.rows}
        assert rows["none"]["saved_per_txn"] == 0.0
        assert rows["all"]["saved_per_txn"] > 0.0
        # The acceptance bar: >=25% fewer transaction-processing messages.
        assert rows["all"]["msgs_per_txn"] < 0.75 * rows["none"]["msgs_per_txn"]
        assert rows["all"]["round_trips_per_txn"] < (
            rows["none"]["round_trips_per_txn"] - 1.0
        )
