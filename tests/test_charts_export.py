"""Tests for ASCII charts and result export."""

import csv
import io
import json

import pytest

from repro.experiments.common import ExperimentTable
from repro.gui.charts import bar_chart, line_chart, series_chart
from repro.monitor.export import (
    statistics_to_json,
    table_to_csv,
    table_to_json,
    timeseries_to_csv,
    write_text,
)
from repro.monitor.stats import ProgressMonitor


class TestLineChart:
    def test_plots_points_within_frame(self):
        chart = line_chart([0, 1, 2, 3], [0, 1, 4, 9], title="squares", height=8)
        assert "squares" in chart
        assert chart.count("*") == 4
        assert "9" in chart and "0" in chart

    def test_empty_series(self):
        assert "(no data)" in line_chart([], [], title="t")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], [1])

    def test_flat_series_does_not_crash(self):
        chart = line_chart([0, 1, 2], [5, 5, 5])
        assert chart.count("*") >= 1

    def test_series_chart_uses_time_axis(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.sample()
        sim.timeout(10)
        sim.run()
        monitor.sample()
        chart = series_chart(monitor.series, "messages")
        assert "messages" in chart

    def test_series_chart_unknown_key(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        with pytest.raises(KeyError):
            series_chart(monitor.series, "nope")


class TestBarChart:
    def test_bars_proportional(self):
        chart = bar_chart(["a", "b"], [10, 5], width=20)
        lines = chart.splitlines()
        bar_a = lines[0].count("#")
        bar_b = lines[1].count("#")
        assert bar_a == 2 * bar_b

    def test_zero_values(self):
        chart = bar_chart(["a"], [0])
        assert "0" in chart

    def test_empty(self):
        assert "(no data)" in bar_chart([], [], title="x")

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [])


def sample_table():
    table = ExperimentTable(title="T", columns=["x", "y"], notes="n")
    table.add(x=1, y="a")
    table.add(x=2, y="b")
    return table


class TestTableExport:
    def test_csv_roundtrip(self, tmp_path):
        table = sample_table()
        text = table_to_csv(table, tmp_path / "t.csv")
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows == [{"x": "1", "y": "a"}, {"x": "2", "y": "b"}]
        assert (tmp_path / "t.csv").read_text() == text

    def test_json_roundtrip(self):
        payload = json.loads(table_to_json(sample_table()))
        assert payload["title"] == "T"
        assert payload["rows"][0]["x"] == 1

    def test_table_add_checks_columns(self):
        table = ExperimentTable(title="T", columns=["x", "y"])
        with pytest.raises(ValueError):
            table.add(x=1)

    def test_table_column_accessor(self):
        assert sample_table().column("x") == [1, 2]

    def test_to_text_contains_all(self):
        text = sample_table().to_text()
        assert "T" in text and "x" in text and "a" in text and "n" in text


class TestStatisticsExport:
    def test_statistics_json(self, sim, network, tmp_path):
        monitor = ProgressMonitor(sim, network)
        text = statistics_to_json(monitor.output_statistics(), tmp_path / "s.json")
        payload = json.loads(text)
        assert payload["committed"] == 0
        assert (tmp_path / "s.json").exists()

    def test_timeseries_csv(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.sample()
        monitor.sample()
        text = timeseries_to_csv(monitor.series)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "t"
        assert len(rows) == 3

    def test_write_text(self, tmp_path):
        target = write_text("hello", tmp_path / "x.txt")
        assert target.read_text() == "hello"
