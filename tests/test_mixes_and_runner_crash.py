"""Tests for workload mixes and ServletRunner crash/recovery."""

import random

import pytest

from repro.errors import WorkloadError
from repro.gui.applet import GuiApplet
from repro.txn.transaction import OpKind
from repro.web.tier import RainbowWebTier
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import MixClass, WorkloadSpec
from tests.conftest import quick_instance


def make_generator(instance, spec, seed=0):
    return WorkloadGenerator(
        instance.sim, instance.network, instance.directory, instance.catalog,
        spec, random.Random(seed), name=f"wlg-mix{seed}",
    )


class TestMixClasses:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            MixClass(weight=0, min_ops=1, max_ops=2, read_fraction=0.5).validate()
        with pytest.raises(WorkloadError):
            MixClass(weight=1, min_ops=3, max_ops=2, read_fraction=0.5).validate()
        with pytest.raises(WorkloadError):
            MixClass(weight=1, min_ops=1, max_ops=2, read_fraction=2.0).validate()
        MixClass(weight=1, min_ops=1, max_ops=2, read_fraction=0.5).validate()

    def test_empty_mix_rejected(self):
        spec = WorkloadSpec(mix=[])
        with pytest.raises(WorkloadError):
            spec.validate()

    def test_mix_overrides_sizes_and_rw(self):
        instance = quick_instance(n_items=64)
        scan = MixClass(weight=1, min_ops=10, max_ops=12, read_fraction=1.0,
                        name="scan")
        update = MixClass(weight=1, min_ops=1, max_ops=2, read_fraction=0.0,
                          name="update")
        generator = make_generator(instance, WorkloadSpec(mix=[scan, update]))
        sizes = set()
        for _ in range(40):
            txn = generator.make_transaction()
            sizes.add(len(txn.ops))
            kinds = {op.kind for op in txn.ops}
            if len(txn.ops) >= 10:
                assert kinds == {OpKind.READ}
            if len(txn.ops) <= 2:
                assert OpKind.READ not in kinds
        assert any(size >= 10 for size in sizes)
        assert any(size <= 2 for size in sizes)

    def test_weights_respected(self):
        instance = quick_instance(n_items=64)
        heavy = MixClass(weight=9, min_ops=1, max_ops=1, read_fraction=1.0)
        rare = MixClass(weight=1, min_ops=5, max_ops=5, read_fraction=1.0)
        generator = make_generator(instance, WorkloadSpec(mix=[heavy, rare]))
        sizes = [len(generator.make_transaction().ops) for _ in range(300)]
        share_heavy = sizes.count(1) / len(sizes)
        assert share_heavy > 0.8

    def test_mix_with_increments(self):
        instance = quick_instance(n_items=64)
        rmw = MixClass(weight=1, min_ops=2, max_ops=2, read_fraction=0.0,
                       increment_fraction=1.0)
        generator = make_generator(instance, WorkloadSpec(mix=[rmw]))
        txn = generator.make_transaction()
        assert all(op.kind == OpKind.INCREMENT for op in txn.ops)

    def test_mixed_session_runs(self):
        instance = quick_instance(n_items=32, settle_time=40)
        spec = WorkloadSpec(
            n_transactions=16,
            arrival_rate=0.6,
            mix=[
                MixClass(weight=3, min_ops=1, max_ops=2, read_fraction=0.0,
                         name="update"),
                MixClass(weight=1, min_ops=6, max_ops=8, read_fraction=1.0,
                         name="scan"),
            ],
        )
        result = instance.run_workload(spec)
        assert result.statistics.finished == 16
        assert result.serializable is True

    def test_mix_via_web_tier_dict_spec(self):
        instance = quick_instance(n_items=16, settle_time=20)
        instance.start()
        tier = RainbowWebTier(instance)
        applet = GuiApplet(tier)
        applet.login("student", "student")
        workload_id = applet.start_workload(
            {
                "n_transactions": 4,
                "arrival_rate": 1.0,
                "mix": [
                    {"weight": 1, "min_ops": 1, "max_ops": 2, "read_fraction": 0.5}
                ],
            }
        )
        instance.sim.run(until=instance.sim.now + 150)
        assert applet.workload_status(workload_id)["done"]


class TestRunnerCrash:
    def _domain(self):
        instance = quick_instance(n_items=8, settle_time=10)
        instance.start()
        tier = RainbowWebTier(instance)
        applet = GuiApplet(tier)
        applet.login("student", "student")
        return instance, tier, applet

    def test_home_runner_crash_makes_gui_unreachable(self):
        instance, tier, applet = self._domain()
        tier.runners[tier.home_host].crash()
        response = applet.call("pmlet", "statistics")
        assert not response.ok
        assert "unreachable" in response.error

    def test_home_runner_recovery_restores_gui(self):
        instance, tier, applet = self._domain()
        runner = tier.runners[tier.home_host]
        runner.crash()
        runner.recover()
        response = applet.call("pmlet", "statistics")
        assert response.ok

    def test_remote_runner_crash_only_breaks_forwarding(self):
        instance, tier, applet = self._domain()
        # Crash the runner on site3's host: site_stats for it fails, but
        # global statistics (home-served) keep working.
        host = instance.sites["site3"].host
        tier.runners[host].crash()
        response = applet.call("siterunnerlet", "site_stats", {"site": "site3"})
        assert not response.ok
        assert applet.call("pmlet", "statistics").ok
        # The core is unaffected: transactions still run.
        from repro.txn.transaction import Operation, Transaction

        txn = Transaction(ops=[Operation.write("x1", 5)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
        assert txn.committed

    def test_runner_crash_via_injector(self):
        instance, tier, applet = self._domain()
        instance.injector.crash_now(f"runner-{tier.home_host}")
        assert not tier.runners[tier.home_host].up
        instance.injector.recover_now(f"runner-{tier.home_host}")
        assert tier.runners[tier.home_host].up
        assert applet.call("pmlet", "statistics").ok

    def test_crash_recover_idempotent(self):
        instance, tier, applet = self._domain()
        runner = tier.runners[tier.home_host]
        runner.crash()
        runner.crash()
        runner.recover()
        runner.recover()
        assert runner.up
