"""Unit tests for per-site storage and the write-ahead log."""

import pytest

from repro.errors import CatalogError
from repro.site.storage import LocalStore
from repro.site.wal import WriteAheadLog


class TestLocalStore:
    def test_create_and_read(self):
        store = LocalStore("s1")
        store.create_copy("x", initial_value=10)
        assert store.read("x") == (10, 0)
        assert store.has_copy("x")
        assert store.items() == ["x"]
        assert len(store) == 1

    def test_duplicate_copy_rejected(self):
        store = LocalStore("s1")
        store.create_copy("x")
        with pytest.raises(CatalogError):
            store.create_copy("x")

    def test_read_missing_copy_rejected(self):
        with pytest.raises(CatalogError):
            LocalStore("s1").read("ghost")

    def test_apply_updates_value_and_version(self):
        store = LocalStore("s1")
        store.create_copy("x")
        store.apply("x", 42, version=3, txn_id=7, at=1.0)
        assert store.read("x") == (42, 3)
        assert store.version("x") == 3
        assert store.writes_applied == 1

    def test_stale_version_ignored(self):
        store = LocalStore("s1")
        store.create_copy("x")
        store.apply("x", 42, version=3, txn_id=7, at=1.0)
        store.apply("x", 13, version=2, txn_id=8, at=2.0)
        assert store.read("x") == (42, 3)

    def test_equal_version_overwrites(self):
        store = LocalStore("s1")
        store.create_copy("x")
        store.apply("x", 1, version=1, txn_id=1, at=0.0)
        store.apply("x", 2, version=1, txn_id=2, at=0.0)
        assert store.read("x")[0] == 2

    def test_audit_log_records_writes(self):
        store = LocalStore("s1")
        store.create_copy("x")
        store.apply("x", 5, version=1, txn_id=9, at=4.5)
        record = store.audit_log[0]
        assert (record.item, record.value, record.version, record.txn_id, record.at) == (
            "x", 5, 1, 9, 4.5,
        )

    def test_reads_counted(self):
        store = LocalStore("s1")
        store.create_copy("x")
        store.read("x")
        store.read("x")
        assert store.reads_served == 2

    def test_snapshot_and_restore(self):
        store = LocalStore("s1")
        store.create_copy("x")
        store.apply("x", 9, version=2, txn_id=1, at=0.0)
        snap = store.snapshot()
        other = LocalStore("s2")
        other.load_snapshot(snap)
        assert other.read("x") == (9, 2)


class TestWriteAheadLog:
    def test_lsns_increase(self):
        wal = WriteAheadLog("s1")
        r1 = wal.log_prepare(1, {"x": (5, 1)}, "c/addr", at=1.0)
        r2 = wal.log_commit(1, at=2.0)
        assert r2.lsn > r1.lsn
        assert len(wal) == 2

    def test_decision_for_latest(self):
        wal = WriteAheadLog("s1")
        wal.log_prepare(1, {}, None, at=0.0)
        assert wal.decision_for(1) is None
        wal.log_commit(1, at=1.0)
        assert wal.decision_for(1) == "COMMIT"
        assert wal.decision_for(2) is None

    def test_abort_decision(self):
        wal = WriteAheadLog("s1")
        wal.log_prepare(1, {}, None, at=0.0)
        wal.log_abort(1, at=1.0)
        assert wal.decision_for(1) == "ABORT"

    def test_recover_classifies_in_doubt(self):
        wal = WriteAheadLog("s1")
        wal.log_prepare(1, {"x": (5, 1)}, "coord/a", at=0.0, ts=3.5, acp="3PC",
                        peers=["p1", "p2"])
        wal.log_prepare(2, {"y": (7, 2)}, "coord/b", at=1.0)
        wal.log_commit(2, at=2.0)
        in_doubt, committed = wal.recover_state()
        assert [d.txn_id for d in in_doubt] == [1]
        doubt = in_doubt[0]
        assert doubt.writes == {"x": (5, 1)}
        assert doubt.coordinator == "coord/a"
        assert doubt.ts == 3.5
        assert doubt.acp == "3PC"
        assert doubt.peers == ["p1", "p2"]
        assert not doubt.precommitted
        assert [r.txn_id for r in committed] == [2]

    def test_recover_marks_precommitted(self):
        wal = WriteAheadLog("s1")
        wal.log_prepare(1, {}, None, at=0.0)
        wal.log_precommit(1, at=0.5)
        in_doubt, _committed = wal.recover_state()
        assert in_doubt[0].precommitted

    def test_recover_committed_in_lsn_order(self):
        wal = WriteAheadLog("s1")
        wal.log_prepare(2, {"y": (1, 1)}, None, at=0.0)
        wal.log_prepare(1, {"x": (1, 1)}, None, at=0.0)
        wal.log_commit(1, at=1.0)
        wal.log_commit(2, at=1.0)
        _in_doubt, committed = wal.recover_state()
        assert [r.txn_id for r in committed] == [2, 1]  # prepare LSN order

    def test_aborted_transactions_not_in_doubt(self):
        wal = WriteAheadLog("s1")
        wal.log_prepare(1, {}, None, at=0.0)
        wal.log_abort(1, at=1.0)
        in_doubt, committed = wal.recover_state()
        assert in_doubt == []
        assert committed == []

    def test_empty_log_recovers_empty(self):
        in_doubt, committed = WriteAheadLog("s1").recover_state()
        assert in_doubt == []
        assert committed == []
