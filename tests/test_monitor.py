"""Unit tests for the progress monitor and its output statistics."""

import pytest

from repro.monitor.stats import ProgressMonitor
from repro.txn.transaction import Operation, Transaction, TxnStatus
from tests.conftest import quick_instance


def finished_txn(home="site1", status=TxnStatus.COMMITTED, cause=None,
                 submitted=0.0, decided=5.0, reads=None, writes=None):
    txn = Transaction(
        ops=[Operation.read("x1"), Operation.write("x2", 1)], home_site=home
    )
    txn.status = status
    txn.abort_cause = cause
    txn.submitted_at = submitted
    txn.decided_at = decided
    txn.read_versions = dict(reads or {})
    txn.write_versions = dict(writes or {})
    return txn


class TestEventIntake:
    def test_commit_counted_with_response_time(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        txn = finished_txn()
        monitor.txn_submitted(txn)
        monitor.txn_finished(txn)
        assert monitor.committed == 1
        stats = monitor.output_statistics()
        assert stats.committed == 1
        assert stats.mean_response_time == pytest.approx(5.0)

    def test_abort_counted_by_cause(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        for cause in ("CCP", "CCP", "RCP", "ACP", "SYSTEM"):
            monitor.txn_finished(finished_txn(status=TxnStatus.ABORTED, cause=cause))
        stats = monitor.output_statistics()
        assert stats.aborted == 5
        assert stats.aborts_by_cause == {"CCP": 2, "RCP": 1, "ACP": 1, "SYSTEM": 1}
        assert stats.abort_rates_by_cause["CCP"] == pytest.approx(0.4)

    def test_commit_rate_and_abort_rate_sum_to_one(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.txn_finished(finished_txn())
        monitor.txn_finished(finished_txn(status=TxnStatus.ABORTED, cause="CCP"))
        stats = monitor.output_statistics()
        assert stats.commit_rate + stats.abort_rate == pytest.approx(1.0)

    def test_history_records_committed_only(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.txn_finished(finished_txn(reads={"x1": 0}, writes={"x2": 1}))
        monitor.txn_finished(finished_txn(status=TxnStatus.ABORTED, cause="CCP"))
        assert len(monitor.history) == 1

    def test_history_disabled(self, sim, network):
        monitor = ProgressMonitor(sim, network, record_history=False)
        monitor.txn_finished(finished_txn())
        assert monitor.history is None
        assert monitor.check_serializable() is None

    def test_records_include_op_counts(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.txn_finished(finished_txn())
        record = monitor.records[0]
        assert record.n_ops == 2
        assert record.n_reads == 1
        assert record.n_writes == 1


class TestStatisticsBlock:
    def test_empty_session_safe(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        stats = monitor.output_statistics()
        assert stats.committed == 0
        assert stats.commit_rate == 0
        assert stats.mean_response_time is None
        assert stats.p95_response_time is None

    def test_message_rates_from_network(self, sim, network):
        a = network.endpoint("h1", "a")
        b = network.endpoint("h2", "b")
        monitor = ProgressMonitor(sim, network)
        a.send(b.address, "X")
        a.send(b.address, "Y")
        sim.run()
        sim.timeout(10)
        sim.run()
        stats = monitor.output_statistics()
        assert stats.messages_total == 2
        assert stats.messages_by_type == {"X": 1, "Y": 1}

    def test_imbalance_zero_for_uniform(self, sim, network):
        assert ProgressMonitor._imbalance([5, 5, 5, 5]) == 0.0

    def test_imbalance_positive_for_skew(self, sim, network):
        assert ProgressMonitor._imbalance([10, 0, 0, 0]) > 1.0

    def test_imbalance_degenerate_cases(self, sim, network):
        assert ProgressMonitor._imbalance([]) == 0.0
        assert ProgressMonitor._imbalance([3]) == 0.0
        assert ProgressMonitor._imbalance([0, 0]) == 0.0

    def test_p95_and_median(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        for rt in range(1, 101):
            monitor.txn_finished(finished_txn(submitted=0.0, decided=float(rt)))
        stats = monitor.output_statistics()
        assert stats.median_response_time == pytest.approx(50.5)
        assert stats.p95_response_time == 96.0

    def test_as_rows_contains_paper_statistics(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        rows = dict(monitor.output_statistics().as_rows())
        for label in (
            "Committed transactions",
            "  aborts due to RCP",
            "  aborts due to CCP",
            "  aborts due to ACP",
            "Commit rate",
            "Throughput (commits/time)",
            "Messages per time unit",
            "Round-trip messages",
            "Mean response time",
            "Orphan transactions (now)",
            "Load imbalance (CV of home txns)",
        ):
            assert label in rows


class TestSampling:
    def test_sampler_collects_series(self):
        instance = quick_instance(n_items=16, sample_interval=10.0, settle_time=30)
        from repro.workload.spec import WorkloadSpec

        instance.run_workload(WorkloadSpec(n_transactions=10, arrival_rate=0.5))
        series = instance.monitor.series
        assert len(series["t"]) >= 3
        assert len(series["t"]) == len(series["committed"]) == len(series["messages"])
        # Cumulative counters never decrease.
        assert all(a <= b for a, b in zip(series["committed"], series["committed"][1:]))
        assert all(a <= b for a, b in zip(series["messages"], series["messages"][1:]))

    def test_manual_sample(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.sample()
        assert monitor.series["t"] == [0.0]


class TestInstanceLevelStatistics:
    def test_site_populated_fields(self):
        instance = quick_instance(n_items=16, settle_time=30)
        from repro.workload.spec import WorkloadSpec

        result = instance.run_workload(WorkloadSpec(n_transactions=8, arrival_rate=0.5))
        stats = result.statistics
        assert set(stats.home_txns_by_site) == {"site1", "site2", "site3", "site4"}
        assert sum(stats.home_txns_by_site.values()) == 8
        assert stats.round_trips > 0
        assert stats.elapsed > 0


class TestStatisticsExportRoundTrip:
    """statistics_to_json must preserve every counter a session can set."""

    ROUND_TRIP_FIELDS = (
        "messages_dropped", "messages_lost_random", "messages_duplicated",
        "round_trips_saved", "batched_ops", "orphaned_txns",
    )

    def stats_with_extras(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.txn_submitted(finished_txn())
        monitor.txn_finished(finished_txn())
        stats = monitor.output_statistics()
        for index, field in enumerate(self.ROUND_TRIP_FIELDS, start=1):
            setattr(stats, field, index)
        stats.phase_breakdown = {
            "lock_wait": {"mean_per_txn": 1.5, "max_per_txn": 4.0},
            "network": {"mean_per_txn": 0.25, "max_per_txn": 0.75},
        }
        return stats

    def test_json_round_trip_preserves_counters(self, sim, network):
        import json

        from repro.monitor.export import statistics_to_json

        stats = self.stats_with_extras(sim, network)
        loaded = json.loads(statistics_to_json(stats))
        for field in self.ROUND_TRIP_FIELDS:
            assert loaded[field] == getattr(stats, field), field
        assert loaded["phase_breakdown"] == stats.phase_breakdown
        assert loaded["committed"] == 1

    def test_json_round_trip_writes_file(self, sim, network, tmp_path):
        import json

        from repro.monitor.export import statistics_to_json

        stats = self.stats_with_extras(sim, network)
        target = tmp_path / "stats.json"
        statistics_to_json(stats, target)
        assert json.loads(target.read_text()) == json.loads(
            statistics_to_json(stats)
        )


class TestOrphanedTxnStatistic:
    def test_orphaned_abort_counted(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        orphan = finished_txn(status=TxnStatus.ABORTED, cause="SYSTEM")
        orphan.orphaned = True
        monitor.txn_finished(orphan)
        monitor.txn_finished(finished_txn(status=TxnStatus.ABORTED, cause="CCP"))
        stats = monitor.output_statistics()
        assert stats.orphaned_txns == 1

    def test_panel_row_only_when_nonzero(self, sim, network):
        monitor = ProgressMonitor(sim, network)
        monitor.txn_finished(finished_txn())
        stats = monitor.output_statistics()
        labels = [label for label, _value in stats.as_rows()]
        assert "Orphaned transactions (dead coordinator)" not in labels
        assert "Per-phase latency (mean/max per txn)" not in labels
        stats.orphaned_txns = 2
        stats.phase_breakdown = {
            "vote": {"mean_per_txn": 1.0, "max_per_txn": 2.0}
        }
        rows = dict(stats.as_rows())
        assert rows["Orphaned transactions (dead coordinator)"] == "2"
        assert rows["  vote"] == "1.000 / 2.000"
