"""Plumbing tests for the experiment modules (tiny parameters).

The benchmarks assert the full qualitative shapes; these tests only verify
that every experiment runs end-to-end at reduced scale and produces
well-formed tables.
"""

import pytest

from repro.experiments import (
    ablation,
    acp_blocking,
    availability,
    ccp_contention,
    load_balance,
    quorum_traffic,
    scalability,
    session,
)
from repro.experiments.common import ExperimentTable, build_instance


class TestCommon:
    def test_build_instance_defaults(self):
        instance = build_instance(3, 9, 2)
        assert len(instance.sites) == 3
        assert len(instance.catalog) == 9

    def test_build_instance_failure_profile(self):
        instance = build_instance(2, 4, 2, failure_profile=True)
        assert instance.coordinator_config.op_timeout == 15.0
        assert instance.config.gc_timeout == 40.0

    def test_build_instance_ccp_options(self):
        instance = build_instance(2, 4, 2, ccp_options={"deadlock_strategy": "timeout"})
        assert instance.sites["site1"].cc.locks.strategy == "timeout"

    def test_build_instance_config_override(self):
        instance = build_instance(2, 4, 2, uncertainty_timeout=12.5)
        assert instance.config.uncertainty_timeout == 12.5


class TestExperimentRuns:
    def test_quorum_traffic_tiny(self):
        table = quorum_traffic.run(degrees=(1, 3), read_fractions=(0.5,), n_txns=20)
        assert isinstance(table, ExperimentTable)
        assert len(table.rows) == 4  # 2 RCPs x 2 degrees
        assert all(row["msgs_per_txn"] >= 0 for row in table.rows)

    def test_availability_tiny(self):
        table = availability.run(mttfs=(None, 200.0), n_txns=20)
        assert len(table.rows) == 6  # 3 RCPs (ROWA, ROWAA, QC) x 2 MTTFs
        assert {row["rcp"] for row in table.rows} == {"ROWA", "ROWAA", "QC"}
        fault_free = [row for row in table.rows if row["mttf"] == "inf"]
        assert all(row["crashes"] == 0 for row in fault_free)

    def test_ccp_contention_tiny(self):
        table = ccp_contention.run(thetas=(0.0,), ccps=("2PL", "TSO"), n_txns=20, mpl=4)
        assert len(table.rows) == 2
        assert {row["ccp"] for row in table.rows} == {"2PL", "TSO"}

    def test_scalability_tiny(self):
        table = scalability.run(site_counts=(1, 2), txns_per_site=8)
        assert len(table.rows) == 2
        assert table.rows[0]["sites"] == 1

    def test_acp_blocking_tiny(self):
        table = acp_blocking.run(outage=60.0)
        assert len(table.rows) == 3
        assert table.rows[0]["acp"] == "2PC"

    def test_load_balance_tiny(self):
        table = load_balance.run(n_txns=24)
        assert {row["policy"] for row in table.rows} == {"round_robin", "weighted"}

    def test_ablation_tiny(self):
        table = ablation.run(strategies=("detect", "timeout"), n_txns=20, mpl=4)
        assert len(table.rows) == 2

    def test_session_returns_panel(self):
        result, panel, instance = session.run(n_txns=20)
        assert result.statistics.finished == 20
        assert "Tx Processing Output" in panel
        assert instance.monitor.series["t"]
