"""rainbow-lint: rule fixtures, escape hatch, filters, CLI, and the repo gate.

Every RBxxx rule has a known-bad fixture under ``tests/fixtures/lint/``
that must trigger *exactly* that rule, plus a corrected twin that must be
clean.  The final tests are the actual CI gate: ``repro lint src`` must
exit 0 on the repository itself.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import run_lint, render_json, render_text, rule_catalog
from repro.analysis.core import AnalysisError, all_rules
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
SRC = REPO_ROOT / "src"

RULE_IDS = ["RB100", "RB101", "RB102", "RB103", "RB104", "RB105", "RB106"]

#: rule -> minimum number of findings its bad fixture must produce.
EXPECTED_MIN_FINDINGS = {
    "RB100": 1,
    "RB101": 3,
    "RB102": 7,
    "RB103": 2,
    "RB104": 3,
    "RB105": 4,
    "RB106": 4,
}


def lint_fixture(name: str):
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {path}"
    return run_lint([str(path)])


# -- per-rule fixtures -------------------------------------------------------

@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_triggers_exactly_its_rule(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_bad.py")
    assert report.findings, f"{rule_id} fixture produced no findings"
    fired = {finding.rule_id for finding in report.findings}
    assert fired == {rule_id}, f"expected only {rule_id}, got {sorted(fired)}"
    assert len(report.findings) >= EXPECTED_MIN_FINDINGS[rule_id]
    for finding in report.findings:
        assert finding.line > 0 and finding.col > 0
        assert finding.path.endswith(f"{rule_id.lower()}_bad.py")


@pytest.mark.parametrize("rule_id", [r for r in RULE_IDS if r != "RB100"])
def test_good_fixture_is_clean(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_good.py")
    assert report.ok, (
        f"{rule_id} good fixture should be clean, got:\n" + render_text(report)
    )


# -- the rb: ignore escape hatch ---------------------------------------------

def test_inline_ignore_suppresses_finding(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "def f(ctx):\n"
        "    ctx.broadcast('COMMIT')  # rb: ignore[RB101] -- exercised elsewhere\n"
        "    yield None\n"
    )
    report = run_lint([str(bad)])
    assert report.ok
    assert report.suppressed == 1


def test_inline_ignore_is_rule_specific(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "def f(ctx):\n"
        "    ctx.broadcast('COMMIT')  # rb: ignore[RB102] -- wrong rule id\n"
        "    yield None\n"
    )
    report = run_lint([str(bad)])
    assert [f.rule_id for f in report.findings] == ["RB101"]


def test_bare_ignore_suppresses_all_rules(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "import time\n"
        "def f(ctx):\n"
        "    ctx.broadcast(time.time())  # rb: ignore\n"
        "    yield None\n"
    )
    assert run_lint([str(bad)]).ok


def test_file_level_ignore(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "# rb: ignore-file[RB102]\n"
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
        "def later():\n"
        "    return time.monotonic()\n"
    )
    report = run_lint([str(bad)])
    assert report.ok
    assert report.suppressed == 2


def test_file_level_ignore_must_be_near_the_top(tmp_path):
    bad = tmp_path / "mod.py"
    lines = ["x = %d" % i for i in range(12)]
    lines.append("# rb: ignore-file[RB102]")
    lines.append("import time")
    lines.append("def now():")
    lines.append("    return time.time()")
    bad.write_text("\n".join(lines) + "\n")
    report = run_lint([str(bad)])
    assert [f.rule_id for f in report.findings] == ["RB102"]


# -- select / ignore filters -------------------------------------------------

def test_select_limits_rules():
    bad = FIXTURES / "rb102_bad.py"
    report = run_lint([str(bad)], select=["RB101"])
    assert report.ok  # RB102 findings exist but RB102 was not selected


def test_ignore_drops_rules():
    bad = FIXTURES / "rb102_bad.py"
    report = run_lint([str(bad)], ignore=["RB102"])
    assert report.ok


def test_unknown_rule_id_raises():
    with pytest.raises(AnalysisError):
        run_lint([str(FIXTURES)], select=["RB999"])
    with pytest.raises(AnalysisError):
        all_rules(ignore=["NOPE"])


def test_rb100_respects_filters():
    bad = FIXTURES / "rb100_bad.py"
    assert run_lint([str(bad)], ignore=["RB100"]).ok
    report = run_lint([str(bad)], select=["RB100"])
    assert [f.rule_id for f in report.findings] == ["RB100"]


# -- engine behaviour --------------------------------------------------------

def test_findings_are_deterministically_ordered():
    first = run_lint([str(FIXTURES)])
    second = run_lint([str(FIXTURES)])
    assert first.findings == second.findings
    ordered = [(f.path, f.line, f.col, f.rule_id) for f in first.findings]
    assert ordered == sorted(ordered)


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        run_lint([str(REPO_ROOT / "no_such_dir")])


def test_rule_catalog_lists_all_stock_rules():
    ids = [row[0] for row in rule_catalog()]
    assert ids == ["RB101", "RB102", "RB103", "RB104", "RB105", "RB106"]
    for _rule_id, name, severity, description in rule_catalog():
        assert name and severity in ("error", "warning") and description


def test_json_rendering_shape():
    report = run_lint([str(FIXTURES / "rb101_bad.py")])
    payload = json.loads(render_json(report))
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert len(payload["findings"]) == len(report.findings)
    entry = payload["findings"][0]
    assert set(entry) == {"path", "line", "col", "rule", "severity", "message"}
    assert entry["rule"] == "RB101"


def test_text_rendering_mentions_location_and_rule():
    report = run_lint([str(FIXTURES / "rb101_bad.py")])
    text = render_text(report)
    assert "RB101" in text and "rb101_bad.py" in text
    assert text.splitlines()[-1].startswith(f"{len(report.findings)} findings")


# -- CLI ---------------------------------------------------------------------

def test_cli_lint_exits_nonzero_on_findings(capsys):
    code = cli_main(["lint", str(FIXTURES / "rb101_bad.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "RB101" in out


def test_cli_lint_json(capsys):
    code = cli_main(["lint", "--format", "json", str(FIXTURES / "rb105_bad.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert all(entry["rule"] == "RB105" for entry in payload["findings"])


def test_cli_lint_list_rules(capsys):
    code = cli_main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("RB101", "RB102", "RB103", "RB104", "RB105", "RB106"):
        assert rule_id in out


def test_cli_lint_bad_select_is_usage_error(capsys):
    code = cli_main(["lint", "--select", "RB999", str(FIXTURES)])
    assert code == 2
    assert "RB999" in capsys.readouterr().err


def test_cli_lint_select_filter(capsys):
    code = cli_main(["lint", "--select", "RB101", str(FIXTURES / "rb102_bad.py")])
    capsys.readouterr()
    assert code == 0


# -- the repository gate -----------------------------------------------------

def test_repo_source_tree_is_lint_clean():
    report = run_lint([str(SRC)])
    assert report.ok, "rainbow-lint findings in src:\n" + render_text(report)


def test_cli_repo_gate_exit_zero(capsys):
    code = cli_main(["lint", str(SRC)])
    capsys.readouterr()
    assert code == 0


def test_benchmarks_and_examples_are_lint_clean():
    for tree in ("benchmarks", "examples"):
        path = REPO_ROOT / tree
        if path.exists():
            report = run_lint([str(path)])
            assert report.ok, f"findings in {tree}:\n" + render_text(report)
