"""Causal span tracing: determinism, phase accounting, exporters, wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.experiments.common import build_instance
from repro.net.message import Message, MessageType
from repro.workload.spec import WorkloadSpec


def traced_session(seed: int = 7, n_transactions: int = 15):
    """One small traced session; returns (instance, result)."""
    instance = build_instance(3, 24, 2, seed=seed, tracing=True)
    result = instance.run_workload(
        WorkloadSpec(
            n_transactions=n_transactions,
            arrival="poisson",
            arrival_rate=0.5,
            min_ops=2,
            max_ops=5,
            read_fraction=0.6,
        )
    )
    return instance, result


@pytest.fixture(scope="module")
def session():
    return traced_session()


class TestSpanModel:
    def test_span_ids_follow_txn_site_seq_scheme(self, session):
        instance, _result = session
        tracer = instance.span_tracer
        assert tracer.spans, "traced session produced no spans"
        for span in tracer.spans:
            txn_part, site, seq = span.span_id.split(":")
            assert txn_part == f"t{span.txn_id}"
            assert site == span.site
            assert int(seq) >= 1

    def test_every_traced_txn_has_one_root(self, session):
        instance, _result = session
        tracer = instance.span_tracer
        for txn_id in tracer.txn_ids():
            root = tracer.root(txn_id)
            assert root is not None and root.name == "txn"
            assert root.parent_id is None

    def test_children_nest_inside_parents(self, session):
        instance, _result = session
        tracer = instance.span_tracer
        for span in tracer.spans:
            if span.parent_id is None or span.end is None:
                continue
            parent = tracer.get(span.parent_id)
            if parent is None or parent.end is None:
                continue
            assert span.start >= parent.start - 1e-9

    def test_message_reply_propagates_span(self):
        msg = Message(
            mtype=MessageType.READ, src="a/s1", dst="b/s2",
            payload={}, span="t1:site1:3",
        )
        assert msg.reply(MessageType.READ_REPLY, {}).span == "t1:site1:3"


class TestPhaseAccounting:
    def test_breakdown_sums_to_response_time(self, session):
        instance, _result = session
        tracer = instance.span_tracer
        checked = 0
        for record in instance.monitor.records:
            if record.response_time is None or tracer.root(record.txn_id) is None:
                continue
            breakdown = obs.txn_phase_breakdown(tracer, record.txn_id)
            parts = sum(
                breakdown[key] for key in (*obs.PHASES, "other")
            )
            assert parts == pytest.approx(breakdown["total"], abs=1e-9)
            assert breakdown["total"] == pytest.approx(record.response_time)
            checked += 1
        assert checked > 0

    def test_aggregate_stats_cover_known_phases(self, session):
        instance, _result = session
        stats = instance.monitor.output_statistics()
        assert stats.phase_breakdown, "tracing on but no phase breakdown"
        for phase, entry in stats.phase_breakdown.items():
            assert phase in obs.PHASES
            assert entry["max_per_txn"] >= entry["mean_per_txn"] >= 0.0

    def test_critical_path_walks_root_to_leaf(self, session):
        instance, _result = session
        tracer = instance.span_tracer
        txn_id = tracer.txn_ids()[0]
        path = obs.critical_path(tracer, txn_id)
        assert path[0][0].name == "txn"
        for (parent, _), (child, _) in zip(path, path[1:]):
            assert child.parent_id == parent.span_id
        assert all(self_time >= 0.0 for _span, self_time in path)


class TestDeterminismAndPerturbation:
    def test_same_seed_exports_identical_bytes(self):
        first, _ = traced_session(seed=11, n_transactions=10)
        second, _ = traced_session(seed=11, n_transactions=10)
        assert obs.spans_to_chrome_json(first.span_tracer.spans) == \
            obs.spans_to_chrome_json(second.span_tracer.spans)
        assert obs.spans_to_csv(first.span_tracer.spans) == \
            obs.spans_to_csv(second.span_tracer.spans)

    def test_tracing_does_not_perturb_the_run(self):
        traced, traced_result = traced_session(seed=13, n_transactions=10)
        plain = build_instance(3, 24, 2, seed=13)
        plain_result = plain.run_workload(
            WorkloadSpec(
                n_transactions=10,
                arrival="poisson",
                arrival_rate=0.5,
                min_ops=2,
                max_ops=5,
                read_fraction=0.6,
            )
        )
        assert plain.span_tracer is None
        for field in ("committed", "aborted", "messages_total", "round_trips",
                      "mean_response_time", "orphaned_txns"):
            assert getattr(plain_result.statistics, field) == \
                getattr(traced_result.statistics, field)
        assert plain_result.statistics.phase_breakdown == {}

    def test_normalize_renumbers_by_first_appearance(self, session):
        instance, _result = session
        normalized = obs.normalize_spans(instance.span_tracer.spans)
        seen: list[int] = []
        for span in normalized:
            if span.txn_id not in seen:
                seen.append(span.txn_id)
        assert seen == list(range(1, len(seen) + 1))
        for span in normalized:
            assert span.span_id.startswith(f"t{span.txn_id}:")


class TestExporters:
    def test_chrome_json_shape(self, session):
        instance, _result = session
        payload = json.loads(obs.spans_to_chrome_json(instance.span_tracer.spans))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M" and events[0]["args"]["name"] == "rainbow"
        spans = [event for event in events if event["ph"] == "X"]
        assert len(spans) == len(instance.span_tracer.spans)
        for event in spans:
            assert event["dur"] >= 0.0
            assert event["cat"] in (*obs.PHASES, "structure")

    def test_csv_has_one_row_per_span(self, session):
        instance, _result = session
        text = obs.spans_to_csv(instance.span_tracer.spans)
        lines = text.strip().splitlines()
        assert lines[0].startswith("txn_id,span_id,parent_id,name,phase")
        assert len(lines) == len(instance.span_tracer.spans) + 1

    def test_multi_session_export_gets_one_pid_each(self):
        first, _ = traced_session(seed=3, n_transactions=5)
        second, _ = traced_session(seed=4, n_transactions=5)
        payload = json.loads(
            obs.tracers_to_chrome_json(
                [("a", first.span_tracer.spans), ("b", second.span_tracer.spans)]
            )
        )
        pids = {event["pid"] for event in payload["traceEvents"]}
        assert pids == {1, 2}


class TestChaosWiring:
    def test_failing_case_ships_history_and_trace(self):
        from repro.chaos.engine import run_chaos_case

        report = run_chaos_case(2, ccp="NOCC", trace=True)
        assert not report.ok, "NOCC seed 2 was expected to violate invariants"
        assert report.history, "failing case must carry its textbook history"
        assert " " in report.history
        payload = json.loads(report.trace_json)
        assert payload["traceEvents"]
        again = run_chaos_case(2, ccp="NOCC", trace=True)
        assert again.history == report.history
        assert again.trace_json == report.trace_json

    def test_green_case_stays_lean(self):
        from repro.chaos.engine import run_chaos_case

        report = run_chaos_case(3, intensity=0.0, n_transactions=10)
        assert report.ok
        assert report.history == "" and report.trace_json == ""

    def test_suite_report_renders_wrapped_history(self):
        from repro.chaos.engine import ChaosCaseReport
        from repro.chaos.suite import ChaosSuiteResult, render_suite_report

        case = ChaosCaseReport(
            seed=9,
            chunks=(),
            violations={"serializability": ["x1@1 written by both T1 and T2"]},
            history="  ".join(f"r{i}[x1]" for i in range(40)),
        )
        text = render_suite_report(ChaosSuiteResult(cases=[case]))
        assert "execution history (textbook notation):" in text
        history_lines = [
            line for line in text.splitlines() if line.startswith("    r")
        ]
        assert len(history_lines) > 1
        assert all(len(line) <= 96 for line in history_lines)


class TestGlobalRegistry:
    def test_global_flag_traces_new_instances(self):
        obs.enable_global_tracing()
        try:
            instance = build_instance(3, 12, 2, seed=5)
            assert instance.span_tracer is not None
            labels = [label for label, _tracer in obs.collected_tracers()]
            assert labels == ["session1"]
        finally:
            obs.disable_global_tracing()
        assert obs.collected_tracers() == []
