# Rainbow reproduction — developer entry points.
#
#   make test        tier-1 test suite (the CI gate)
#   make lint        rainbow-lint over src/, benchmarks/, examples/
#   make lint-all    rainbow-lint + ruff + mypy (skips tools not installed)
#   make bench       kernel microbenchmark smoke run + BENCH_*.json artifacts
#   make chaos       chaos suite: 25 nemesis seeds, all safety invariants
#   make trace       traced session: phase breakdown + trace.json (Perfetto)
#   make rules       print the rainbow-lint rule catalog

PY       ?= python
PYPATH   := PYTHONPATH=src
LINTDIRS := src benchmarks examples

.PHONY: test lint lint-all bench chaos trace rules

test:
	$(PYPATH) $(PY) -m pytest -x -q

lint:
	$(PYPATH) $(PY) -m repro lint $(LINTDIRS)

lint-all: lint
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		$(PYPATH) mypy -p repro.sim -p repro.protocols -p repro.analysis; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

bench:
	$(PYPATH) $(PY) -m pytest benchmarks/test_bench_kernel.py --benchmark-only -q -s
	$(PYPATH) $(PY) -m repro bench

chaos:
	$(PYPATH) $(PY) -m repro chaos --seeds 25 -j 0

trace:
	$(PYPATH) $(PY) -m repro trace --seed 7 --out trace.json

rules:
	$(PYPATH) $(PY) -m repro lint --list-rules
