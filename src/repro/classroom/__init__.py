"""Classroom support: lab assignments and the broken NOCC demo protocol.

Importing this package registers ``NOCC`` in the CCP registry (if not
already present) so it shows up in the Protocols Configuration panel.
"""

from repro.classroom.assignments import (
    AssignmentReport,
    all_assignments,
    assignment_2pc_blocking,
    assignment_checkpoint_recovery,
    assignment_crash_recovery,
    assignment_deadlock,
    assignment_distributed_deadlock,
    assignment_lost_update_nocc,
    assignment_quorum_intersection,
)
from repro.classroom.nocc import NoConcurrencyController
from repro.protocols.base import ccp_registry, register_ccp

if "NOCC" not in ccp_registry():
    register_ccp("NOCC", NoConcurrencyController)

__all__ = [
    "AssignmentReport",
    "NoConcurrencyController",
    "all_assignments",
    "assignment_2pc_blocking",
    "assignment_checkpoint_recovery",
    "assignment_crash_recovery",
    "assignment_deadlock",
    "assignment_distributed_deadlock",
    "assignment_lost_update_nocc",
    "assignment_quorum_intersection",
]
