"""NOCC — deliberately *broken* concurrency control, for teaching.

"The code can be distributed to students so they can gain hands-on
experience …  Term projects can be based on modifying Rainbow by adding a
protocol."  NOCC is the cautionary half of that exercise: a controller
that accepts every read and pre-write immediately, with no ordering at
all.  Under concurrent read-modify-write transactions it produces lost
updates, which the history checker then catches — demonstrating both what
concurrency control is *for* and how Rainbow's checker finds violations.

It registers as ``"NOCC"`` when :mod:`repro.classroom` is imported, so the
Protocols Configuration panel offers it like any student protocol.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.protocols.ccp.workspace import WorkspaceController

__all__ = ["NoConcurrencyController"]


class NoConcurrencyController(WorkspaceController):
    """No locks, no timestamps, no waits — and no isolation."""

    name = "NOCC"

    def read(self, txn_id: int, ts: float, item: str) -> Generator:
        self._check_doom(txn_id)
        self.stats.reads += 1
        written, value = self._buffered_value(txn_id, item)
        if written:
            return value, self.store.version(item)
        return self.store.read(item)
        yield  # pragma: no cover - generator marker

    def prewrite(self, txn_id: int, ts: float, item: str, value: Any) -> Generator:
        self._check_doom(txn_id)
        self.stats.prewrites += 1
        self._buffer(txn_id, item, value)
        return self.store.version(item)
        yield  # pragma: no cover - generator marker

    def commit(self, txn_id: int, versions: dict[str, int]) -> None:
        self._apply_workspace(txn_id, versions)
        self.stats.commits += 1

    def abort(self, txn_id: int) -> None:
        self._drop(txn_id)
        self.stats.aborts += 1

    def clear(self) -> None:
        self._workspace.clear()
        self._doomed.clear()
