"""Scripted lab assignments ("Homework and lab assignments can be designed
around Rainbow").

Each assignment is a deterministic scenario with a narrative, the
observations a student should collect, and a ``passed`` flag indicating
that the phenomenon the lab teaches actually occurred in the run.  They
are used three ways: as runnable demos (``python -m repro classroom``),
as integration tests of the whole stack, and as templates for writing new
assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.monitor.tracing import ExecutionTracer
from repro.txn.transaction import Operation, Transaction

__all__ = [
    "AssignmentReport",
    "assignment_deadlock",
    "assignment_2pc_blocking",
    "assignment_quorum_intersection",
    "assignment_lost_update_nocc",
    "assignment_crash_recovery",
    "all_assignments",
]


@dataclass
class AssignmentReport:
    """What one assignment run produced."""

    name: str
    narrative: str
    observations: dict[str, Any] = field(default_factory=dict)
    passed: bool = False

    def render(self) -> str:
        lines = [f"Assignment: {self.name}", self.narrative, ""]
        for key, value in self.observations.items():
            lines.append(f"  {key}: {value}")
        lines.append(f"  => phenomenon observed: {self.passed}")
        return "\n".join(lines)


def _instance(seed: int = 2, **overrides) -> RainbowInstance:
    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3, seed=seed)
    config.uncertainty_timeout = 25.0
    config.decision_retry = 10.0
    for key, value in overrides.items():
        setattr(config, key, value)
    return RainbowInstance(config)


def assignment_deadlock() -> AssignmentReport:
    """Two transactions lock the same two items in opposite orders."""
    instance = _instance()
    instance.start()
    tracer = ExecutionTracer(instance.sim)
    tracer.attach_all(instance)
    t1 = Transaction(
        ops=[Operation.write("x1", 1), Operation.write("x5", 1)], home_site="site1"
    )
    t2 = Transaction(
        ops=[Operation.write("x5", 2), Operation.write("x1", 2)], home_site="site2"
    )
    p1, p2 = instance.submit(t1), instance.submit(t2)
    instance.sim.run(until=instance.sim.all_of([p1, p2]))
    instance.sim.run(until=instance.sim.now + 50)

    deadlocks = sum(
        site.cc.locks.stats.deadlocks
        for site in instance.sites.values()
        if hasattr(site.cc, "locks")
    )
    timeouts = sum(
        site.cc.locks.stats.timeouts
        for site in instance.sites.values()
        if hasattr(site.cc, "locks")
    )
    ccp_aborts = sum(1 for txn in (t1, t2) if txn.aborted and txn.abort_cause == "CCP")
    survivors = [txn for txn in (t1, t2) if txn.committed]
    ok, _witness = instance.monitor.history.check_serializable()
    return AssignmentReport(
        name="deadlock",
        narrative=(
            "T1 writes x1 then x5; T2 writes x5 then x1, concurrently, under "
            "strict 2PL.  The opposite lock orders form a cycle; the detector "
            "(or the wait timeout) must pick a victim so the other commits."
        ),
        observations={
            "t1": f"{t1.status} ({t1.abort_cause})",
            "t2": f"{t2.status} ({t2.abort_cause})",
            "deadlocks_detected": deadlocks,
            "lock_wait_timeouts": timeouts,
            "history_serializable": ok,
            "local_history_site1": tracer.local_history("site1", max_events=12),
        },
        passed=(deadlocks + timeouts) >= 1 and ccp_aborts >= 1 and len(survivors) >= 1 and ok,
    )


def assignment_2pc_blocking() -> AssignmentReport:
    """Crash the coordinator after the votes: watch 2PC block."""
    instance = _instance(settle_time=0.0)
    instance.coordinator_config.failpoint = "after_votes"
    instance.coordinator_config.failpoint_arms = 1
    instance.start()
    txn = Transaction(
        ops=[Operation.write("x1", 7), Operation.write("x2", 8)], home_site="site1"
    )
    process = instance.submit(txn)
    instance.sim.run(until=process)
    crash_at = instance.sim.now
    instance.sim.run(until=crash_at + 150)
    orphans_during = sum(site.in_doubt_count() for site in instance.sites.values())
    instance.injector.recover_now("site1")
    instance.sim.run(until=instance.sim.now + 150)
    orphans_after = sum(site.in_doubt_count() for site in instance.sites.values())
    aborted_everywhere = all(
        instance.sites[name].store.read("x1")[0] == 0
        for name in instance.catalog.sites_holding("x1")
    )
    return AssignmentReport(
        name="2pc-blocking",
        narrative=(
            "The home site crashes right after collecting unanimous YES "
            "votes.  Prepared participants are uncertain (orphan "
            "transactions) and stay blocked until the coordinator recovers "
            "and presumed abort resolves them."
        ),
        observations={
            "orphans_while_coordinator_down": orphans_during,
            "orphans_after_recovery": orphans_after,
            "write_visible_anywhere": not aborted_everywhere,
        },
        passed=orphans_during >= 1 and orphans_after == 0 and aborted_everywhere,
    )


def assignment_quorum_intersection() -> AssignmentReport:
    """Quorum reads stay current even with the freshest copy offline."""
    instance = _instance(settle_time=10.0)
    instance.coordinator_config.op_timeout = 10.0
    instance.start()
    writer = Transaction(ops=[Operation.write("x1", 42)], home_site="site1")
    process = instance.submit(writer)
    instance.sim.run(until=process)
    updated = [
        name
        for name in instance.catalog.sites_holding("x1")
        if instance.sites[name].store.read("x1")[0] == 42
    ]
    stale = [
        name
        for name in instance.catalog.sites_holding("x1")
        if instance.sites[name].store.read("x1")[0] != 42
    ]
    # Crash ONE updated copy holder; any read quorum must still intersect
    # the write quorum in the surviving updated copy.
    instance.injector.crash_now(updated[0])
    reader = Transaction(ops=[Operation.read("x1")], home_site=stale[0] if stale else "site4")
    process = instance.submit(reader)
    instance.sim.run(until=process)
    return AssignmentReport(
        name="quorum-intersection",
        narrative=(
            "A write reaches only a write quorum (2 of 3 copies); one "
            "updated holder then crashes.  Because r + w > V, every read "
            "quorum still contains an updated copy and version currency "
            "picks it over the stale one."
        ),
        observations={
            "updated_copies": updated,
            "stale_copies": stale,
            "crashed": updated[0],
            "reader_status": reader.status,
            "value_read": reader.reads.get("x1"),
        },
        passed=reader.committed and reader.reads.get("x1") == 42 and len(stale) == 1,
    )


def assignment_lost_update_nocc() -> AssignmentReport:
    """Remove concurrency control and produce a classic lost update."""
    import repro.classroom  # noqa: F401 - ensures NOCC is registered

    instance = _instance()
    instance.config.protocols.ccp = "NOCC"
    instance = RainbowInstance(instance.config)
    instance.start()
    # Two read-modify-write increments racing on x1.
    t1 = Transaction(ops=[Operation.read("x1"), Operation.write("x1", 1)],
                     home_site="site1")
    t2 = Transaction(ops=[Operation.read("x1"), Operation.write("x1", 1)],
                     home_site="site2")
    p1, p2 = instance.submit(t1), instance.submit(t2)
    instance.sim.run(until=instance.sim.all_of([p1, p2]))
    instance.sim.run(until=instance.sim.now + 50)

    collisions = instance.monitor.history.version_collisions()
    ok, _cycle = instance.monitor.history.check_serializable()
    return AssignmentReport(
        name="lost-update-nocc",
        narrative=(
            "With the (deliberately broken) NOCC protocol both increments "
            "read version 0 and both install version 1: one update is "
            "physically lost.  Rainbow's history checker flags the version "
            "collision — this is why CCPs exist."
        ),
        observations={
            "t1": t1.status,
            "t2": t2.status,
            "version_collisions": collisions,
            "serializable": ok,
        },
        passed=bool(collisions) and t1.committed and t2.committed,
    )


def assignment_crash_recovery() -> AssignmentReport:
    """Committed state survives a crash through the WAL."""
    instance = _instance(settle_time=10.0)
    instance.start()
    writer = Transaction(ops=[Operation.write("x1", 11)], home_site="site1")
    process = instance.submit(writer)
    instance.sim.run(until=process)
    site = instance.sites["site1"]
    value_before = site.store.read("x1")
    wal_before = len(site.wal)
    instance.injector.crash_now("site1")
    instance.injector.recover_now("site1")
    instance.sim.run(until=instance.sim.now + 30)
    value_after = site.store.read("x1")
    reader = Transaction(ops=[Operation.read("x1")], home_site="site1")
    process = instance.submit(reader)
    instance.sim.run(until=process)
    return AssignmentReport(
        name="crash-recovery",
        narrative=(
            "A committed write is forced to the WAL before the decision; "
            "after a crash and recovery the committed value is intact and "
            "the recovered site serves transactions again."
        ),
        observations={
            "value_before_crash": value_before,
            "value_after_recovery": value_after,
            "wal_records": wal_before,
            "reader_status": reader.status,
            "value_read": reader.reads.get("x1"),
        },
        passed=(
            writer.committed
            and value_after == value_before
            and reader.committed
            and reader.reads.get("x1") == 11
        ),
    )


def assignment_distributed_deadlock() -> AssignmentReport:
    """A deadlock no single site can see, broken by edge-chasing probes."""
    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3, seed=2)
    config.distributed_deadlock = True
    config.probe_interval = 5.0
    # Disable the local wait-for graph and make timeouts irrelevant: only
    # the probe protocol can break the cycle inside this scenario.
    config.protocols.ccp_options = {
        "deadlock_strategy": "timeout",
        "wait_timeout": 10_000.0,
    }
    config.network.latency = "constant"
    config.network.latency_params = {"value": 1.0}
    instance = RainbowInstance(config)
    instance.start()
    t1 = Transaction(
        ops=[Operation.write("x1", 1), Operation.write("x5", 1)], home_site="site1"
    )
    t2 = Transaction(
        ops=[Operation.write("x5", 2), Operation.write("x1", 2)], home_site="site2"
    )
    p1, p2 = instance.submit(t1), instance.submit(t2)
    instance.sim.run(until=instance.sim.all_of([p1, p2]))
    instance.sim.run(until=instance.sim.now + 60)
    probe_traffic = {
        mtype: count
        for mtype, count in instance.network.stats.by_type.items()
        if mtype.startswith("DDD_")
    }
    cycles = sum(
        site.deadlock_detector.stats.cycles_found for site in instance.sites.values()
    )
    victims = sum(
        site.deadlock_detector.stats.victims_aborted
        for site in instance.sites.values()
    )
    survivors = [txn for txn in (t1, t2) if txn.committed]
    return AssignmentReport(
        name="distributed-deadlock",
        narrative=(
            "T1 and T2 lock x1/x5 in opposite orders from different home "
            "sites, so each waits at a *different* site: no local wait-for "
            "graph contains the cycle.  Chandy–Misra–Haas probes chase the "
            "edges across sites and abort the younger transaction."
        ),
        observations={
            "t1": f"{t1.status} ({t1.abort_cause})",
            "t2": f"{t2.status} ({t2.abort_cause})",
            "probe_messages": probe_traffic,
            "cycles_found": cycles,
            "victims_aborted": victims,
        },
        passed=cycles >= 1 and victims >= 1 and len(survivors) == 1,
    )


def assignment_checkpoint_recovery() -> AssignmentReport:
    """Checkpointing bounds the log without losing recoverability."""
    instance = _instance(settle_time=10.0)
    instance.start()
    site = instance.sites["site1"]
    for value in range(1, 6):
        txn = Transaction(ops=[Operation.write("x1", value)], home_site="site1")
        process = instance.submit(txn)
        instance.sim.run(until=process)
    records_before = len(site.wal)
    truncated = site.take_checkpoint()
    records_after = len(site.wal)
    site.crash()
    site.recover()
    instance.sim.run(until=instance.sim.now + 30)
    reader = Transaction(ops=[Operation.read("x1")], home_site="site1")
    process = instance.submit(reader)
    instance.sim.run(until=process)
    return AssignmentReport(
        name="checkpoint-recovery",
        narrative=(
            "Five committed writes grow the WAL; a fuzzy checkpoint "
            "truncates everything a recovery no longer needs (keeping only "
            "in-doubt transactions).  A crash immediately after still "
            "recovers the committed value from the checkpoint image."
        ),
        observations={
            "wal_records_before": records_before,
            "records_truncated": truncated,
            "wal_records_after": records_after,
            "value_after_recovery": reader.reads.get("x1"),
        },
        passed=(
            truncated > 0
            and records_after < records_before
            and reader.committed
            and reader.reads.get("x1") == 5
        ),
    )


def all_assignments() -> list[Callable[[], AssignmentReport]]:
    """Every stock assignment, in teaching order."""
    return [
        assignment_deadlock,
        assignment_2pc_blocking,
        assignment_quorum_intersection,
        assignment_lost_update_nocc,
        assignment_crash_recovery,
        assignment_distributed_deadlock,
        assignment_checkpoint_recovery,
    ]
