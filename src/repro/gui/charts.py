"""ASCII charts for the GUI's Display menu.

"A GUI support in automating experiments and visual rendering of the
results" — the reproduction renders results as terminal charts: a line
chart for the progress monitor's time series and a bar chart for
experiment tables (e.g. messages/txn by replication degree).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["line_chart", "bar_chart", "series_chart"]


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    title: str = "",
    width: int = 64,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render one series as an ASCII line chart (x must be increasing)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return f"{title}\n(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(label_width)
        elif index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * label_width + f"  {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}"))
    )
    return "\n".join(lines)


def series_chart(
    series: dict[str, list[float]],
    y_key: str,
    *,
    title: Optional[str] = None,
    width: int = 64,
    height: int = 12,
) -> str:
    """Chart one key of a progress-monitor time-series dict against t."""
    if y_key not in series:
        raise KeyError(f"series has no key {y_key!r}")
    return line_chart(
        series.get("t", []),
        series[y_key],
        title=title or f"{y_key} over simulated time",
        width=width,
        height=height,
        y_label=y_key,
    )


def bar_chart(
    labels: Iterable[str],
    values: Iterable[float],
    *,
    title: str = "",
    width: int = 48,
) -> str:
    """Render labelled values as horizontal ASCII bars."""
    labels = [str(label) for label in labels]
    values = [float(value) for value in values]
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(int(value / peak * width), 1 if value > 0 else 0)
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)
