"""ASCII renderings of the Rainbow GUI windows.

Each function reproduces the *information content* of one figure of the
paper as a text panel: the login/downloading applet (Figure 3), the
Protocols Configuration window (Figure 4), the transaction-processing
output of a session (Figure 5), the Database Replication Configuration
panel (Figure A-1), and the Manual Workload Generation panel (Figure A-2),
plus the two architecture figures (1 and 2).

Panels are plain strings, so they render in terminals, notebooks, and test
assertions alike.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import ProtocolConfig
from repro.monitor.stats import OutputStatistics, TxnRecord
from repro.nameserver.catalog import Catalog
from repro.protocols.base import acp_registry, ccp_registry, rcp_registry
from repro.txn.transaction import Transaction

__all__ = [
    "render_box",
    "render_table",
    "render_login_panel",
    "render_protocol_panel",
    "render_replication_panel",
    "render_manual_workload_panel",
    "render_session_panel",
    "render_sites_panel",
    "render_traffic_panel",
    "render_functional_architecture",
    "render_physical_architecture",
]


def render_box(title: str, lines: Iterable[str], width: int = 72) -> str:
    """Draw a titled box around ``lines``."""
    body = [line[: width - 4] for line in lines]
    inner = max([len(title) + 2] + [len(line) for line in body])
    inner = min(max(inner, 20), width - 4)
    top = f"+-- {title} " + "-" * max(inner - len(title) - 3, 0) + "-+"
    rows = [top]
    for line in body:
        rows.append(f"| {line.ljust(inner)} |")
    rows.append("+" + "-" * (len(top) - 2) + "+")
    return "\n".join(rows)


def render_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    """Format a fixed-width table as a list of lines."""
    table = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return lines


def render_login_panel(home_host: str, url: str, logged_in_as: Optional[str] = None) -> str:
    """Figure 3: the Rainbow GUI downloading applet / login screen."""
    lines = [
        f"Rainbow home host : {home_host}",
        f"URL               : {url}",
        "",
        "User name    : [...............]",
        "Password     : [...............]",
        "",
    ]
    if logged_in_as:
        lines.append(f"Status: logged in as {logged_in_as!r}")
        if logged_in_as == "admin":
            lines.append("Menus : Administration | Configuration | Tx Processing | Display")
        else:
            lines.append("Menus : Configuration | Tx Processing | Display")
    else:
        lines.append("Status: awaiting authorization")
    return render_box("Rainbow GUI Downloading Applet", lines)


def render_protocol_panel(config: ProtocolConfig) -> str:
    """Figure 4: the Protocols Configuration window."""

    def choices(registry: list[str], selected: str) -> str:
        return "  ".join(
            f"(o) {name}" if name == selected.upper() else f"( ) {name}"
            for name in registry
        )

    lines = [
        "Replication Control Protocol (RCP):",
        "    " + choices(rcp_registry(), config.rcp),
        "Concurrency Control Protocol (CCP):",
        "    " + choices(ccp_registry(), config.ccp),
        "Atomic Commit Protocol (ACP):",
        "    " + choices(acp_registry(), config.acp),
        "",
        f"Timeouts: op={config.op_timeout}  vote={config.vote_timeout}  "
        f"ack={config.ack_timeout} (x{config.ack_retries})",
        "",
        "[ Apply ]   [ Save Configuration ]   [ Cancel ]",
    ]
    return render_box("Protocols Configuration", lines)


def render_replication_panel(catalog: Catalog) -> str:
    """Figure A-1: the Database Replication Configuration panel."""
    sites = catalog.all_sites()
    headers = ["item"] + sites + ["votes", "r", "w"]
    rows = []
    for spec in catalog.items():
        row = [spec.name]
        for site in sites:
            votes = spec.placement.get(site)
            row.append(f"v={votes}" if votes else ".")
        row += [
            str(spec.total_votes),
            str(spec.effective_read_quorum()),
            str(spec.effective_write_quorum()),
        ]
        rows.append(row)
    lines = render_table(headers, rows)
    if catalog.fragments():
        lines.append("")
        lines.append("Fragments:")
        for fragment in catalog.fragments():
            lines.append(f"  {fragment.name}: {', '.join(fragment.items)}")
    return render_box("Database Replication Configuration", lines, width=100)


def render_manual_workload_panel(
    txns: list[Transaction], outcomes: Optional[dict[int, str]] = None
) -> str:
    """Figure A-2: the Manual Workload Generation panel."""
    outcomes = outcomes or {}
    headers = ["txn", "home site", "operations", "outcome"]
    rows = []
    for txn in txns:
        ops = " ".join(str(op) for op in txn.ops)
        rows.append(
            [f"T{txn.txn_id}", txn.home_site, ops, outcomes.get(txn.txn_id, "-")]
        )
    lines = render_table(headers, rows)
    lines += ["", "[ Add Operation ]  [ New Transaction ]  [ Submit All ]"]
    return render_box("Manual Workload Generation", lines, width=100)


def render_session_panel(
    statistics: OutputStatistics, recent: Optional[list[TxnRecord]] = None
) -> str:
    """Figure 5: transaction-processing output in a Rainbow session."""
    lines = [f"{label:<34s} {value}" for label, value in statistics.as_rows()]
    if recent:
        lines.append("")
        lines.append("Recent transactions:")
        headers = ["txn", "home", "status", "cause", "resp.time"]
        rows = []
        for record in recent:
            rows.append(
                [
                    f"T{record.txn_id}",
                    record.home_site,
                    record.status,
                    record.abort_cause or "-",
                    "-" if record.response_time is None else f"{record.response_time:.2f}",
                ]
            )
        lines += render_table(headers, rows)
    return render_box("Tx Processing Output", lines, width=96)


def render_sites_panel(sites) -> str:
    """Per-site status table (the Tx Processing menu's per-site view)."""
    headers = [
        "site", "host", "up", "home txns", "msgs", "reads", "prewrites",
        "commits", "aborts", "in-doubt",
    ]
    rows = []
    for site in sorted(sites, key=lambda s: s.name):
        rows.append(
            [
                site.name,
                site.host,
                "yes" if site.up else "DOWN",
                str(site.stats.home_txns_started),
                str(site.stats.messages_handled),
                str(site.stats.reads_served),
                str(site.stats.prewrites_served),
                str(site.stats.commits_applied),
                str(site.stats.aborts_applied),
                str(site.in_doubt_count()),
            ]
        )
    return render_box("Rainbow Sites", render_table(headers, rows), width=110)


def render_traffic_panel(
    network_stats,
    top: int = 10,
    *,
    round_trips_saved: int = 0,
    batched_ops: int = 0,
) -> str:
    """Message-traffic breakdown (part of the Display menu's output).

    Groups the per-type counters into the coarse categories (data access,
    commit protocol, name server, web tier) and lists the busiest types.
    ``round_trips_saved``/``batched_ops`` add message-economy lines when the
    optimizations fired (zero keeps the historical panel unchanged).
    """
    by_type = dict(network_stats.by_type)
    categories: dict[str, int] = {}
    for mtype, count in by_type.items():
        from repro.net.message import MessageType

        categories[MessageType.category(mtype)] = (
            categories.get(MessageType.category(mtype), 0) + count
        )
    lines = [
        f"Messages sent      : {network_stats.sent}",
        f"Delivered / dropped: {network_stats.delivered} / {network_stats.dropped}",
        f"Lost / duplicated  : {network_stats.lost_random} / {network_stats.duplicated}",
        f"Round trips        : {network_stats.round_trips}",
        f"RPC timeouts       : {network_stats.rpc_timeouts}",
    ]
    if round_trips_saved:
        lines.append(f"Round trips saved  : {round_trips_saved}")
    if batched_ops:
        lines.append(f"Batched accesses   : {batched_ops}")
    lines += [
        "",
        "By category:",
    ]
    for category, count in sorted(categories.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {category:<12s} {count}")
    lines.append("")
    lines.append(f"Busiest message types (top {top}):")
    for mtype, count in sorted(by_type.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"  {mtype:<16s} {count}")
    return render_box("Message Traffic", lines)


def render_functional_architecture() -> str:
    """Figure 1: the three tiers with their functional mapping."""
    lines = [
        "  [ GUI ]  -->  [ Web Middle Tier ]  -->  [ Rainbow Core ]",
        "",
        "  GUI            : configure, submit workload, inject faults,",
        "                   monitor execution (browser applet)",
        "  Web middle tier: NSRunnerlet SiteRunnerlet WLGlet PMlet (home)",
        "                   NSlet (name-server host), Sitelet (site hosts)",
        "  Rainbow core   : name server + Rainbow sites",
        "                   (RCP: ROWA/QC, CCP: 2PL/TSO/MVTO, ACP: 2PC/3PC)",
    ]
    return render_box("Rainbow architecture (functional mapping)", lines, width=80)


def render_physical_architecture(placement: list[tuple[str, list[str]]],
                                 sites_by_host: dict[str, list[str]],
                                 ns_host: str) -> str:
    """Figure 2: hosts, their ServletRunners/servlets, and core residents."""
    lines = []
    for host, servlets in placement:
        residents = []
        if host == ns_host:
            residents.append("name server")
        residents += [f"site {name}" for name in sites_by_host.get(host, [])]
        lines.append(f"{host}:")
        lines.append(f"  ServletRunner [{', '.join(servlets)}]")
        lines.append(f"  core: {', '.join(residents) if residents else '(none)'}")
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return render_box("Rainbow architecture (physical mapping)", lines, width=90)
