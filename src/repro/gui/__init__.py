"""GUI analog: the applet façade and ASCII panel renderers."""

from repro.gui.applet import GuiApplet, rainbow_url
from repro.gui.panels import (
    render_functional_architecture,
    render_login_panel,
    render_manual_workload_panel,
    render_physical_architecture,
    render_protocol_panel,
    render_replication_panel,
    render_session_panel,
    render_sites_panel,
    render_traffic_panel,
)

__all__ = [
    "GuiApplet",
    "rainbow_url",
    "render_functional_architecture",
    "render_login_panel",
    "render_manual_workload_panel",
    "render_physical_architecture",
    "render_protocol_panel",
    "render_replication_panel",
    "render_session_panel",
    "render_sites_panel",
    "render_traffic_panel",
]
