"""The Rainbow GUI applet, as a programmatic façade.

"Rainbow GUI is downloaded to the user host as a Java applet when the user
clicks a Web URL link to the Rainbow home … Rainbow GUI applet can only
communicate with the host it is downloaded from, i.e. the Rainbow home
host."

:class:`GuiApplet` reproduces both facts: it is created by *downloading*
from a home-host URL, and every request it sends is checked to target the
home host's ServletRunner only — reaching any other host goes through the
two-level servlet arrangement, exactly as in the paper.

Methods come in two flavours: generator methods (suffix-free, usable inside
simulation processes) and the synchronous :meth:`call` helper that drives
the simulator until the reply arrives (for scripts and notebooks).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import AuthorizationError, NetworkError, RpcTimeout, WebTierError
from repro.net.message import MessageType
from repro.web.requests import WebRequest, WebResponse
from repro.web.tier import RainbowWebTier

__all__ = ["GuiApplet", "rainbow_url"]

_applet_counter = itertools.count(1)


def rainbow_url(home_host: str, port: int = 8080) -> str:
    """The well-known Rainbow URL of the paper's §4.1."""
    return f"http://{home_host}:{port}/RainbowDemo.html"


class GuiApplet:
    """A downloaded Rainbow GUI instance bound to one user host."""

    def __init__(self, tier: RainbowWebTier, user_host: str = "user-host"):
        self.tier = tier
        self.sim = tier.instance.sim
        self.user_host = user_host
        self.home_address = tier.home_address
        self.url = rainbow_url(tier.home_host)
        self.endpoint = tier.instance.network.endpoint(
            user_host, f"applet{next(_applet_counter)}"
        )
        self.token: Optional[str] = None
        self.role: Optional[str] = None

    # -- transport (generator) -----------------------------------------------------
    def request(self, servlet: str, action: str, args: Optional[dict] = None):
        """Send one request to the Rainbow home (generator → WebResponse).

        The applet-only-talks-to-home restriction is enforced here: there
        is no way to address any other host from the GUI.
        """
        payload = WebRequest(
            servlet=servlet, action=action, args=args or {}, token=self.token
        ).to_payload()
        try:
            reply = yield self.endpoint.request(
                self.home_address, MessageType.WEB_REQUEST, payload, timeout=120.0
            )
        except (RpcTimeout, NetworkError) as failure:
            return WebResponse.failure(f"Rainbow home unreachable: {failure}")
        return WebResponse.from_payload(reply.payload)

    def call(self, servlet: str, action: str, args: Optional[dict] = None) -> WebResponse:
        """Synchronous convenience: drive the simulation until the reply.

        Only usable from *outside* the simulation (scripts, tests); inside a
        process use :meth:`request` with ``yield from``.
        """
        process = self.sim.process(
            self.request(servlet, action, args), name="applet:call"
        )
        return self.sim.run(until=process)

    # -- session ---------------------------------------------------------------------
    def download_page(self) -> WebResponse:
        """Fetch RainbowDemo.html (the downloading applet of Figure 3)."""
        return self.call("auth", "download_page")

    def login(self, user: str, password: str) -> str:
        """Authenticate; returns the role ("admin" or "student")."""
        response = self.call("auth", "login", {"user": user, "password": password})
        if not response.ok:
            raise AuthorizationError(response.error)
        self.token = response.data["token"]
        self.role = response.data["role"]
        return self.role

    def logout(self) -> None:
        """End the GUI session."""
        self.call("auth", "logout")
        self.token = None
        self.role = None

    # -- menus (synchronous wrappers) ----------------------------------------------------
    def _checked(self, servlet: str, action: str, args: Optional[dict] = None) -> Any:
        response = self.call(servlet, action, args)
        if not response.ok:
            raise WebTierError(f"{servlet}.{action}: {response.error}")
        return response.data

    def lookup_sites(self) -> list[dict]:
        """Name-server site registry (Administration → Name Server menu)."""
        return self._checked("nsrunnerlet", "lookup_sites")["sites"]

    def get_catalog(self) -> dict:
        """The fragmentation/replication/distribution schema."""
        return self._checked("nsrunnerlet", "get_catalog")["catalog"]

    def ns_status(self) -> dict:
        """Name-server health and load."""
        return self._checked("nsrunnerlet", "ns_status")

    def save_configuration(self, path) -> dict:
        """Download the instance configuration and save it for reuse.

        Admin-only; the returned dict is also written to ``path`` as JSON
        (loadable with :meth:`repro.core.RainbowConfig.load`).
        """
        import json
        from pathlib import Path

        data = self._checked("nsrunnerlet", "get_config")["config"]
        Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))
        return data

    def site_stats(self, site: str) -> dict:
        """One site's counters (Tx Processing menu, per-site view)."""
        return self._checked("siterunnerlet", "site_stats", {"site": site})

    def crash_site(self, site: str) -> dict:
        """Inject a site failure (the GUI's failure-injection control)."""
        return self._checked("siterunnerlet", "crash_site", {"site": site})

    def recover_site(self, site: str) -> dict:
        """Inject a site recovery."""
        return self._checked("siterunnerlet", "recover_site", {"site": site})

    def submit_transaction(self, txn) -> dict:
        """Manual workload generation: submit one composed transaction."""
        return self._checked("wlglet", "submit_txn", {"txn": txn})

    def start_workload(self, spec) -> int:
        """Simulated workload generation: start a WorkloadSpec run."""
        return self._checked("wlglet", "start_workload", {"spec": spec})["workload_id"]

    def workload_status(self, workload_id: int) -> dict:
        """Progress of a started workload."""
        return self._checked("wlglet", "workload_status", {"workload_id": workload_id})

    def statistics(self) -> dict:
        """The §3 output statistics (Tx Processing menu)."""
        return self._checked("pmlet", "statistics")

    def site_statistics(self) -> dict:
        """Per-site statistics gathered through the Sitelets."""
        return self._checked("pmlet", "site_statistics")

    def timeseries(self) -> dict:
        """The progress monitor's sampled time series (Display menu)."""
        return self._checked("pmlet", "timeseries")
