"""Exception hierarchy for the Rainbow reproduction.

Every error raised by the library derives from :class:`RainbowError` so that
callers can catch library failures without catching programming mistakes.
Protocol-level rejections (the events that abort a transaction) carry the
protocol family responsible, which feeds the per-cause abort statistics the
paper's progress monitor reports.
"""

from __future__ import annotations


class RainbowError(Exception):
    """Base class for all errors raised by the Rainbow library."""


class ConfigurationError(RainbowError):
    """An invalid or inconsistent Rainbow configuration was supplied."""


class SimulationError(RainbowError):
    """The discrete-event simulation kernel was used incorrectly."""


class NetworkError(RainbowError):
    """A network-level failure (unknown endpoint, closed network)."""


class RpcTimeout(NetworkError):
    """A request/reply exchange did not complete within its timeout."""

    def __init__(self, message: str = "rpc timed out", *, destination: str | None = None):
        super().__init__(message)
        self.destination = destination


class SiteDownError(NetworkError):
    """An operation was attempted on a crashed site."""


class CatalogError(RainbowError):
    """The name-server catalog was queried for unknown items or sites."""


class TransactionAborted(RainbowError):
    """A transaction was aborted.

    ``cause`` records which protocol family is responsible, matching the
    paper's abort-rate breakdown: ``"RCP"`` (replication control could not
    assemble the required copies/quorum), ``"CCP"`` (concurrency control
    rejected or deadlock victim), ``"ACP"`` (atomic commitment voted no or
    timed out), or ``"SYSTEM"`` (injected failure outside the protocols).
    """

    def __init__(self, cause: str, detail: str = ""):
        super().__init__(f"aborted [{cause}] {detail}".rstrip())
        self.cause = cause
        self.detail = detail


class ReplicationAbort(TransactionAborted):
    """Replication control (RCP) could not complete an operation."""

    def __init__(self, detail: str = ""):
        super().__init__("RCP", detail)


class ConcurrencyAbort(TransactionAborted):
    """Concurrency control (CCP) rejected an operation or chose a victim."""

    def __init__(self, detail: str = ""):
        super().__init__("CCP", detail)


class CommitAbort(TransactionAborted):
    """Atomic commitment (ACP) aborted the transaction."""

    def __init__(self, detail: str = ""):
        super().__init__("ACP", detail)


class SystemAbort(TransactionAborted):
    """The transaction died with its site or another injected failure."""

    def __init__(self, detail: str = ""):
        super().__init__("SYSTEM", detail)


class ProtocolError(RainbowError):
    """A protocol implementation violated its contract."""


class WorkloadError(RainbowError):
    """A workload specification was invalid."""


class WebTierError(RainbowError):
    """The web middle tier refused or could not route a request."""


class AuthorizationError(WebTierError):
    """A GUI request failed Rainbow's access authorisation."""
