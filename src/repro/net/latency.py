"""Pluggable link-latency models for the network simulator.

A latency model maps (source host, destination host, message size) to a
delivery delay in simulated time units.  The Rainbow GUI lets users
"configure a network simulation"; these classes are that configuration
surface.  All randomness comes from the stream the :class:`~repro.net.network.Network`
owns, so latency draws are reproducible and isolated from workload draws.
"""

from __future__ import annotations

import random
from typing import Protocol

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LanWanLatency",
    "LinkOverrideLatency",
]


class LatencyModel(Protocol):
    """Anything that can produce a per-message delivery delay."""

    def delay(self, src_host: str, dst_host: str, size: int, rng: random.Random) -> float:
        """Return the delivery delay for one message."""
        ...

    def expected_delay(self, src_host: str, dst_host: str, size: int = 1) -> float:
        """Expected delay of :meth:`delay` (no randomness consumed).

        Latency-aware routing ranks copy holders by this value; it must
        never draw from the network's random stream, so routing decisions
        cannot perturb the message-delay sequence.
        """
        ...


class ConstantLatency:
    """Every message takes exactly ``value`` time units (default 1)."""

    def __init__(self, value: float = 1.0):
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        self.value = value

    def delay(self, src_host: str, dst_host: str, size: int, rng: random.Random) -> float:
        return self.value

    def expected_delay(self, src_host: str, dst_host: str, size: int = 1) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value})"


class UniformLatency:
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low}, {high}")
        self.low = low
        self.high = high

    def delay(self, src_host: str, dst_host: str, size: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def expected_delay(self, src_host: str, dst_host: str, size: int = 1) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency:
    """Exponential latency with the given ``mean`` plus a fixed ``floor``.

    The floor models propagation delay; the exponential part models queueing.
    """

    def __init__(self, mean: float = 1.0, floor: float = 0.1):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if floor < 0:
            raise ValueError(f"floor must be non-negative, got {floor}")
        self.mean = mean
        self.floor = floor

    def delay(self, src_host: str, dst_host: str, size: int, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def expected_delay(self, src_host: str, dst_host: str, size: int = 1) -> float:
        return self.floor + self.mean

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean}, floor={self.floor})"


class LanWanLatency:
    """Two-level topology: fast within a host, slower between hosts.

    Mirrors the paper's deployment, where several Rainbow sites may share one
    physical host (they "share the same Sitelet") and inter-host messages
    cross the real LAN.
    """

    def __init__(self, local: float = 0.05, remote_low: float = 0.8, remote_high: float = 1.2):
        if local < 0 or remote_low < 0 or remote_low > remote_high:
            raise ValueError("invalid LanWanLatency parameters")
        self.local = local
        self.remote_low = remote_low
        self.remote_high = remote_high

    def delay(self, src_host: str, dst_host: str, size: int, rng: random.Random) -> float:
        if src_host == dst_host:
            return self.local
        return rng.uniform(self.remote_low, self.remote_high)

    def expected_delay(self, src_host: str, dst_host: str, size: int = 1) -> float:
        if src_host == dst_host:
            return self.local
        return (self.remote_low + self.remote_high) / 2.0

    def __repr__(self) -> str:
        return (
            f"LanWanLatency(local={self.local}, "
            f"remote=[{self.remote_low}, {self.remote_high}])"
        )


class LinkOverrideLatency:
    """Per-link latency overrides on top of a base model.

    Models asymmetric topologies (one site behind a slow WAN link, a fast
    pair of co-located hosts) without giving up the base model elsewhere:

    >>> model = LinkOverrideLatency(ConstantLatency(1.0),
    ...                             {("hA", "hB"): 10.0})

    Overrides are symmetric (``(a, b)`` covers both directions) and may be
    floats (constant) or full latency models.
    """

    def __init__(self, base: "LatencyModel", overrides: dict):
        self.base = base
        self._overrides = {}
        for pair, value in overrides.items():
            key = frozenset(pair)
            if len(key) not in (1, 2):
                raise ValueError(f"link override needs a host pair, got {pair!r}")
            self._overrides[key] = value

    def delay(self, src_host: str, dst_host: str, size: int, rng: random.Random) -> float:
        override = self._overrides.get(frozenset((src_host, dst_host)))
        if override is None:
            return self.base.delay(src_host, dst_host, size, rng)
        if isinstance(override, (int, float)):
            return float(override)
        return override.delay(src_host, dst_host, size, rng)

    def expected_delay(self, src_host: str, dst_host: str, size: int = 1) -> float:
        override = self._overrides.get(frozenset((src_host, dst_host)))
        if override is None:
            return self.base.expected_delay(src_host, dst_host, size)
        if isinstance(override, (int, float)):
            return float(override)
        return override.expected_delay(src_host, dst_host, size)

    def __repr__(self) -> str:
        return f"LinkOverrideLatency(base={self.base!r}, overrides={len(self._overrides)})"
