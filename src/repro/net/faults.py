"""Fault and recovery injection.

The Rainbow GUI lets the user "inject network and site failures and
recoveries"; this module is that facility.  Faults can be *scheduled*
(deterministic classroom scenarios: "crash site 2 at t=40, recover at t=90")
or *stochastic* (experiments: each site fails with exponential MTTF and
recovers after exponential MTTR).  Every injected event is recorded so
sessions can report exactly which failures a run experienced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.sim.kernel import Simulator

__all__ = ["Crashable", "FaultEvent", "FaultInjector", "FaultSchedule"]


class Crashable(Protocol):
    """Anything the injector can crash and recover (sites, the name server)."""

    name: str

    def crash(self) -> None:
        """Stop the component, losing volatile state."""
        ...

    def recover(self) -> None:
        """Restart the component from its durable state."""
        ...


@dataclass
class FaultEvent:
    """One injected fault or recovery, as recorded in the session log."""

    time: float
    kind: str  # "crash" | "recover" | "partition" | "heal" | "link_cut" |
    #            "link_restore" | "flaky_link" | "flaky_clear"
    target: str
    detail: str = ""


@dataclass
class FaultSchedule:
    """A declarative fault plan that can be stored inside a RainbowConfig.

    ``link_cuts`` entries are ``(host_a, host_b, cut_at, restore_at)``
    (``restore_at`` may be ``None`` for a permanent cut); ``flaky_links``
    entries are ``(host_a, host_b, start, end, loss, duplicate)`` — the
    link's probabilistic loss/duplication window.
    """

    crashes: list[tuple[str, float]] = field(default_factory=list)
    recoveries: list[tuple[str, float]] = field(default_factory=list)
    partitions: list[tuple[float, list[list[str]]]] = field(default_factory=list)
    heals: list[float] = field(default_factory=list)
    link_cuts: list[tuple[str, str, float, Optional[float]]] = field(default_factory=list)
    flaky_links: list[tuple[str, str, float, float, float, float]] = field(
        default_factory=list
    )

    def is_empty(self) -> bool:
        """True when the schedule injects nothing at all."""
        return not (
            self.crashes
            or self.recoveries
            or self.partitions
            or self.heals
            or self.link_cuts
            or self.flaky_links
        )


class FaultInjector:
    """Applies scheduled and stochastic faults to sites and the network."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.log: list[FaultEvent] = []
        self._targets: dict[str, Crashable] = {}

    # -- target registry -----------------------------------------------------
    def register(self, target: Crashable) -> None:
        """Make ``target`` known to the injector under ``target.name``."""
        if target.name in self._targets:
            raise ConfigurationError(f"duplicate fault target {target.name!r}")
        self._targets[target.name] = target

    def target(self, name: str) -> Crashable:
        try:
            return self._targets[name]
        except KeyError:
            raise ConfigurationError(f"unknown fault target {name!r}") from None

    def targets(self) -> list[str]:
        """Registered target names (sorted for deterministic iteration)."""
        return sorted(self._targets)

    # -- immediate actions ------------------------------------------------------
    def crash_now(self, name: str) -> None:
        """Crash a registered target at the current instant."""
        self.target(name).crash()
        self.log.append(FaultEvent(self.sim.now, "crash", name))

    def recover_now(self, name: str) -> None:
        """Recover a registered target at the current instant."""
        self.target(name).recover()
        self.log.append(FaultEvent(self.sim.now, "recover", name))

    # -- scheduled faults -----------------------------------------------------
    def schedule_crash(self, name: str, at: float) -> None:
        """Crash target ``name`` at simulated time ``at``."""
        self._at(at, lambda: self.crash_now(name))

    def schedule_recovery(self, name: str, at: float) -> None:
        """Recover target ``name`` at simulated time ``at``."""
        self._at(at, lambda: self.recover_now(name))

    def schedule_partition(self, groups: list[list[str]], at: float) -> None:
        """Partition hosts into ``groups`` at time ``at``."""

        def _apply() -> None:
            self.network.partition(groups)
            self.log.append(
                FaultEvent(self.sim.now, "partition", "network", detail=repr(groups))
            )

        self._at(at, _apply)

    def schedule_heal(self, at: float) -> None:
        """Heal any partition at time ``at``."""

        def _apply() -> None:
            self.network.heal_partition()
            self.log.append(FaultEvent(self.sim.now, "heal", "network"))

        self._at(at, _apply)

    def schedule_link_cut(self, host_a: str, host_b: str, at: float, restore_at: float | None = None) -> None:
        """Cut the ``host_a``–``host_b`` link at ``at`` (optionally restore)."""

        def _cut() -> None:
            self.network.cut_link(host_a, host_b)
            self.log.append(
                FaultEvent(self.sim.now, "link_cut", f"{host_a}~{host_b}")
            )

        self._at(at, _cut)
        if restore_at is not None:
            if restore_at <= at:
                raise ConfigurationError("link restore must come after the cut")

            def _restore() -> None:
                self.network.restore_link(host_a, host_b)
                self.log.append(
                    FaultEvent(self.sim.now, "link_restore", f"{host_a}~{host_b}")
                )

            self._at(restore_at, _restore)

    def schedule_flaky_link(
        self,
        host_a: str,
        host_b: str,
        start: float,
        end: float,
        loss: float = 0.0,
        duplicate: float = 0.0,
    ) -> None:
        """Make the ``host_a``–``host_b`` link lossy/duplicating in a window."""
        if end <= start:
            raise ConfigurationError("flaky-link window must end after it starts")

        def _start() -> None:
            self.network.set_link_flakiness(host_a, host_b, loss, duplicate)
            self.log.append(
                FaultEvent(
                    self.sim.now,
                    "flaky_link",
                    f"{host_a}~{host_b}",
                    detail=f"loss={loss} dup={duplicate}",
                )
            )

        def _clear() -> None:
            self.network.clear_link_flakiness(host_a, host_b)
            self.log.append(
                FaultEvent(self.sim.now, "flaky_clear", f"{host_a}~{host_b}")
            )

        self._at(start, _start)
        self._at(end, _clear)

    def apply_schedule(self, schedule: FaultSchedule) -> None:
        """Validate and install every event of a :class:`FaultSchedule`."""
        self.validate_schedule(schedule)
        for name, at in schedule.crashes:
            self.schedule_crash(name, at)
        for name, at in schedule.recoveries:
            self.schedule_recovery(name, at)
        for at, groups in schedule.partitions:
            self.schedule_partition(groups, at)
        for at in schedule.heals:
            self.schedule_heal(at)
        for host_a, host_b, at, restore_at in schedule.link_cuts:
            self.schedule_link_cut(host_a, host_b, at, restore_at)
        for host_a, host_b, start, end, loss, duplicate in schedule.flaky_links:
            self.schedule_flaky_link(host_a, host_b, start, end, loss, duplicate)

    def validate_schedule(self, schedule: FaultSchedule) -> None:
        """Reject schedules that would silently produce a confusing run.

        Checks, each raising :class:`ConfigurationError` naming the
        offending entry:

        * crash/recovery targets must be registered with the injector;
        * every recovery must come strictly *after* an unmatched crash of
          the same target (a recovery at or before its crash is a typo);
        * partition groups, link cuts, and flaky links may only name hosts
          that actually exist on the network, and no host may appear in two
          groups of the same partition;
        * windowed events (flaky links) must have positive duration and
          probabilities in ``[0, 1)``.
        """
        for name, at in schedule.crashes + schedule.recoveries:
            if name not in self._targets:
                raise ConfigurationError(
                    f"fault schedule names unknown target {name!r} (at t={at})"
                )
        by_target: dict[str, list[tuple[float, int]]] = {}
        for name, at in schedule.crashes:
            by_target.setdefault(name, [])
        for name, at in schedule.recoveries:
            by_target.setdefault(name, [])
        for name in by_target:
            crashes = sorted(at for n, at in schedule.crashes if n == name)
            recoveries = sorted(at for n, at in schedule.recoveries if n == name)
            if len(recoveries) > len(crashes):
                raise ConfigurationError(
                    f"{name!r} has {len(recoveries)} recoveries for "
                    f"{len(crashes)} crashes"
                )
            for crash_at, recover_at in zip(crashes, recoveries):
                if recover_at <= crash_at:
                    raise ConfigurationError(
                        f"recovery of {name!r} at t={recover_at} is not after "
                        f"its crash at t={crash_at}"
                    )
        known_hosts = set(self.network.hosts())
        for at, groups in schedule.partitions:
            seen: set[str] = set()
            for group in groups:
                for host in group:
                    if host not in known_hosts:
                        raise ConfigurationError(
                            f"partition at t={at} names unknown host {host!r} "
                            f"(known: {sorted(known_hosts)})"
                        )
                    if host in seen:
                        raise ConfigurationError(
                            f"partition at t={at} lists host {host!r} in two groups"
                        )
                    seen.add(host)
        for host_a, host_b, at, restore_at in schedule.link_cuts:
            for host in (host_a, host_b):
                if host not in known_hosts:
                    raise ConfigurationError(
                        f"link cut {host_a!r}~{host_b!r} at t={at} names "
                        f"unknown host {host!r}"
                    )
        for host_a, host_b, start, end, loss, duplicate in schedule.flaky_links:
            for host in (host_a, host_b):
                if host not in known_hosts:
                    raise ConfigurationError(
                        f"flaky link {host_a!r}~{host_b!r} at t={start} names "
                        f"unknown host {host!r}"
                    )
            if end <= start:
                raise ConfigurationError(
                    f"flaky link {host_a!r}~{host_b!r}: window [{start}, {end}] "
                    "must end after it starts"
                )
            for rate, label in ((loss, "loss"), (duplicate, "duplicate")):
                if not 0.0 <= rate < 1.0:
                    raise ConfigurationError(
                        f"flaky link {host_a!r}~{host_b!r}: {label} rate {rate} "
                        "must be in [0, 1)"
                    )

    # -- stochastic faults ---------------------------------------------------
    def random_crash_recover(
        self,
        names: Iterable[str],
        mttf: float,
        mttr: float,
        rng: random.Random,
        until: float | None = None,
    ) -> None:
        """Run independent crash/recover cycles on each named target.

        Times to failure and to repair are exponential with means ``mttf``
        and ``mttr``.  ``until`` bounds the injection horizon (faults keep
        firing forever otherwise, which keeps the simulation alive).
        """
        if mttf <= 0 or mttr <= 0:
            raise ConfigurationError("mttf and mttr must be positive")
        for name in names:
            self.target(name)  # validate early
            self.sim.process(
                self._crash_recover_loop(name, mttf, mttr, rng, until),
                name=f"faults:{name}",
            )

    def _crash_recover_loop(self, name, mttf, mttr, rng, until):
        while True:
            ttf = rng.expovariate(1.0 / mttf)
            if until is not None and self.sim.now + ttf >= until:
                return
            yield self.sim.timeout(ttf)
            self.crash_now(name)
            ttr = rng.expovariate(1.0 / mttr)
            if until is not None and self.sim.now + ttr >= until:
                self.recover_now(name)  # leave the system healed at horizon
                return
            yield self.sim.timeout(ttr)
            self.recover_now(name)

    # -- helpers -----------------------------------------------------------------
    def _at(self, at: float, fn) -> None:
        """Schedule ``fn`` at absolute time ``at``.

        Times already in the past fire immediately: fault plans are usually
        authored against t=0 and installed after bring-up has consumed a
        little simulated time.
        """
        self.sim.call_later(max(at - self.sim.now, 0.0), fn)

    # -- reporting -----------------------------------------------------------------
    def crash_count(self) -> int:
        """Number of crash events injected so far."""
        return sum(1 for event in self.log if event.kind == "crash")

    def downtime_report(self) -> dict[str, float]:
        """Total downtime per target, using the injection log.

        A target still down at the current instant accrues downtime up to
        ``sim.now``.
        """
        down_since: dict[str, float] = {}
        downtime: dict[str, float] = {}
        for event in self.log:
            if event.kind == "crash" and event.target not in down_since:
                down_since[event.target] = event.time
            elif event.kind == "recover" and event.target in down_since:
                start = down_since.pop(event.target)
                downtime[event.target] = downtime.get(event.target, 0.0) + (event.time - start)
        for target, start in down_since.items():
            downtime[target] = downtime.get(target, 0.0) + (self.sim.now - start)
        return downtime
