"""The simulated network: endpoints, delivery, partitions, accounting.

This is the reproduction of Rainbow's network simulator.  Components obtain
an :class:`Endpoint` (addressed ``host/name``), exchange :class:`Message`
objects through :meth:`Network.send`, and block on :meth:`Endpoint.receive`.
Request/reply exchanges go through :meth:`Endpoint.request`, which handles
correlation ids, timeouts, and round-trip accounting.

Failure semantics (driven by the fault injector):

* a *down* endpoint neither receives nor keeps queued messages — in-flight
  and queued messages to it are lost, like a crashed Java process;
* a *partition* silently drops messages crossing partition boundaries;
* an explicitly cut *link* drops messages in both directions;
* an optional random *loss rate* models an unreliable transport;
* a *flaky link* overrides the loss rate for one host pair and may also
  *duplicate* messages (an independent delivery with its own latency draw),
  stressing the idempotence of decision delivery and WAL replay.

Every send is accounted (by type, by category, delivered/dropped) so the
progress monitor can report "total number of messages generated per time
unit" and "round trip messages" exactly as the paper lists.
"""

from __future__ import annotations

import itertools
import random
from collections import Counter, deque
from typing import Callable, Iterable, Optional

from repro.errors import NetworkError, RpcTimeout, SimulationError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.sim.kernel import Event, Simulator

__all__ = ["Network", "Endpoint", "NetworkStats"]


class NetworkStats:
    """Message accounting maintained by the network."""

    def __init__(self):
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.round_trips = 0
        self.rpc_timeouts = 0
        self.by_type: Counter[str] = Counter()
        self.dropped_by_type: Counter[str] = Counter()
        # Unreliable-transport accounting: messages dropped by the random
        # loss rate (a subset of ``dropped``) and extra copies injected by
        # link duplication (never counted in ``sent``).
        self.lost_random = 0
        self.lost_by_type: Counter[str] = Counter()
        self.duplicated = 0
        self.duplicated_by_type: Counter[str] = Counter()
        self.bytes_sent = 0
        self.queueing_delay_total = 0.0

    def snapshot(self) -> dict:
        """A plain-dict copy for monitors and panels."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "round_trips": self.round_trips,
            "rpc_timeouts": self.rpc_timeouts,
            "by_type": dict(self.by_type),
            "dropped_by_type": dict(self.dropped_by_type),
            "lost_random": self.lost_random,
            "lost_by_type": dict(self.lost_by_type),
            "duplicated": self.duplicated,
            "duplicated_by_type": dict(self.duplicated_by_type),
            "bytes_sent": self.bytes_sent,
            "queueing_delay_total": self.queueing_delay_total,
        }


class Endpoint:
    """A named mailbox attached to the network.

    Addresses have the form ``host/name`` (e.g. ``"hostA/site1"``); the host
    part drives the latency model and partitioning, mirroring Rainbow's
    "several sites may share one physical host" deployment.
    """

    def __init__(self, network: "Network", host: str, name: str):
        self.network = network
        self.host = host
        self.name = name
        self.address = f"{host}/{name}"
        self.up = True
        self._queue: deque[Message] = deque()
        self._receivers: deque[Event] = deque()
        self._pending_rpcs: dict[int, Event] = {}
        # Receive events are created per message; format their label once.
        self._recv_name = f"recv:{self.address}"

    # -- lifecycle ----------------------------------------------------------
    def set_down(self) -> None:
        """Crash the endpoint: lose queued messages, wake receivers with errors.

        Pending RPCs issued *by* this endpoint are failed too — the caller
        process died with its site, and Rainbow counts the resulting
        half-done transactions as orphans.
        """
        self.up = False
        self._queue.clear()
        receivers, self._receivers = self._receivers, deque()
        for event in receivers:
            if not event.triggered:
                event.fail(NetworkError(f"endpoint {self.address} went down"))
        pending, self._pending_rpcs = self._pending_rpcs, {}
        for event in pending.values():
            if not event.triggered:
                event.fail(NetworkError(f"endpoint {self.address} went down"))

    def set_up(self) -> None:
        """Recover the endpoint with an empty mailbox."""
        self.up = True

    # -- receive path ---------------------------------------------------------
    def receive(self) -> Event:
        """Event that fires with the next incoming request message."""
        event = self.network.sim.event(name=self._recv_name)
        if self._queue:
            event.succeed(self._queue.popleft())
        else:
            self._receivers.append(event)
        return event

    def pending_count(self) -> int:
        """Number of queued (undelivered-to-process) messages."""
        return len(self._queue)

    def _deliver(self, msg: Message) -> None:
        if not self.up:
            self.network._account_drop(msg, reason="endpoint down")
            return
        self.network.stats.delivered += 1
        if msg.reply_to is not None and msg.reply_to in self._pending_rpcs:
            event = self._pending_rpcs.pop(msg.reply_to)
            self.network.stats.round_trips += 1
            if not event.triggered:
                event.succeed(msg)
            return
        while self._receivers:
            event = self._receivers.popleft()
            if not event.triggered:
                event.succeed(msg)
                return
        self._queue.append(msg)

    # -- send path -------------------------------------------------------------
    def send(
        self,
        dst: str,
        mtype: str,
        payload=None,
        *,
        reply_to: Optional[int] = None,
        txn_id: Optional[int] = None,
        size: int = 1,
        span: Optional[str] = None,
    ) -> Message:
        """Fire-and-forget send.  Returns the message (for correlation)."""
        msg = Message(
            src=self.address,
            dst=dst,
            mtype=mtype,
            payload=payload,
            reply_to=reply_to,
            txn_id=txn_id,
            size=size,
            span=span,
        )
        self.network.send(msg)
        return msg

    def reply(self, request: Message, mtype: str, payload=None, size: int = 1) -> Message:
        """Send the reply to ``request``."""
        msg = request.reply(mtype, payload, size=size)
        self.network.send(msg)
        return msg

    def request(
        self,
        dst: str,
        mtype: str,
        payload=None,
        *,
        timeout: float = 50.0,
        txn_id: Optional[int] = None,
        size: int = 1,
        span: Optional[str] = None,
    ) -> Event:
        """Request/reply exchange with a timeout.

        Returns an event that succeeds with the reply :class:`Message` or
        fails with :class:`RpcTimeout`.  A crashed destination simply never
        answers — exactly the failure mode 2PC's timeout actions exist for.
        """
        if timeout <= 0:
            raise SimulationError(f"rpc timeout must be positive, got {timeout}")
        result = self.network.sim.event(name=mtype)
        msg = self.send(dst, mtype, payload, txn_id=txn_id, size=size, span=span)
        self._pending_rpcs[msg.msg_id] = result

        def _expire() -> None:
            pending = self._pending_rpcs.pop(msg.msg_id, None)
            if pending is not None and not pending.triggered:
                self.network.stats.rpc_timeouts += 1
                pending.fail(RpcTimeout(f"{mtype} to {dst} timed out", destination=dst))

        self.network.sim.defer(timeout, _expire)
        return result


class Network:
    """Simulated message-passing network with latency, partitions and loss."""

    #: Counter decorrelating the default RNGs of networks built without an
    #: explicit ``rng``/``seed``: every instantiation draws a fresh seed, so
    #: two networks in one process never share loss/latency decisions.
    _default_seed_counter = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        loss_rate: float = 0.0,
        host_service_time: float = 0.0,
        seed: int | None = None,
        duplication_rate: float = 0.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if not 0.0 <= duplication_rate < 1.0:
            raise NetworkError(
                f"duplication_rate must be in [0, 1), got {duplication_rate}"
            )
        if host_service_time < 0:
            raise NetworkError("host_service_time must be >= 0")
        if rng is not None and seed is not None:
            raise NetworkError("pass either rng or seed, not both")
        self.sim = sim
        self.latency = latency or ConstantLatency(1.0)
        if rng is None:
            # No caller-supplied stream: derive a per-instance seed instead
            # of the old shared ``Random(0)`` fallback, which silently
            # correlated the loss decisions of every network in a process.
            if seed is None:
                seed = 0x52414E42 + next(Network._default_seed_counter)
            rng = random.Random(seed)
        self.rng = rng
        self.loss_rate = loss_rate
        self.duplication_rate = duplication_rate
        # Receiver-side serialisation: each host processes incoming
        # messages one at a time, ``host_service_time * size`` each, so a
        # burst to one host queues up.  0 disables queueing (infinite
        # capacity), which is the default.
        self.host_service_time = host_service_time
        self._busy_until: dict[str, float] = {}
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        self._partition_of: dict[str, int] = {}
        self._cut_links: set[frozenset[str]] = set()
        #: host-pair -> (loss, duplicate) probabilities overriding the
        #: network-wide rates for messages crossing that link.
        self._flaky_links: dict[frozenset[str], tuple[float, float]] = {}
        self._observers: list[Callable[[Message, str], None]] = []
        #: Span tracer (``repro.obs.SpanTracer``) set by
        #: ``RainbowInstance.enable_tracing``; None keeps sends hook-free.
        self.tracer = None

    # -- registration -------------------------------------------------------
    def endpoint(self, host: str, name: str) -> Endpoint:
        """Create and register an endpoint; addresses must be unique."""
        endpoint = Endpoint(self, host, name)
        if endpoint.address in self._endpoints:
            raise NetworkError(f"duplicate endpoint address {endpoint.address}")
        self._endpoints[endpoint.address] = endpoint
        return endpoint

    def lookup(self, address: str) -> Endpoint:
        """Return the endpoint registered at ``address``."""
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"unknown endpoint {address!r}") from None

    def addresses(self) -> list[str]:
        """All registered addresses (sorted, for deterministic iteration)."""
        return sorted(self._endpoints)

    def hosts(self) -> list[str]:
        """All hosts with at least one endpoint (sorted)."""
        return sorted({endpoint.host for endpoint in self._endpoints.values()})

    def add_observer(self, observer: Callable[[Message, str], None]) -> None:
        """Register a callback ``observer(msg, outcome)`` for every send.

        ``outcome`` is ``"delivered"`` (scheduled for delivery) or the drop
        reason.  The progress monitor uses this for time-series sampling.
        """
        self._observers.append(observer)

    # -- fault surface --------------------------------------------------------
    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition *hosts* into groups; cross-group messages are dropped.

        Hosts not mentioned in any group form an implicit final group.
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for host in group:
                if host in self._partition_of:
                    raise NetworkError(f"host {host!r} appears in two partition groups")
                self._partition_of[host] = index

    def heal_partition(self) -> None:
        """Remove any active partition."""
        self._partition_of = {}

    def cut_link(self, host_a: str, host_b: str) -> None:
        """Drop all messages between two hosts (both directions)."""
        self._cut_links.add(frozenset((host_a, host_b)))

    def restore_link(self, host_a: str, host_b: str) -> None:
        """Undo :meth:`cut_link` for the pair."""
        self._cut_links.discard(frozenset((host_a, host_b)))

    def restore_all_links(self) -> None:
        """Undo every :meth:`cut_link` (the chaos engine's heal step)."""
        self._cut_links.clear()

    def set_link_flakiness(
        self, host_a: str, host_b: str, loss: float = 0.0, duplicate: float = 0.0
    ) -> None:
        """Make the ``host_a``–``host_b`` link unreliable (both directions).

        ``loss`` replaces the network-wide ``loss_rate`` for messages
        crossing the link; ``duplicate`` is the probability that a message
        surviving loss is delivered *twice* (the second copy draws its own
        latency, so duplicates can arrive out of order).  Same-host traffic
        never crosses a link and is unaffected.
        """
        if not 0.0 <= loss < 1.0:
            raise NetworkError(f"link loss must be in [0, 1), got {loss}")
        if not 0.0 <= duplicate < 1.0:
            raise NetworkError(f"link duplicate must be in [0, 1), got {duplicate}")
        if host_a == host_b:
            raise NetworkError("a flaky link needs two distinct hosts")
        self._flaky_links[frozenset((host_a, host_b))] = (loss, duplicate)

    def clear_link_flakiness(self, host_a: str, host_b: str) -> None:
        """Undo :meth:`set_link_flakiness` for the pair."""
        self._flaky_links.pop(frozenset((host_a, host_b)), None)

    def clear_flaky_links(self) -> None:
        """Undo every :meth:`set_link_flakiness`."""
        self._flaky_links.clear()

    def _hosts_connected(self, src_host: str, dst_host: str) -> bool:
        if frozenset((src_host, dst_host)) in self._cut_links and src_host != dst_host:
            return False
        if self._partition_of:
            default = max(self._partition_of.values(), default=-1) + 1
            src_group = self._partition_of.get(src_host, default)
            dst_group = self._partition_of.get(dst_host, default)
            return src_group == dst_group
        return True

    # -- transmission -----------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Submit a message for (possibly unsuccessful) delivery."""
        sim = self.sim
        stats = self.stats
        endpoints = self._endpoints
        msg.sent_at = sim._now
        stats.sent += 1
        stats.by_type[msg.mtype] += 1
        stats.bytes_sent += msg.size

        dst = endpoints.get(msg.dst)
        src = endpoints.get(msg.src)
        if dst is None:
            self._account_drop(msg, reason="unknown destination")
            return
        src_host = src.host if src is not None else msg.src.split("/", 1)[0]
        if src is not None and not src.up:
            self._account_drop(msg, reason="source down")
            return
        if (self._cut_links or self._partition_of) and not self._hosts_connected(
            src_host, dst.host
        ):
            self._account_drop(msg, reason="partitioned")
            return
        loss_rate = self.loss_rate
        duplication_rate = self.duplication_rate
        if self._flaky_links and src_host != dst.host:
            flaky = self._flaky_links.get(frozenset((src_host, dst.host)))
            if flaky is not None:
                loss_rate, duplication_rate = flaky
        if loss_rate > 0 and self.rng.random() < loss_rate:
            stats.lost_random += 1
            stats.lost_by_type[msg.mtype] += 1
            self._account_drop(msg, reason="random loss")
            return

        delay = self.latency.delay(src_host, dst.host, msg.size, self.rng)
        if self.host_service_time > 0:
            arrival = sim._now + delay
            start = max(arrival, self._busy_until.get(dst.host, 0.0))
            done = start + self.host_service_time * max(msg.size, 1)
            self._busy_until[dst.host] = done
            queue_wait = done - arrival
            stats.queueing_delay_total += queue_wait
            delay += queue_wait
        sim.defer(delay, dst._deliver, msg)
        if self.tracer is not None and msg.txn_id is not None:
            self._trace_flight(msg, delay)
        if duplication_rate > 0 and self.rng.random() < duplication_rate:
            # The duplicate draws its own latency (it may overtake the
            # original) and bypasses receiver queueing — it is a transport
            # artifact, not a second send, so ``sent`` stays unchanged
            # while ``delivered`` may exceed it.
            stats.duplicated += 1
            stats.duplicated_by_type[msg.mtype] += 1
            extra_delay = self.latency.delay(src_host, dst.host, msg.size, self.rng)
            sim.defer(extra_delay, dst._deliver, msg)
        if self._observers:
            self._notify(msg, "delivered")

    def _account_drop(self, msg: Message, reason: str) -> None:
        self.stats.dropped += 1
        self.stats.dropped_by_type[msg.mtype] += 1
        if self.tracer is not None and msg.txn_id is not None:
            now = self.sim.now
            self.tracer.record(
                msg.txn_id,
                msg.src.rsplit("/", 1)[-1],
                "net.msg",
                start=now,
                end=now,
                parent=msg.span,
                mtype=msg.mtype,
                src=msg.src,
                dst=msg.dst,
                outcome=reason,
            )
        self._notify(msg, reason)

    def _trace_flight(self, msg: Message, delay: float) -> None:
        """Record one delivered message as a complete ``net.msg`` span."""
        self.tracer.record(
            msg.txn_id,
            msg.src.rsplit("/", 1)[-1],
            "net.msg",
            start=msg.sent_at,
            end=msg.sent_at + delay,
            parent=msg.span,
            mtype=msg.mtype,
            src=msg.src,
            dst=msg.dst,
        )

    def _notify(self, msg: Message, outcome: str) -> None:
        for observer in self._observers:
            observer(msg, outcome)
