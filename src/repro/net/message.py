"""Message model for the simulated network.

Every unit of communication in a Rainbow instance — replica reads and
pre-writes, 2PC votes, name-server lookups, web-tier requests — is a
:class:`Message`.  Messages carry a type tag so the progress monitor can
report traffic *per message type* (one of the paper's §3 output statistics),
and a ``reply_to`` correlation id so the RPC helper can match replies to
requests and count round trips.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "MessageType"]

_message_ids = itertools.count(1)


class MessageType:
    """Well-known message type tags (plain strings, open for extension)."""

    # Replica access (RCP ↔ CCP)
    READ = "READ"
    READ_REPLY = "READ_REPLY"
    PREWRITE = "PREWRITE"
    PREWRITE_REPLY = "PREWRITE_REPLY"
    RELEASE = "RELEASE"
    # One message carrying several co-located copy accesses (the
    # ``batch_site_ops`` optimization): the receiving site fans the sub-ops
    # out to itself and its same-host siblings and answers with a vector.
    BATCH_ACCESS = "BATCH_ACCESS"
    BATCH_REPLY = "BATCH_REPLY"

    # Atomic commitment (ACP)
    VOTE_REQ = "VOTE_REQ"
    VOTE = "VOTE"
    PRECOMMIT = "PRECOMMIT"
    PRECOMMIT_ACK = "PRECOMMIT_ACK"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    ACK = "ACK"
    DECISION_REQ = "DECISION_REQ"
    DECISION = "DECISION"

    # Name server
    NS_REGISTER = "NS_REGISTER"
    NS_LOOKUP = "NS_LOOKUP"
    NS_CATALOG = "NS_CATALOG"
    NS_REPLY = "NS_REPLY"

    # Web middle tier
    WEB_REQUEST = "WEB_REQUEST"
    WEB_REPLY = "WEB_REPLY"

    # Workload dispatch and monitoring
    TXN_SUBMIT = "TXN_SUBMIT"
    TXN_RESULT = "TXN_RESULT"
    PM_QUERY = "PM_QUERY"
    PM_REPLY = "PM_REPLY"

    DATA_CATEGORY = frozenset(
        {READ, READ_REPLY, PREWRITE, PREWRITE_REPLY, RELEASE, BATCH_ACCESS, BATCH_REPLY}
    )
    COMMIT_CATEGORY = frozenset(
        {VOTE_REQ, VOTE, PRECOMMIT, PRECOMMIT_ACK, COMMIT, ABORT, ACK, DECISION_REQ, DECISION}
    )

    @classmethod
    def category(cls, mtype: str) -> str:
        """Coarse grouping used by the traffic breakdown panels."""
        if mtype in cls.DATA_CATEGORY:
            return "data"
        if mtype in cls.COMMIT_CATEGORY:
            return "commit"
        if mtype.startswith("NS_"):
            return "nameserver"
        if mtype.startswith("WEB_"):
            return "web"
        return "other"


@dataclass
class Message:
    """One message in flight on the simulated network.

    ``size`` is an abstract payload size in units the latency model may use;
    the default of 1 makes message *counts* the primary traffic measure, as
    in the paper.
    """

    src: str
    dst: str
    mtype: str
    payload: Any = None
    reply_to: Optional[int] = None
    txn_id: Optional[int] = None
    size: int = 1
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float = 0.0
    # Causal trace context: the sender's active span id, so the network and
    # the receiving site can parent their spans under the coordinator's.
    # Stays None whenever tracing is disabled.
    span: Optional[str] = None

    def reply(self, mtype: str, payload: Any = None, size: int = 1) -> "Message":
        """Build the reply message for this request (swaps src/dst)."""
        return Message(
            src=self.dst,
            dst=self.src,
            mtype=mtype,
            payload=payload,
            reply_to=self.msg_id,
            txn_id=self.txn_id,
            size=size,
            span=self.span,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        corr = f" re={self.reply_to}" if self.reply_to else ""
        return f"<Msg#{self.msg_id} {self.mtype} {self.src}->{self.dst}{corr}>"
