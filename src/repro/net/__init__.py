"""Simulated network, latency models, and fault/recovery injection."""

from repro.net.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LanWanLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.message import Message, MessageType
from repro.net.network import Endpoint, Network, NetworkStats

__all__ = [
    "ConstantLatency",
    "Endpoint",
    "ExponentialLatency",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LanWanLatency",
    "LatencyModel",
    "Message",
    "MessageType",
    "Network",
    "NetworkStats",
    "UniformLatency",
]
