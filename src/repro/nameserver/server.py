"""The Rainbow name server.

"The name server stores metadata of all Rainbow sites, such as the id and
end point specifications.  Also maintained in the name server are the
database fragmentation, replication and distribution schema.  Any site can
query the name server to get pertinent information."

The name server is a normal networked component: it owns an endpoint, runs
a server process answering ``NS_*`` messages, and is crashable by the fault
injector.  There is exactly one name server per Rainbow instance (as in the
paper); its metadata survives crashes (it is the *service* that goes down,
not the catalog).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError
from repro.nameserver.catalog import Catalog
from repro.net.message import Message, MessageType
from repro.net.network import Network
from repro.sim.kernel import Simulator

__all__ = ["SiteInfo", "NameServer"]


@dataclass
class SiteInfo:
    """Metadata the name server keeps per Rainbow site."""

    name: str
    address: str  # network endpoint address, e.g. "hostA/site1"
    host: str

    def to_dict(self) -> dict:
        return {"name": self.name, "address": self.address, "host": self.host}


class NameServer:
    """Site registry + catalog service, reachable over the network."""

    def __init__(self, sim: Simulator, network: Network, host: str, name: str = "nameserver"):
        self.sim = sim
        self.network = network
        self.name = name
        self.host = host
        self.endpoint = network.endpoint(host, name)
        self.catalog = Catalog()
        self._registry: dict[str, SiteInfo] = {}
        self.up = True
        self.queries_served = 0
        self._server = sim.process(self._serve(), name=f"ns:{name}")

    @property
    def address(self) -> str:
        """The name server's network address."""
        return self.endpoint.address

    # -- local (administrator) interface ------------------------------------
    def register_site(self, name: str, address: str, host: str) -> SiteInfo:
        """Register a site's id and endpoint specification."""
        if name in self._registry:
            raise CatalogError(f"site {name!r} already registered")
        info = SiteInfo(name=name, address=address, host=host)
        self._registry[name] = info
        return info

    def site_info(self, name: str) -> SiteInfo:
        """Metadata for one site."""
        try:
            return self._registry[name]
        except KeyError:
            raise CatalogError(f"unknown site {name!r}") from None

    def sites(self) -> list[SiteInfo]:
        """All registered sites, sorted by name."""
        return [self._registry[name] for name in sorted(self._registry)]

    def site_names(self) -> list[str]:
        """All registered site names, sorted."""
        return sorted(self._registry)

    def address_of(self, site_name: str) -> str:
        """Endpoint address of a registered site."""
        return self.site_info(site_name).address

    # -- fault surface ----------------------------------------------------------
    def crash(self) -> None:
        """Take the name-server service down (metadata is durable)."""
        self.up = False
        self.endpoint.set_down()

    def recover(self) -> None:
        """Bring the service back; restart the server process."""
        self.up = True
        self.endpoint.set_up()
        self._server = self.sim.process(self._serve(), name=f"ns:{self.name}")

    # -- network service -----------------------------------------------------------
    def _serve(self):
        while self.up:
            try:
                msg = yield self.endpoint.receive()
            except Exception:
                return  # endpoint went down under us
            self._handle(msg)

    def _handle(self, msg: Message) -> None:
        self.queries_served += 1
        if msg.mtype == MessageType.NS_REGISTER:
            payload = msg.payload or {}
            self.register_site(payload["name"], payload["address"], payload["host"])
            self.endpoint.reply(msg, MessageType.NS_REPLY, payload={"ok": True})
        elif msg.mtype == MessageType.NS_LOOKUP:
            wanted = (msg.payload or {}).get("site")
            if wanted is None:
                payload = {"sites": [info.to_dict() for info in self.sites()]}
            else:
                info = self._registry.get(wanted)
                payload = {"sites": [info.to_dict()] if info else []}
            # Reply size reflects the directory entries returned, so
            # byte-weighted latency models price the lookup realistically.
            self.endpoint.reply(
                msg,
                MessageType.NS_REPLY,
                payload=payload,
                size=max(1, len(payload["sites"])),
            )
        elif msg.mtype == MessageType.NS_CATALOG:
            self.endpoint.reply(
                msg,
                MessageType.NS_REPLY,
                payload={"catalog": self.catalog.to_dict()},
                size=max(1, len(self.catalog)),
            )
        else:
            self.endpoint.reply(
                msg, MessageType.NS_REPLY, payload={"error": f"unknown request {msg.mtype}"}
            )
