"""Name server: site registry and the fragmentation/replication catalog."""

from repro.nameserver.catalog import Catalog, Fragment, ItemSpec
from repro.nameserver.server import NameServer, SiteInfo

__all__ = ["Catalog", "Fragment", "ItemSpec", "NameServer", "SiteInfo"]
