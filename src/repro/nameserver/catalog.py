"""Database catalog: fragmentation, replication and distribution schema.

The paper's name server "stores metadata of all Rainbow sites … Also
maintained in the name server are the database fragmentation, replication
and distribution schema."  This module is that schema:

* :class:`ItemSpec` — one logical database item, its initial value, and its
  *placement*: which sites hold a copy and how many votes each copy carries
  (votes drive quorum consensus; ROWA ignores them).
* :class:`Fragment` — a named group of items (horizontal fragmentation of a
  logical table), useful for assigning whole fragments to sites.
* :class:`Catalog` — the container with placement helpers and validation.

Quorum rules (for QC): with total votes ``V``, the read quorum ``r`` and
write quorum ``w`` must satisfy ``r + w > V`` and ``2w > V``; the defaults
are majorities: ``r = w = ⌊V/2⌋ + 1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.errors import CatalogError

__all__ = ["ItemSpec", "Fragment", "Catalog"]


@dataclass
class ItemSpec:
    """One logical item of the distributed database."""

    name: str
    initial_value: Any = 0
    placement: dict[str, int] = field(default_factory=dict)  # site -> votes
    read_quorum: Optional[int] = None
    write_quorum: Optional[int] = None
    fragment: Optional[str] = None

    @property
    def total_votes(self) -> int:
        """Sum of votes over all copies."""
        return sum(self.placement.values())

    @property
    def sites(self) -> list[str]:
        """Sites holding a copy (sorted for deterministic iteration)."""
        return sorted(self.placement)

    @property
    def replication_degree(self) -> int:
        """Number of copies."""
        return len(self.placement)

    def effective_read_quorum(self) -> int:
        """The read quorum in force (explicit or majority default)."""
        if self.read_quorum is not None:
            return self.read_quorum
        return self.total_votes // 2 + 1

    def effective_write_quorum(self) -> int:
        """The write quorum in force (explicit or majority default)."""
        if self.write_quorum is not None:
            return self.write_quorum
        return self.total_votes // 2 + 1

    def validate(self) -> None:
        """Raise :class:`CatalogError` on an unusable spec."""
        if not self.placement:
            raise CatalogError(f"item {self.name!r} has no copies")
        for site, votes in self.placement.items():
            if votes <= 0:
                raise CatalogError(
                    f"item {self.name!r}: copy at {site!r} has non-positive votes {votes}"
                )
        votes = self.total_votes
        r = self.effective_read_quorum()
        w = self.effective_write_quorum()
        if not 1 <= r <= votes:
            raise CatalogError(f"item {self.name!r}: read quorum {r} out of range 1..{votes}")
        if not 1 <= w <= votes:
            raise CatalogError(f"item {self.name!r}: write quorum {w} out of range 1..{votes}")
        if r + w <= votes:
            raise CatalogError(
                f"item {self.name!r}: r+w = {r}+{w} must exceed total votes {votes}"
            )
        if 2 * w <= votes:
            raise CatalogError(
                f"item {self.name!r}: 2w = {2 * w} must exceed total votes {votes}"
            )


@dataclass
class Fragment:
    """A named horizontal fragment: a group of items managed together."""

    name: str
    items: list[str] = field(default_factory=list)
    description: str = ""


class Catalog:
    """The fragmentation/replication/distribution schema of one database."""

    def __init__(self):
        self._items: dict[str, ItemSpec] = {}
        self._fragments: dict[str, Fragment] = {}

    # -- item management -------------------------------------------------------
    def add_item(
        self,
        name: str,
        *,
        initial_value: Any = 0,
        placement: dict[str, int] | Iterable[str] | None = None,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
        fragment: Optional[str] = None,
    ) -> ItemSpec:
        """Register an item.

        ``placement`` may be a ``{site: votes}`` dict or an iterable of site
        names (one vote per copy).
        """
        if name in self._items:
            raise CatalogError(f"duplicate item {name!r}")
        if placement is None:
            placement_map: dict[str, int] = {}
        elif isinstance(placement, dict):
            placement_map = dict(placement)
        else:
            placement_map = {site: 1 for site in placement}
        spec = ItemSpec(
            name=name,
            initial_value=initial_value,
            placement=placement_map,
            read_quorum=read_quorum,
            write_quorum=write_quorum,
            fragment=fragment,
        )
        self._items[name] = spec
        if fragment is not None:
            self._fragments.setdefault(fragment, Fragment(fragment)).items.append(name)
        return spec

    def item(self, name: str) -> ItemSpec:
        """Return the spec for ``name`` (raising on unknown items)."""
        try:
            return self._items[name]
        except KeyError:
            raise CatalogError(f"unknown item {name!r}") from None

    def items(self) -> list[ItemSpec]:
        """All item specs, sorted by name."""
        return [self._items[name] for name in sorted(self._items)]

    def item_names(self) -> list[str]:
        """All item names, sorted."""
        return sorted(self._items)

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    # -- fragments -------------------------------------------------------------
    def define_fragment(self, name: str, items: Iterable[str], description: str = "") -> Fragment:
        """Group existing items into a named fragment."""
        if name in self._fragments and self._fragments[name].items:
            raise CatalogError(f"duplicate fragment {name!r}")
        item_list = list(items)
        for item_name in item_list:
            spec = self.item(item_name)
            spec.fragment = name
        fragment = Fragment(name, item_list, description)
        self._fragments[name] = fragment
        return fragment

    def fragment(self, name: str) -> Fragment:
        """Return the fragment named ``name``."""
        try:
            return self._fragments[name]
        except KeyError:
            raise CatalogError(f"unknown fragment {name!r}") from None

    def fragments(self) -> list[Fragment]:
        """All fragments, sorted by name."""
        return [self._fragments[name] for name in sorted(self._fragments)]

    # -- placement helpers -------------------------------------------------------
    def place_full_replication(self, sites: Iterable[str], votes: int = 1) -> None:
        """Give every item a copy (with ``votes`` votes) at every site."""
        site_list = list(sites)
        if not site_list:
            raise CatalogError("cannot place on an empty site list")
        for spec in self._items.values():
            spec.placement = {site: votes for site in site_list}

    def place_round_robin(self, sites: Iterable[str], degree: int) -> None:
        """Place each item at ``degree`` consecutive sites, rotating.

        Deterministic and balanced: item *i* lands on sites
        ``i, i+1, …, i+degree-1 (mod n)``.
        """
        site_list = list(sites)
        if degree < 1 or degree > len(site_list):
            raise CatalogError(
                f"replication degree {degree} out of range 1..{len(site_list)}"
            )
        for index, name in enumerate(sorted(self._items)):
            chosen = [site_list[(index + k) % len(site_list)] for k in range(degree)]
            self._items[name].placement = {site: 1 for site in chosen}

    def place_random(self, sites: Iterable[str], degree: int, rng: random.Random) -> None:
        """Place each item at ``degree`` sites drawn without replacement."""
        site_list = list(sites)
        if degree < 1 or degree > len(site_list):
            raise CatalogError(
                f"replication degree {degree} out of range 1..{len(site_list)}"
            )
        for name in sorted(self._items):
            self._items[name].placement = {site: 1 for site in rng.sample(site_list, degree)}

    # -- queries used by the protocols ----------------------------------------------
    def sites_holding(self, item_name: str) -> list[str]:
        """Sites with a copy of ``item_name`` (sorted)."""
        return self.item(item_name).sites

    def items_at(self, site_name: str) -> list[str]:
        """Items that have a copy at ``site_name`` (sorted)."""
        return sorted(
            name for name, spec in self._items.items() if site_name in spec.placement
        )

    def all_sites(self) -> list[str]:
        """Every site mentioned in any placement (sorted)."""
        sites: set[str] = set()
        for spec in self._items.values():
            sites.update(spec.placement)
        return sorted(sites)

    # -- validation / export -----------------------------------------------------
    def validate(self, known_sites: Iterable[str] | None = None) -> None:
        """Validate every item spec, optionally against a site universe."""
        if not self._items:
            raise CatalogError("catalog has no items")
        universe = set(known_sites) if known_sites is not None else None
        for spec in self._items.values():
            spec.validate()
            if universe is not None:
                missing = set(spec.placement) - universe
                if missing:
                    raise CatalogError(
                        f"item {spec.name!r} placed on unknown sites {sorted(missing)}"
                    )

    def to_dict(self) -> dict:
        """Serialisable form (used by config save/load and the web tier)."""
        return {
            "items": {
                name: {
                    "initial_value": spec.initial_value,
                    "placement": dict(spec.placement),
                    "read_quorum": spec.read_quorum,
                    "write_quorum": spec.write_quorum,
                    "fragment": spec.fragment,
                }
                for name, spec in self._items.items()
            },
            "fragments": {
                name: {"items": list(frag.items), "description": frag.description}
                for name, frag in self._fragments.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Catalog":
        """Inverse of :meth:`to_dict`."""
        catalog = cls()
        for name, item in data.get("items", {}).items():
            catalog.add_item(
                name,
                initial_value=item.get("initial_value", 0),
                placement=item.get("placement") or {},
                read_quorum=item.get("read_quorum"),
                write_quorum=item.get("write_quorum"),
            )
        for name, frag in data.get("fragments", {}).items():
            catalog._fragments[name] = Fragment(
                name, list(frag.get("items", [])), frag.get("description", "")
            )
            for item_name in catalog._fragments[name].items:
                if item_name in catalog:
                    catalog.item(item_name).fragment = name
        return catalog
