"""Transaction model: operations, statuses, abort causes.

A Rainbow transaction is a flat sequence of read/write operations over
logical items, processed one at a time by the replication controller at the
transaction's *home site* and terminated by the atomic commit protocol
("When all operations of a transaction are processed by the RCP, the home
site initiates a two-phase commit session").
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import WorkloadError

__all__ = ["OpKind", "Operation", "TxnStatus", "Transaction", "next_txn_id",
           "txn_id_scope"]

_txn_ids = itertools.count(1)


def next_txn_id() -> int:
    """Globally unique transaction id."""
    return next(_txn_ids)


@contextmanager
def txn_id_scope(start: int = 1):
    """Allocate txn ids from a fresh counter within the ``with`` block.

    The process-global counter keeps ids unique across every instance in
    one process — but that makes raw ids depend on what ran earlier, so a
    self-contained session (one instance, nothing else allocating ids,
    e.g. a chaos case) scopes itself to get ids that are a pure function
    of its own seed: identical for every worker placement under ``-j N``.
    The outer counter is restored on exit.
    """
    global _txn_ids
    saved = _txn_ids
    _txn_ids = itertools.count(start)
    try:
        yield
    finally:
        _txn_ids = saved


class OpKind:
    """Operation kinds."""

    READ = "R"
    WRITE = "W"
    INCREMENT = "I"  # read-modify-write: write(read(item) + delta)


@dataclass
class Operation:
    """One logical read, write, or increment.

    An increment is the classic read-modify-write: the coordinator reads
    the item through the RCP, adds ``value`` (the delta), and writes the
    result back — making lost updates *observable in the data*, which the
    counter-invariant tests exploit.
    """

    kind: str
    item: str
    value: Any = None

    def __post_init__(self):
        if self.kind not in (OpKind.READ, OpKind.WRITE, OpKind.INCREMENT):
            raise WorkloadError(f"unknown operation kind {self.kind!r}")
        if self.kind == OpKind.READ and self.value is not None:
            raise WorkloadError("read operations carry no value")
        if self.kind == OpKind.INCREMENT and not isinstance(self.value, (int, float)):
            raise WorkloadError("increment operations need a numeric delta")

    @classmethod
    def read(cls, item: str) -> "Operation":
        """Shorthand for a read of ``item``."""
        return cls(OpKind.READ, item)

    @classmethod
    def write(cls, item: str, value: Any) -> "Operation":
        """Shorthand for a write of ``value`` to ``item``."""
        return cls(OpKind.WRITE, item, value)

    @classmethod
    def increment(cls, item: str, delta: float = 1) -> "Operation":
        """Shorthand for a read-modify-write adding ``delta``."""
        return cls(OpKind.INCREMENT, item, delta)

    def __str__(self) -> str:
        if self.kind == OpKind.READ:
            return f"r[{self.item}]"
        if self.kind == OpKind.INCREMENT:
            return f"i[{self.item}+={self.value}]"
        return f"w[{self.item}={self.value}]"


class TxnStatus:
    """Transaction lifecycle states."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


@dataclass
class Transaction:
    """One transaction instance (a restart is a *new* Transaction)."""

    ops: list[Operation]
    home_site: str
    txn_id: int = field(default_factory=next_txn_id)
    ts: float = 0.0
    status: str = TxnStatus.PENDING
    abort_cause: Optional[str] = None  # "RCP" | "CCP" | "ACP" | "SYSTEM"
    abort_detail: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    decided_at: Optional[float] = None
    finished_at: Optional[float] = None
    reads: dict[str, Any] = field(default_factory=dict)
    read_versions: dict[str, int] = field(default_factory=dict)
    write_versions: dict[str, int] = field(default_factory=dict)
    attempt: int = 1
    template_id: Optional[int] = None  # stable across restarts
    # Coordinator died before logging a decision (the paper's "orphan
    # transactions" statistic); set by run_transaction's crash handler.
    orphaned: bool = False

    def __post_init__(self):
        if not self.ops:
            raise WorkloadError("transaction must have at least one operation")
        if self.template_id is None:
            self.template_id = self.txn_id

    @property
    def committed(self) -> bool:
        return self.status == TxnStatus.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.status == TxnStatus.ABORTED

    @property
    def response_time(self) -> Optional[float]:
        """Submission-to-decision latency (None until decided)."""
        if self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at

    @property
    def read_set(self) -> list[str]:
        """Items read (increments read too), in order, without duplicates."""
        seen: list[str] = []
        for op in self.ops:
            if op.kind in (OpKind.READ, OpKind.INCREMENT) and op.item not in seen:
                seen.append(op.item)
        return seen

    @property
    def write_set(self) -> list[str]:
        """Items written (increments write too), in order, no duplicates."""
        seen: list[str] = []
        for op in self.ops:
            if op.kind in (OpKind.WRITE, OpKind.INCREMENT) and op.item not in seen:
                seen.append(op.item)
        return seen

    def restarted(self) -> "Transaction":
        """A fresh transaction re-running the same operations."""
        return Transaction(
            ops=list(self.ops),
            home_site=self.home_site,
            attempt=self.attempt + 1,
            template_id=self.template_id,
        )

    def __str__(self) -> str:
        body = " ".join(str(op) for op in self.ops)
        return f"T{self.txn_id}@{self.home_site}: {body}"
