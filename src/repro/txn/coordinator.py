"""The home-site transaction coordinator.

"When a new transaction arrives at a Rainbow site, the site dedicates one
thread to process it.  The thread immediately invokes the RCP. … When all
operations of a transaction are processed by the RCP, the home site
initiates a two-phase commit session … When commitment terminates, the
transaction is complete and the thread finishes."

:func:`run_transaction` is that thread, as a kernel process running *on*
the home site (it dies with it).  :class:`TxnContext` is the toolbox it
hands to the pluggable RCP and ACP: copy access (local calls for the home
copy, request/reply messages for remote copies), participant registration,
version bookkeeping, and the vote/decision machinery of the commit
protocols.

Abort classification follows the paper's statistics: RCP (quorum or copy
set unattainable), CCP (rejected/deadlock victim), ACP (a NO vote or vote
timeout), SYSTEM (the home site crashed mid-flight).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import (
    CommitAbort,
    NetworkError,
    RpcTimeout,
    TransactionAborted,
)
from repro.nameserver.catalog import Catalog
from repro.net.message import MessageType
from repro.protocols.base import make_acp, make_rcp
from repro.sim.kernel import Interrupt
from repro.site.site import Site
from repro.txn.transaction import OpKind, Transaction, TxnStatus

__all__ = ["AccessResult", "Participant", "CoordinatorConfig", "TxnContext", "run_transaction"]


@dataclass
class AccessResult:
    """Outcome of one copy access (never raises — RCPs classify)."""

    ok: bool
    site: str
    value: Any = None
    version: float = 0.0
    kind: Optional[str] = None  # "ccp" | "net" when not ok
    reason: str = ""


@dataclass
class Participant:
    """A site the transaction touched; it must see the final decision."""

    site: str
    address: str
    versions: dict[str, float] = field(default_factory=dict)  # prewritten items


@dataclass
class CoordinatorConfig:
    """Coordinator-side protocol selection and timeout policy.

    ``op_timeout`` must exceed the sites' lock/TSO wait timeouts, otherwise
    a long (but legal) lock wait at a remote copy is misclassified as an
    unreachable site.
    """

    rcp: str = "QC"
    acp: str = "2PC"
    rcp_options: dict = field(default_factory=dict)
    acp_options: dict = field(default_factory=dict)
    op_timeout: float = 90.0
    vote_timeout: float = 40.0
    ack_timeout: float = 25.0
    ack_retries: int = 3
    # Message-economy optimizations (docs/PERF.md); all off by default so
    # the unoptimized message sequences replay byte-identically.
    batch_site_ops: bool = False
    piggyback_prepare: bool = False
    latency_aware_routing: bool = False
    # Deterministic failure scenarios ("crash the coordinator right after
    # the votes are in"): the classic classroom exercise about 2PC blocking
    # and the driver of the EXP-ACP benchmark.  ``failpoint`` is one of
    # ``"after_votes"`` or ``"after_precommit"``; each armed transaction
    # that reaches it crashes its home site at that instant.
    failpoint: Optional[str] = None
    failpoint_arms: int = 0

    def hit_failpoint(self, point: str) -> bool:
        """Consume one arm if ``point`` is the configured failpoint."""
        if self.failpoint == point and self.failpoint_arms > 0:
            self.failpoint_arms -= 1
            return True
        return False


class TxnContext:
    """Everything the RCP and ACP need while processing one transaction."""

    def __init__(
        self,
        txn: Transaction,
        home: Site,
        catalog: Catalog,
        directory: dict[str, str],
        config: CoordinatorConfig,
        monitor=None,
    ):
        self.txn = txn
        self.home = home
        self.sim = home.sim
        self.catalog = catalog
        self.directory = directory  # site name -> endpoint address
        self.config = config
        self.monitor = monitor
        self.participants: dict[str, Participant] = {}
        self.rcp = make_rcp(config.rcp, **config.rcp_options)
        self.acp = make_acp(config.acp, **config.acp_options)
        # Sites where copy accesses are currently outstanding (a counted
        # multiset: quorum accesses run concurrently).  The distributed-
        # deadlock detector forwards probes through ``blocked_site``.
        self._blocked_counts: dict[str, int] = {}
        # Catalog specs resolved during this attempt (restarts get a fresh
        # context, so the cache is naturally per-attempt).
        self._spec_cache: dict[str, Any] = {}
        # Piggybacked-prepare state: armed only while the final operation's
        # accesses are in flight; votes folded into access replies wait
        # here until collect_votes consumes them.
        self._piggyback_armed = False
        self._pending_votes: dict[str, tuple[bool, str]] = {}
        # Causal tracing: the instance's span tracer (None = tracing off),
        # the transaction's root span, and the innermost open span.  The
        # current span's id rides on every outgoing message so network and
        # site spans nest under the coordinator phase that caused them.
        self.tracer = getattr(home, "tracer", None)
        self.root_span = None
        self.current_span = None

    # -- causal tracing ----------------------------------------------------------
    def begin_span(self, name: str, **attrs):
        """Open a child span under the current one; None when tracing is off.

        Returns an opaque token for :meth:`end_span`.  Spans opened through
        this pair form a stack, so nested protocol layers (an RCP wave
        inside an op, a vote round inside the ACP) parent correctly.
        """
        if self.tracer is None:
            return None
        parent = self.current_span or self.root_span
        span = self.tracer.begin(
            self.txn.txn_id,
            self.home.name,
            name,
            parent=None if parent is None else parent.span_id,
            **attrs,
        )
        token = (span, self.current_span)
        self.current_span = span
        return token

    def end_span(self, token) -> None:
        """Close a span opened with :meth:`begin_span` (no-op for None)."""
        if token is None:
            return
        span, previous = token
        self.tracer.finish(span)
        self.current_span = previous

    def trace_context(self) -> Optional[str]:
        """Span id to stamp on outgoing messages (None when tracing is off)."""
        if self.tracer is None:
            return None
        active = self.current_span or self.root_span
        return None if active is None else active.span_id

    def _home_span_ctx(self) -> None:
        """Hand the active span to the home site before a direct local call."""
        if self.tracer is not None:
            self.home._span_ctx[self.txn.txn_id] = self.trace_context()

    @property
    def blocked_site(self) -> Optional[str]:
        """A site where the transaction is currently waiting (or None)."""
        for site, count in self._blocked_counts.items():
            if count > 0:
                return site
        return None

    def _block_enter(self, site: str) -> None:
        self._blocked_counts[site] = self._blocked_counts.get(site, 0) + 1

    def _block_exit(self, site: str) -> None:
        count = self._blocked_counts.get(site, 0) - 1
        if count <= 0:
            self._blocked_counts.pop(site, None)
        else:
            self._blocked_counts[site] = count

    # -- topology helpers --------------------------------------------------------
    def order_local_first(self, sites: list[str]) -> list[str]:
        """Copy-holder order: the home copy is free, so it goes first.

        With ``latency_aware_routing`` the remaining holders are ranked by
        the latency model's expected delay from the home host (deterministic
        tie-break on name), so quorum waves and ROWA-A reads prefer LAN
        replicas over WAN ones under :class:`~repro.net.latency.LanWanLatency`.
        """
        if self.config.latency_aware_routing:
            ordered = sorted(
                (site for site in sites if site != self.home.name),
                key=self._latency_rank,
            )
            if self.home.name in sites:
                ordered.insert(0, self.home.name)
            return ordered
        ordered = sorted(sites)
        if self.home.name in ordered:
            ordered.remove(self.home.name)
            ordered.insert(0, self.home.name)
        return ordered

    def _latency_rank(self, site: str) -> tuple[float, str]:
        """Sort key for copy holders: (expected delay from home, name).

        Uses the model's deterministic expectation — never a random draw —
        so routing cannot perturb the network's latency stream.  Models
        without ``expected_delay`` fall back to alphabetical order.
        """
        expected = getattr(self.home.network.latency, "expected_delay", None)
        delay = 0.0
        if expected is not None:
            delay = expected(self.home.host, self.host_of(site))
        return (delay, site)

    def address_of(self, site: str) -> str:
        return self.directory[site]

    def host_of(self, site: str) -> str:
        """The host a site lives on (addresses are ``host/name``)."""
        return self.address_of(site).split("/", 1)[0]

    # -- catalog access ----------------------------------------------------------
    def item_spec(self, item: str):
        """Catalog spec for ``item``, memoized for this transaction attempt.

        Every RCP wave consults the same placement; one lookup per item per
        attempt suffices.  Restarted transactions build a fresh context, so
        recovery paths always re-resolve against current metadata.
        """
        spec = self._spec_cache.get(item)
        if spec is None:
            spec = self.catalog.item(item)
            self._spec_cache[item] = spec
        return spec

    def invalidate_spec_cache(self) -> None:
        """Drop memoized specs (called when an attempt aborts)."""
        self._spec_cache.clear()

    # -- copy access ---------------------------------------------------------------
    def access_read(self, site: str, item: str):
        """Read the copy of ``item`` at ``site`` (generator → AccessResult)."""
        if site == self.home.name:
            self._block_enter(site)
            self._home_span_ctx()
            try:
                value, version = yield from self.home.local_read(
                    self.txn.txn_id, self.txn.ts, item
                )
            except TransactionAborted as abort:
                return AccessResult(False, site, kind="ccp", reason=str(abort))
            finally:
                self._block_exit(site)
            self._register(site)
            return AccessResult(True, site, value=value, version=version)
        request = {
            "txn": self.txn.txn_id,
            "ts": self.txn.ts,
            "item": item,
            "home": self.home.address,
        }
        prepare = self._piggyback_payload(site, item, write=False)
        if prepare is not None:
            request["prepare"] = prepare
        self._block_enter(site)
        try:
            reply = yield self.home.endpoint.request(
                self.address_of(site),
                MessageType.READ,
                request,
                timeout=self.config.op_timeout,
                txn_id=self.txn.txn_id,
                span=self.trace_context(),
            )
        except (RpcTimeout, NetworkError) as failure:
            return AccessResult(False, site, kind="net", reason=str(failure))
        finally:
            self._block_exit(site)
        payload = reply.payload or {}
        if not payload.get("ok"):
            return AccessResult(False, site, kind="ccp", reason=payload.get("reason", ""))
        self._register(site)
        self._absorb_vote(site, payload)
        return AccessResult(
            True, site, value=payload.get("value"), version=payload.get("version", 0)
        )

    def access_prewrite(self, site: str, item: str, value: Any):
        """Pre-write ``item`` at ``site`` (generator → AccessResult)."""
        if site == self.home.name:
            self._block_enter(site)
            self._home_span_ctx()
            try:
                version = yield from self.home.local_prewrite(
                    self.txn.txn_id, self.txn.ts, item, value
                )
            except TransactionAborted as abort:
                return AccessResult(False, site, kind="ccp", reason=str(abort))
            finally:
                self._block_exit(site)
            self._register(site)
            return AccessResult(True, site, version=version)
        request = {
            "txn": self.txn.txn_id,
            "ts": self.txn.ts,
            "item": item,
            "value": value,
            "home": self.home.address,
        }
        prepare = self._piggyback_payload(site, item, write=True)
        if prepare is not None:
            request["prepare"] = prepare
        self._block_enter(site)
        try:
            reply = yield self.home.endpoint.request(
                self.address_of(site),
                MessageType.PREWRITE,
                request,
                timeout=self.config.op_timeout,
                txn_id=self.txn.txn_id,
                span=self.trace_context(),
            )
        except (RpcTimeout, NetworkError) as failure:
            return AccessResult(False, site, kind="net", reason=str(failure))
        finally:
            self._block_exit(site)
        payload = reply.payload or {}
        if not payload.get("ok"):
            return AccessResult(False, site, kind="ccp", reason=payload.get("reason", ""))
        self._register(site)
        self._absorb_vote(site, payload)
        return AccessResult(True, site, version=payload.get("version", 0))

    def access_read_many(self, sites: list[str], item: str):
        """Concurrent reads at several sites (generator → list[AccessResult])."""
        if self.config.batch_site_ops:
            return (yield from self._access_many(sites, item, write=False))
        return (yield from self._gather([self.access_read(site, item) for site in sites]))

    def access_prewrite_many(self, sites: list[str], item: str, value: Any):
        """Concurrent pre-writes at several sites (generator → results)."""
        if self.config.batch_site_ops:
            return (yield from self._access_many(sites, item, write=True, value=value))
        return (
            yield from self._gather(
                [self.access_prewrite(site, item, value) for site in sites]
            )
        )

    def _access_many(self, sites: list[str], item: str, write: bool, value: Any = None):
        """Batched access plan: one BATCH_ACCESS per multi-site host group.

        Remote sites sharing a host are coalesced into a single message to
        the group's gateway; the home copy and singleton hosts keep the
        plain per-site path (their message counts are already minimal).
        Results come back in the order of ``sites``.
        """
        groups: dict[str, list[str]] = {}
        plans = []
        for site in sites:
            if site == self.home.name:
                plans.append(
                    self.access_prewrite(site, item, value)
                    if write
                    else self.access_read(site, item)
                )
            else:
                groups.setdefault(self.host_of(site), []).append(site)
        for host in sorted(groups):
            members = groups[host]
            if len(members) == 1:
                plans.append(
                    self.access_prewrite(members[0], item, value)
                    if write
                    else self.access_read(members[0], item)
                )
            else:
                plans.append(self._batch_access(members, item, write, value))
        results = yield from self._gather(plans)
        by_site: dict[str, AccessResult] = {}
        for result in results:
            for access in result if isinstance(result, list) else (result,):
                by_site[access.site] = access
        return [by_site[site] for site in sites]

    def _batch_access(self, group: list[str], item: str, write: bool, value: Any):
        """One BATCH_ACCESS round trip covering all of ``group`` (same host).

        The first (name-ordered) member acts as the gateway and fans the
        sub-ops out to its co-located siblings; the reply carries one entry
        per site.  A lost batch is a net failure for every member — the same
        classification each unbatched RPC would have produced on timeout.
        """
        gateway = min(group)
        request: dict[str, Any] = {
            "txn": self.txn.txn_id,
            "ts": self.txn.ts,
            "item": item,
            "kind": "W" if write else "R",
            "sites": list(group),
            "home": self.home.address,
        }
        if write:
            request["value"] = value
        prepare = {}
        for site in group:
            attached = self._piggyback_payload(site, item, write=write)
            if attached is not None:
                prepare[site] = attached
        if prepare:
            request["prepare"] = prepare
        for site in group:
            self._block_enter(site)
        try:
            reply = yield self.home.endpoint.request(
                self.address_of(gateway),
                MessageType.BATCH_ACCESS,
                request,
                timeout=self.config.op_timeout,
                txn_id=self.txn.txn_id,
                size=len(group),
                span=self.trace_context(),
            )
        except (RpcTimeout, NetworkError) as failure:
            return [
                AccessResult(False, site, kind="net", reason=str(failure))
                for site in group
            ]
        finally:
            for site in group:
                self._block_exit(site)
        if self.monitor is not None:
            self.monitor.note_batched_ops(len(group), saved=len(group) - 1)
        entries = {
            entry.get("site"): entry
            for entry in (reply.payload or {}).get("results", [])
        }
        results = []
        for site in group:
            entry = entries.get(site)
            if entry is None:
                results.append(
                    AccessResult(False, site, kind="net", reason="no batch result")
                )
            elif entry.get("ok"):
                self._register(site)
                self._absorb_vote(site, entry)
                results.append(
                    AccessResult(
                        True,
                        site,
                        value=entry.get("value"),
                        version=entry.get("version", 0),
                    )
                )
            else:
                results.append(
                    AccessResult(
                        False,
                        site,
                        kind=entry.get("kind", "ccp"),
                        reason=entry.get("reason", ""),
                    )
                )
        return results

    def _gather(self, generators):
        processes = [self.sim.process(g, name="access") for g in generators]
        yield self.sim.all_of(processes)
        return [p.value for p in processes]

    # -- piggybacked prepare -----------------------------------------------------
    def arm_piggyback(self) -> None:
        """Arm prepare piggybacking for the transaction's final operation.

        Only 2PC benefits (3PC's extra PRECOMMIT round dominates either
        way), so other ACPs leave the flag unarmed and keep the explicit
        vote round.
        """
        self._piggyback_armed = (
            self.config.piggyback_prepare and self.config.acp.upper() == "2PC"
        )

    def _piggyback_payload(self, site: str, item: str, write: bool) -> Optional[dict]:
        """VOTE_REQ payload to ride on a final-operation access (or None).

        A write access can only carry a prepare when versions are
        timestamps (the installed version is known before the prewrite is
        sent); counter-version CCPs miss the window and fall back to the
        explicit vote round.  The home site always prepares via the direct
        local call in :meth:`collect_votes`.
        """
        if not self._piggyback_armed or site == self.home.name:
            return None
        if write and not getattr(self.home.cc, "timestamp_versions", False):
            return None
        participant = self.participants.get(site)
        versions = dict(participant.versions) if participant is not None else {}
        if write:
            versions[item] = self.txn.ts
        return {
            "versions": versions,
            "coordinator": self.home.address,
            "acp": self.config.acp,
            "peers": self.participant_addresses(),
        }

    def _absorb_vote(self, site: str, payload: dict) -> None:
        """Store a vote folded into an access reply for collect_votes."""
        if "vote" in payload:
            self._pending_votes[site] = (
                bool(payload["vote"]),
                payload.get("vote_reason", ""),
            )

    # -- bookkeeping -----------------------------------------------------------------
    def _register(self, site: str) -> None:
        if site not in self.participants:
            self.participants[site] = Participant(site=site, address=self.address_of(site))

    def assign_version(self, results) -> float:
        """The version a write will install, from its prewrite results.

        Counter semantics (2PL, TSO): one past the highest committed
        version seen in the written copy set.  Timestamp semantics (MVTO):
        the writer's own timestamp — the version chain is ordered by ts.
        """
        if getattr(self.home.cc, "timestamp_versions", False):
            return self.txn.ts
        return max(result.version for result in results) + 1

    def note_prewrite(self, site: str, item: str, new_version: float) -> None:
        """Record that ``site`` buffered ``item`` to be stamped ``new_version``."""
        self._register(site)
        self.participants[site].versions[item] = new_version

    def note_read(self, item: str, version: float) -> None:
        """Record the version the transaction observed for ``item``."""
        self.txn.read_versions[item] = version

    def note_write(self, item: str, version: float) -> None:
        """Record the version this transaction will install for ``item``."""
        self.txn.write_versions[item] = version

    def participant_addresses(self) -> list[str]:
        return [p.address for p in self.participants.values()]

    # -- ACP primitives -----------------------------------------------------------------
    def collect_votes(self, acp_name: str):
        """Phase 1: VOTE_REQ to every participant; returns (all_yes, detail).

        The home participant votes via a direct call; remote participants
        via messages.  A vote that does not arrive within ``vote_timeout``
        counts as NO (the classic timeout action).
        """
        span = self.begin_span("acp.vote", acp=acp_name)
        try:
            result = yield from self._collect_votes(acp_name)
        finally:
            self.end_span(span)
        return result

    def _collect_votes(self, acp_name: str):
        peers = self.participant_addresses()
        remote = []
        all_yes = True
        detail = []
        for participant in sorted(self.participants.values(), key=lambda p: p.site):
            if participant.site == self.home.name:
                self._home_span_ctx()
                vote, reason = self.home.local_prepare(
                    self.txn.txn_id,
                    participant.versions,
                    self.home.address,
                    self.txn.ts,
                    acp=acp_name,
                    peers=peers,
                )
                if not vote:
                    all_yes = False
                    detail.append(f"{participant.site}: {reason}")
            elif participant.site in self._pending_votes:
                # The vote rode back on the final access reply (piggybacked
                # prepare): the whole VOTE_REQ round trip is saved for this
                # participant.
                vote, reason = self._pending_votes[participant.site]
                if self.monitor is not None:
                    self.monitor.note_round_trips_saved(1)
                if not vote:
                    all_yes = False
                    detail.append(f"{participant.site}: {reason or 'NO'}")
            else:
                remote.append(participant)

        if remote:
            events = [
                self.home.endpoint.request(
                    participant.address,
                    MessageType.VOTE_REQ,
                    {
                        "txn": self.txn.txn_id,
                        "ts": self.txn.ts,
                        "versions": participant.versions,
                        "coordinator": self.home.address,
                        "acp": acp_name,
                        "peers": peers,
                    },
                    timeout=self.config.vote_timeout,
                    txn_id=self.txn.txn_id,
                    span=self.trace_context(),
                )
                for participant in remote
            ]
            results = yield from self._gather(self._settle(event) for event in events)
            for participant, result in zip(remote, results):
                if isinstance(result, Exception):
                    all_yes = False
                    detail.append(f"{participant.site}: no vote ({result})")
                    continue
                payload = result.payload or {}
                if not payload.get("vote"):
                    all_yes = False
                    detail.append(f"{participant.site}: {payload.get('reason', 'NO')}")
        if all_yes and self.config.hit_failpoint("after_votes"):
            # Crash before the decision is logged: participants that voted
            # YES are left uncertain and the decision is *presumed abort*
            # once the coordinator recovers.
            self.home.crash()
            raise Interrupt("failpoint: after_votes")
        return all_yes, "; ".join(detail)

    def _settle(self, event):
        """Convert an RPC event into a value-or-exception (never raises)."""
        try:
            reply = yield event
        except (RpcTimeout, NetworkError) as failure:
            return failure
        return reply

    def broadcast(self, mtype: str, *, retries: Optional[int] = None):
        """Send a decision/phase message to every participant, with retries.

        The home participant is handled by direct local calls.  Remote
        participants that never acknowledge are abandoned — they hold the
        prepared state and will resolve it through DECISION_REQ.
        Returns the number of participants that acknowledged.
        """
        name = "acp.precommit" if mtype == MessageType.PRECOMMIT else "acp.decision"
        span = self.begin_span(name, decision=mtype)
        try:
            result = yield from self._broadcast(mtype, retries=retries)
        finally:
            self.end_span(span)
        return result

    def _broadcast(self, mtype: str, *, retries: Optional[int] = None):
        attempts = self.config.ack_retries if retries is None else retries
        acked = 0
        remote = []
        for participant in sorted(self.participants.values(), key=lambda p: p.site):
            if participant.site == self.home.name:
                self._local_decision(mtype)
                acked += 1
            else:
                remote.append(participant)

        results = yield from self._gather(
            self._broadcast_one(participant, mtype, attempts) for participant in remote
        )
        acked += sum(1 for ok in results if ok)
        if mtype == MessageType.PRECOMMIT and self.config.hit_failpoint("after_precommit"):
            # Crash between PRECOMMIT and COMMIT: under 3PC the termination
            # protocol lets the precommitted participants commit without us.
            self.home.crash()
            raise Interrupt("failpoint: after_precommit")
        return acked

    def _local_decision(self, mtype: str) -> None:
        if mtype == MessageType.COMMIT:
            self.home.local_commit(self.txn.txn_id)
        elif mtype == MessageType.ABORT:
            self.home.local_abort(self.txn.txn_id)
        elif mtype == MessageType.PRECOMMIT:
            self.home.local_precommit(self.txn.txn_id)

    def _broadcast_one(self, participant: Participant, mtype: str, attempts: int):
        for _attempt in range(max(1, attempts)):
            try:
                yield self.home.endpoint.request(
                    participant.address,
                    mtype,
                    {"txn": self.txn.txn_id},
                    timeout=self.config.ack_timeout,
                    txn_id=self.txn.txn_id,
                    span=self.trace_context(),
                )
                return True
            except (RpcTimeout, NetworkError):
                continue
        return False

    def log_decision(self, decision: str) -> None:
        """Force the coordinator's decision record at the home site."""
        if decision == "COMMIT":
            self.home.wal.log_commit(self.txn.txn_id, self.sim.now)
        else:
            self.home.wal.log_abort(self.txn.txn_id, self.sim.now)
        self.txn.decided_at = self.sim.now

    def log_end_if_complete(self, acked: int) -> None:
        """Force END once every participant acknowledged the decision.

        With the full ack round collected, no participant can ever be in
        doubt about this transaction again, so the coordinator's COMMIT
        record may be dropped by future checkpoints (presumed abort's END
        record).  An incomplete round leaves the record pinned until the
        silent participants resolve through DECISION_REQ.
        """
        if acked == len(self.participants):
            self.home.wal.log_end(self.txn.txn_id, self.sim.now)


_OP_SPAN_NAMES = {
    OpKind.READ: "rcp.read",
    OpKind.WRITE: "rcp.write",
    OpKind.INCREMENT: "rcp.increment",
}


def run_transaction(ctx: TxnContext):
    """Process one transaction end to end (RCP loop, then ACP).

    Returns the transaction's final status string; all bookkeeping happens
    on ``ctx.txn`` and through the monitor.
    """
    txn = ctx.txn
    sim = ctx.sim
    txn.started_at = sim.now
    # Unique, arrival-ordered timestamps (TO protocols need uniqueness).
    txn.ts = sim.now + (txn.txn_id % 1_000_000) * 1e-9
    txn.status = TxnStatus.RUNNING
    if ctx.monitor is not None:
        ctx.monitor.txn_started(txn)
    if ctx.tracer is not None:
        # Root span covers [submission, decision] — exactly the monitor's
        # response time — so a txn's phase breakdown sums to it.  The time
        # between submission and this process starting (WLG dispatch, the
        # TXN_SUBMIT flight) is recorded as a complete "dispatch" child.
        ctx.root_span = ctx.tracer.begin(
            txn.txn_id,
            ctx.home.name,
            "txn",
            start=txn.submitted_at,
            attempt=txn.attempt,
        )
        if sim.now > txn.submitted_at:
            ctx.tracer.record(
                txn.txn_id,
                ctx.home.name,
                "dispatch",
                start=txn.submitted_at,
                end=sim.now,
                parent=ctx.root_span.span_id,
            )

    try:
        final = len(txn.ops) - 1
        for index, op in enumerate(txn.ops):
            op_span = ctx.begin_span(_OP_SPAN_NAMES[op.kind], item=op.item)
            try:
                if op.kind == OpKind.READ:
                    if index == final:
                        ctx.arm_piggyback()
                    txn.reads[op.item] = yield from ctx.rcp.do_read(ctx, op.item)
                elif op.kind == OpKind.INCREMENT:
                    # Arm only around the write half: preparing a participant
                    # during the read half would freeze its workspace before
                    # the increment's prewrite lands.
                    current = yield from ctx.rcp.do_read(ctx, op.item)
                    txn.reads[op.item] = current
                    if index == final:
                        ctx.arm_piggyback()
                    yield from ctx.rcp.do_write(ctx, op.item, current + op.value)
                else:
                    if index == final:
                        ctx.arm_piggyback()
                    yield from ctx.rcp.do_write(ctx, op.item, op.value)
            finally:
                ctx.end_span(op_span)
        yield from ctx.acp.run(ctx)
        txn.status = TxnStatus.COMMITTED
    except CommitAbort as abort:
        # The ACP has already propagated the abort to the participants.
        _mark_aborted(txn, abort, sim.now)
    except TransactionAborted as abort:
        _mark_aborted(txn, abort, sim.now)
        ctx.invalidate_spec_cache()
        try:
            yield from ctx.broadcast(MessageType.ABORT, retries=1)
        except Interrupt:
            pass  # the home site crashed while cleaning up
    except Interrupt:
        # The paper's orphan statistic: the coordinator died before a
        # decision was logged, stranding prepared participants in doubt.
        txn.orphaned = txn.decided_at is None
        _mark_aborted(txn, None, sim.now, cause="SYSTEM", detail="home site crashed")
    finally:
        txn.finished_at = sim.now
        if txn.decided_at is None:
            txn.decided_at = sim.now
        if ctx.tracer is not None and ctx.root_span is not None:
            ctx.tracer.finish(ctx.root_span, end=txn.decided_at)
        if ctx.monitor is not None:
            ctx.monitor.txn_finished(txn, ctx)
    return txn.status


def _mark_aborted(txn, abort, now, cause=None, detail=None):
    txn.status = TxnStatus.ABORTED
    txn.abort_cause = cause if cause is not None else abort.cause
    txn.abort_detail = detail if detail is not None else abort.detail or str(abort)
    if txn.decided_at is None:
        txn.decided_at = now
