"""Transactions: model, home-site coordinator, histories."""

from repro.txn.coordinator import (
    AccessResult,
    CoordinatorConfig,
    Participant,
    TxnContext,
    run_transaction,
)
from repro.txn.history import CommittedTxn, HistoryRecorder, SerializationGraph
from repro.txn.transaction import Operation, OpKind, Transaction, TxnStatus, next_txn_id

__all__ = [
    "AccessResult",
    "CommittedTxn",
    "CoordinatorConfig",
    "HistoryRecorder",
    "Operation",
    "OpKind",
    "Participant",
    "SerializationGraph",
    "Transaction",
    "TxnContext",
    "TxnStatus",
    "next_txn_id",
    "run_transaction",
]
