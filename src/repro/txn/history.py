"""Execution histories and a one-copy-serializability checker.

Rainbow lets students "observe local as well as global executions
(history…)".  The :class:`HistoryRecorder` collects the *committed* global
history in version-order form: which version each committed transaction
read per item, and which version it installed.  From that we build the
serialization (conflict) graph over committed transactions:

* **wr**: the writer of version ``v`` precedes every reader of ``v``;
* **ww**: the writer of version ``v`` precedes the writer of the next
  version of the same item;
* **rw**: a reader of version ``v`` precedes the writer of the next
  version (it must be serialized before the overwrite it did not see).

If the graph is acyclic the committed execution is equivalent to a serial
one-copy execution (view serializability over the version order).  With
correct RCP+CCP+ACP implementations the check always passes — which makes
it the central *property test* of the whole stack: any protocol bug that
lets a non-serializable interleaving commit trips the cycle detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CommittedTxn", "HistoryRecorder", "SerializationGraph"]

_INITIAL_WRITER = 0  # pseudo-transaction that wrote version 0 of everything


@dataclass
class CommittedTxn:
    """The version footprint of one committed transaction."""

    txn_id: int
    reads: dict[str, float] = field(default_factory=dict)  # item -> version read
    writes: dict[str, float] = field(default_factory=dict)  # item -> version written
    committed_at: float = 0.0


class SerializationGraph:
    """Conflict graph over committed transactions with cycle detection."""

    def __init__(self):
        self.edges: dict[int, set[int]] = {}
        self.nodes: set[int] = set()

    def add_node(self, txn: int) -> None:
        self.nodes.add(txn)
        self.edges.setdefault(txn, set())

    def add_edge(self, before: int, after: int) -> None:
        """Record that ``before`` must serialize before ``after``."""
        if before == after:
            return
        self.add_node(before)
        self.add_node(after)
        self.edges[before].add(after)

    def find_cycle(self) -> Optional[list[int]]:
        """Return one cycle as a node list, or None if the graph is acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self.nodes}
        parent: dict[int, int] = {}

        for root in sorted(self.nodes):
            if colour[root] != WHITE:
                continue
            stack = [(root, iter(sorted(self.edges.get(root, ()))))]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(sorted(self.edges.get(child, ())))))
                        advanced = True
                        break
                    if colour[child] == GREY:
                        cycle = [child, node]
                        walk = node
                        while walk != child:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def to_dot(self, highlight: Optional[list[int]] = None) -> str:
        """Graphviz DOT rendering of the serialization graph.

        ``highlight`` (e.g. a cycle from :meth:`find_cycle`) is drawn in
        red — handy for lab reports: ``dot -Tpng graph.dot -o graph.png``.
        """
        hot = set(highlight or [])
        lines = ["digraph serialization {", "  rankdir=LR;"]
        for node in sorted(self.nodes):
            style = ' [color=red, fontcolor=red]' if node in hot else ""
            lines.append(f'  "T{node}"{style};')
        for node in sorted(self.edges):
            for successor in sorted(self.edges[node]):
                style = (
                    " [color=red]" if node in hot and successor in hot else ""
                )
                lines.append(f'  "T{node}" -> "T{successor}"{style};')
        lines.append("}")
        return "\n".join(lines)

    def topological_order(self) -> Optional[list[int]]:
        """A serial order witnessing serializability, or None if cyclic."""
        in_degree = {node: 0 for node in self.nodes}
        for node, successors in self.edges.items():
            for successor in successors:
                in_degree[successor] += 1
        ready = sorted(node for node, degree in in_degree.items() if degree == 0)
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for successor in sorted(self.edges.get(node, ())):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(order) != len(self.nodes):
            return None
        return order


class HistoryRecorder:
    """Collects the committed global history of a Rainbow session."""

    def __init__(self):
        self.committed: list[CommittedTxn] = []

    def record_commit(
        self,
        txn_id: int,
        reads: dict[str, float],
        writes: dict[str, float],
        committed_at: float = 0.0,
    ) -> None:
        """Record the version footprint of a committed transaction."""
        self.committed.append(
            CommittedTxn(
                txn_id=txn_id,
                reads=dict(reads),
                writes=dict(writes),
                committed_at=committed_at,
            )
        )

    def __len__(self) -> int:
        return len(self.committed)

    # -- graph construction ----------------------------------------------------
    def build_graph(self) -> SerializationGraph:
        """Build the wr/ww/rw conflict graph of the committed history."""
        graph = SerializationGraph()
        writers: dict[str, list[tuple[float, int]]] = {}
        readers: dict[str, list[tuple[float, int]]] = {}

        for txn in self.committed:
            graph.add_node(txn.txn_id)
            for item, version in txn.writes.items():
                writers.setdefault(item, []).append((version, txn.txn_id))
            for item, version in txn.reads.items():
                readers.setdefault(item, []).append((version, txn.txn_id))

        for item, write_list in writers.items():
            write_list.sort()
            # ww edges along the version chain
            for (v1, t1), (v2, t2) in zip(write_list, write_list[1:]):
                graph.add_edge(t1, t2)

        for item, read_list in readers.items():
            write_list = sorted(writers.get(item, []))
            versions = [v for v, _txn in write_list]
            for version_read, reader in read_list:
                # wr edge: the writer of the version read comes first.
                writer = self._writer_of(write_list, version_read)
                if writer is not None:
                    graph.add_edge(writer, reader)
                # rw edge: the reader precedes the next overwrite.
                next_writer = self._next_writer(write_list, versions, version_read)
                if next_writer is not None:
                    graph.add_edge(reader, next_writer)
        return graph

    @staticmethod
    def _writer_of(write_list: list[tuple[float, int]], version: float) -> Optional[int]:
        for v, txn in write_list:
            if v == version:
                return txn
        return None  # version 0 / initial state

    @staticmethod
    def _next_writer(
        write_list: list[tuple[float, int]], versions: list[float], version: float
    ) -> Optional[int]:
        for v, txn in write_list:
            if v > version:
                return txn
        return None

    # -- checks -----------------------------------------------------------------
    def check_serializable(self) -> tuple[bool, Optional[list[int]]]:
        """``(True, serial_order)`` if 1SR holds, else ``(False, cycle)``."""
        graph = self.build_graph()
        cycle = graph.find_cycle()
        if cycle is not None:
            return False, cycle
        return True, graph.topological_order()

    def version_collisions(self) -> list[str]:
        """Detect two committed writers installing the same version.

        A correct RCP+CCP stack assigns each committed write of an item a
        distinct version, so collisions are a protocol violation (the
        second write physically overwrote the first at equal version — a
        lost update).  The broken classroom protocol (NOCC) trips this.
        """
        seen: dict[tuple[str, float], int] = {}
        problems = []
        for txn in self.committed:
            for item, version in txn.writes.items():
                key = (item, version)
                if key in seen:
                    problems.append(
                        f"{item}@{version} written by both T{seen[key]} and T{txn.txn_id}"
                    )
                else:
                    seen[key] = txn.txn_id
        return problems

    def reads_see_committed_versions(self) -> list[str]:
        """Sanity check: every version read was version 0 or was written.

        Returns a list of violation descriptions (empty when clean).
        """
        written: dict[str, set[float]] = {}
        for txn in self.committed:
            for item, version in txn.writes.items():
                written.setdefault(item, set()).add(version)
        problems = []
        for txn in self.committed:
            for item, version in txn.reads.items():
                if version != _INITIAL_WRITER and version not in written.get(item, set()):
                    problems.append(
                        f"T{txn.txn_id} read {item}@{version} which no committed txn wrote"
                    )
        return problems
