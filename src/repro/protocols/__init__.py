"""Rainbow's pluggable transaction-processing protocols.

Importing this package registers the stock protocols:

* RCP — ``ROWA``, ``QC`` (default)
* CCP — ``2PL``, ``TSO``, ``MVTO`` (extension)
* ACP — ``2PC`` (default), ``3PC`` (extension)
"""

from repro.protocols import acp, ccp, rcp  # noqa: F401 - side-effect registration
from repro.protocols.base import (
    CommitProtocol,
    ConcurrencyController,
    ReplicationController,
    acp_registry,
    ccp_registry,
    make_acp,
    make_ccp,
    make_rcp,
    rcp_registry,
    register_acp,
    register_ccp,
    register_rcp,
)

__all__ = [
    "CommitProtocol",
    "ConcurrencyController",
    "ReplicationController",
    "acp_registry",
    "ccp_registry",
    "make_acp",
    "make_ccp",
    "make_rcp",
    "rcp_registry",
    "register_acp",
    "register_ccp",
    "register_rcp",
]
