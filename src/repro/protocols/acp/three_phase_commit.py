"""Three-phase commit (3PC) — the paper's suggested term-project extension.

Adds the PRECOMMIT buffer state between the vote and the decision so that
no participant can be uncertain while another has already committed.
Under the fail-stop/no-partition assumptions 3PC makes, a coordinator
failure never blocks participants: the termination protocol implemented in
:meth:`repro.site.site.Site._terminate_3pc` lets them decide among
themselves (any PRECOMMITTED ⇒ commit; all uncertain ⇒ abort).

The coordinator side here:

1. VOTE_REQ round (as in 2PC; any NO or silence ⇒ abort).
2. PRECOMMIT round — participants force a PRECOMMIT record and ack.
   Silent participants are tolerated (they will terminate correctly).
3. Force the COMMIT record, broadcast COMMIT.

EXP-ACP contrasts the two protocols under coordinator crashes: 2PC leaves
orphans blocked for the whole outage; 3PC resolves them within the
termination timeout.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import CommitAbort
from repro.net.message import MessageType
from repro.protocols.base import CommitProtocol

__all__ = ["ThreePhaseCommit"]


class ThreePhaseCommit(CommitProtocol):
    """Centralised 3PC with the participant-side termination protocol."""

    name = "3PC"

    def run(self, ctx) -> Generator:
        all_yes, detail = yield from ctx.collect_votes(self.name)
        if not all_yes:
            ctx.log_decision("ABORT")
            yield from ctx.broadcast(MessageType.ABORT)
            raise CommitAbort(f"vote phase failed: {detail}")
        yield from ctx.broadcast(MessageType.PRECOMMIT)
        ctx.log_decision("COMMIT")
        acked = yield from ctx.broadcast(MessageType.COMMIT)
        ctx.log_end_if_complete(acked)
        return "COMMIT"
