"""Two-phase commit (2PC) — Rainbow's default ACP.

Phase 1: the coordinator sends VOTE_REQ to every participant (including
itself, via a local call); each participant forces a PREPARE record and
votes.  A missing vote (crash, partition) counts as NO after
``vote_timeout``.

Phase 2: on unanimous YES the coordinator forces its COMMIT record — the
moment the transaction is decided — and broadcasts COMMIT, retrying a few
times; participants that stay silent will learn the decision later through
DECISION_REQ (presumed abort).  Any NO ⇒ force ABORT and broadcast it.

2PC's known weakness is reproduced faithfully: participants that voted YES
are *blocked* while the coordinator is down — they are Rainbow's "orphan
transactions" until the coordinator site recovers and answers decision
requests.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import CommitAbort
from repro.net.message import MessageType
from repro.protocols.base import CommitProtocol

__all__ = ["TwoPhaseCommit"]


class TwoPhaseCommit(CommitProtocol):
    """Centralised presumed-abort 2PC."""

    name = "2PC"

    def run(self, ctx) -> Generator:
        all_yes, detail = yield from ctx.collect_votes(self.name)
        if not all_yes:
            ctx.log_decision("ABORT")
            yield from ctx.broadcast(MessageType.ABORT)
            raise CommitAbort(f"vote phase failed: {detail}")
        ctx.log_decision("COMMIT")
        acked = yield from ctx.broadcast(MessageType.COMMIT)
        ctx.log_end_if_complete(acked)
        return "COMMIT"
