"""Atomic commit protocols (ACP): 2PC and the 3PC extension."""

from repro.protocols.base import register_acp
from repro.protocols.acp.three_phase_commit import ThreePhaseCommit
from repro.protocols.acp.two_phase_commit import TwoPhaseCommit

register_acp("2PC", TwoPhaseCommit)
register_acp("3PC", ThreePhaseCommit)

__all__ = ["ThreePhaseCommit", "TwoPhaseCommit"]
