"""Optimistic concurrency control (OCC) — backward validation at prepare.

Another protocol of the paper's "students can add protocols" family.
Execution is completely conflict-free: reads return the committed copy and
record the version observed; pre-writes just buffer.  The conflict check
happens when 2PC asks for the vote — :meth:`validate` performs backward
validation at each participant:

* every version this transaction *read* must still be current, and
* every copy it intends to overwrite must still be at the version seen at
  pre-write time, and
* it must not overlap (read-write or write-write) with a transaction that
  already validated here and is awaiting its global decision (parallel
  validation à la Kung–Robinson: validated-but-uncommitted writers win).

A failed validation is a NO vote, so OCC conflicts surface as **ACP
aborts** in the statistics — the protocol's signature compared to 2PL
(CCP aborts while executing) is part of what the classroom exercise is
meant to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.protocols.ccp.workspace import WorkspaceController
from repro.site.storage import LocalStore
from repro.sim.kernel import Simulator

__all__ = ["OptimisticController"]


@dataclass
class _Footprint:
    reads: dict[str, float] = field(default_factory=dict)  # item -> version seen
    writes: dict[str, float] = field(default_factory=dict)  # item -> version seen


class OptimisticController(WorkspaceController):
    """OCC with backward + parallel validation."""

    name = "OCC"

    def __init__(self, sim: Simulator, store: LocalStore):
        super().__init__(sim, store)
        self._footprints: dict[int, _Footprint] = {}
        self._validated: dict[int, _Footprint] = {}
        self.validation_failures = 0

    def _footprint(self, txn_id: int) -> _Footprint:
        footprint = self._footprints.get(txn_id)
        if footprint is None:
            footprint = _Footprint()
            self._footprints[txn_id] = footprint
        return footprint

    # -- operations (never wait, never reject) --------------------------------
    def read(self, txn_id: int, ts: float, item: str) -> Generator:
        self._check_doom(txn_id)
        self.stats.reads += 1
        written, value = self._buffered_value(txn_id, item)
        if written:
            return value, self.store.version(item)
        value, version = self.store.read(item)
        self._footprint(txn_id).reads[item] = version
        return value, version
        yield  # pragma: no cover - generator marker

    def prewrite(self, txn_id: int, ts: float, item: str, value: Any) -> Generator:
        self._check_doom(txn_id)
        self.stats.prewrites += 1
        self._buffer(txn_id, item, value)
        version = self.store.version(item)
        self._footprint(txn_id).writes[item] = version
        return version
        yield  # pragma: no cover - generator marker

    # -- validation (the OCC moment) --------------------------------------------
    def validate(self, txn_id: int) -> tuple[bool, str]:
        """Backward + parallel validation; reserves the footprint on success."""
        footprint = self._footprints.get(txn_id, _Footprint())
        # Backward: everything observed must still be current.  Reads and
        # writes are checked separately: a read-modify-write item appears
        # in both with possibly different observed versions, and merging
        # the dicts would let a fresher write base mask a stale read.
        for label, observed in (("read", footprint.reads), ("write base", footprint.writes)):
            for item, seen in observed.items():
                current = self.store.version(item)
                if current != seen:
                    self.validation_failures += 1
                    return False, f"{label} of {item} moved {seen}->{current}"
        # Parallel: no overlap with validated-but-undecided transactions.
        my_reads = set(footprint.reads)
        my_writes = set(footprint.writes)
        for other_id, other in self._validated.items():
            if other_id == txn_id:
                continue
            other_writes = set(other.writes)
            if my_reads & other_writes or my_writes & other_writes:
                self.validation_failures += 1
                overlap = sorted((my_reads | my_writes) & other_writes)
                return False, f"overlaps validated txn{other_id} on {overlap}"
        self._validated[txn_id] = footprint
        return True, "validated"

    # -- termination -----------------------------------------------------------
    def commit(self, txn_id: int, versions: dict[str, int]) -> None:
        self._apply_workspace(txn_id, versions)
        self._footprints.pop(txn_id, None)
        self._validated.pop(txn_id, None)
        self.stats.commits += 1

    def abort(self, txn_id: int) -> None:
        self._drop(txn_id)
        self._footprints.pop(txn_id, None)
        self._validated.pop(txn_id, None)
        self.stats.aborts += 1

    def active_transactions(self) -> set[int]:
        return set(self._workspace) | set(self._footprints)

    def clear(self) -> None:
        self._workspace.clear()
        self._doomed.clear()
        self._footprints.clear()
        self._validated.clear()
