"""Concurrency-control protocols (CCP): 2PL, TSO, MVTO, and OCC."""

from repro.protocols.base import register_ccp
from repro.protocols.ccp.multiversion import MultiversionTimestampController
from repro.protocols.ccp.optimistic import OptimisticController
from repro.protocols.ccp.timestamp_ordering import TimestampOrderingController
from repro.protocols.ccp.two_phase_locking import TwoPhaseLockingController
from repro.protocols.ccp.workspace import CcpStats, WorkspaceController

register_ccp("2PL", TwoPhaseLockingController)
register_ccp("TSO", TimestampOrderingController)
register_ccp("MVTO", MultiversionTimestampController)
register_ccp("OCC", OptimisticController)

__all__ = [
    "CcpStats",
    "MultiversionTimestampController",
    "OptimisticController",
    "TimestampOrderingController",
    "TwoPhaseLockingController",
    "WorkspaceController",
]
