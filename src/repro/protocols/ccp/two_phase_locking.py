"""Strict two-phase locking (2PL) concurrency controller.

Reads take shared locks, pre-writes take exclusive locks, and everything is
held until the transaction's global commit or abort reaches this site
(strict 2PL — required for 2PC to be able to abort cleanly).  Deadlock
handling is delegated to the site's :class:`~repro.site.locks.LockManager`
and is configurable (detection, timeout, wait-die, wound-wait).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.protocols.ccp.workspace import WorkspaceController
from repro.site.locks import LockManager, LockMode
from repro.site.storage import LocalStore
from repro.sim.kernel import Simulator

__all__ = ["TwoPhaseLockingController"]


class TwoPhaseLockingController(WorkspaceController):
    """Strict 2PL over the site's lock manager."""

    name = "2PL"

    def __init__(
        self,
        sim: Simulator,
        store: LocalStore,
        *,
        deadlock_strategy: str = "detect",
        wait_timeout: Optional[float] = 60.0,
    ):
        super().__init__(sim, store)
        self.locks = LockManager(
            sim,
            strategy=deadlock_strategy,
            wait_timeout=wait_timeout,
            on_wound=self.doom,
        )

    def read(self, txn_id: int, ts: float, item: str) -> Generator:
        self._check_doom(txn_id)
        self.stats.reads += 1
        grant = self.locks.acquire(txn_id, ts, item, LockMode.S)
        if not grant.triggered:
            self.stats.waits += 1
        try:
            yield grant
        except Exception:
            self.stats.rejections += 1
            raise
        self._check_doom(txn_id)  # wounded while waiting
        written, value = self._buffered_value(txn_id, item)
        if written:
            return value, self.store.version(item)
        return self.store.read(item)

    def prewrite(self, txn_id: int, ts: float, item: str, value: Any) -> Generator:
        self._check_doom(txn_id)
        self.stats.prewrites += 1
        grant = self.locks.acquire(txn_id, ts, item, LockMode.X)
        if not grant.triggered:
            self.stats.waits += 1
        try:
            yield grant
        except Exception:
            self.stats.rejections += 1
            raise
        self._check_doom(txn_id)
        self._buffer(txn_id, item, value)
        return self.store.version(item)

    def commit(self, txn_id: int, versions: dict[str, int]) -> None:
        self._apply_workspace(txn_id, versions)
        self.locks.release_all(txn_id)
        self.stats.commits += 1

    def abort(self, txn_id: int) -> None:
        self._drop(txn_id)
        self.locks.release_all(txn_id)
        self.stats.aborts += 1

    def reinstate(self, txn_id: int, ts: float, writes: dict[str, Any]) -> None:
        super().reinstate(txn_id, ts, writes)
        # Right after a crash the lock table is empty, so these X locks are
        # granted immediately; they re-establish the exclusion the in-doubt
        # transaction held before the crash.
        for item in writes:
            self.locks.acquire(txn_id, ts, item, LockMode.X)

    def clear(self) -> None:
        self.locks.clear()
        self._workspace.clear()
        self._doomed.clear()
