"""Shared workspace machinery for concurrency controllers.

All three CCPs buffer uncommitted writes in a per-transaction, per-site
workspace and only touch the committed store at commit.  This base class
owns that workspace plus the *doomed* set (transactions that must abort —
wound-wait victims, or in-doubt leftovers recovery resolved to abort).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConcurrencyAbort
from repro.protocols.base import ConcurrencyController
from repro.sim.kernel import Simulator
from repro.site.storage import LocalStore

__all__ = ["WorkspaceController", "CcpStats"]


@dataclass
class CcpStats:
    """Counters every CCP exposes to the progress monitor."""

    reads: int = 0
    prewrites: int = 0
    rejections: int = 0
    waits: int = 0
    commits: int = 0
    aborts: int = 0


class WorkspaceController(ConcurrencyController):
    """Base class: workspace + doom handling; subclasses add the ordering."""

    def __init__(self, sim: Simulator, store: LocalStore):
        self.sim = sim
        self.store = store
        self.stats = CcpStats()
        self._workspace: dict[int, dict[str, Any]] = {}
        self._doomed: set[int] = set()

    # -- workspace ------------------------------------------------------------
    def buffered_writes(self, txn_id: int) -> dict[str, Any]:
        return dict(self._workspace.get(txn_id, {}))

    def _buffer(self, txn_id: int, item: str, value: Any) -> None:
        self._workspace.setdefault(txn_id, {})[item] = value

    def _buffered_value(self, txn_id: int, item: str):
        """``(True, value)`` if the txn wrote ``item`` here, else ``(False, None)``."""
        workspace = self._workspace.get(txn_id)
        if workspace is not None and item in workspace:
            return True, workspace[item]
        return False, None

    def _drop(self, txn_id: int) -> dict[str, Any]:
        self._doomed.discard(txn_id)
        return self._workspace.pop(txn_id, {})

    # -- dooming ------------------------------------------------------------
    def doom(self, txn_id: int) -> None:
        self._doomed.add(txn_id)

    def is_doomed(self, txn_id: int) -> bool:
        return txn_id in self._doomed

    def _check_doom(self, txn_id: int) -> None:
        if txn_id in self._doomed:
            self.stats.rejections += 1
            raise ConcurrencyAbort(f"txn{txn_id} doomed at site {self.store.site_name}")

    # -- recovery ------------------------------------------------------------
    def reinstate(self, txn_id: int, ts: float, writes: dict[str, Any]) -> None:
        """Rebuild the workspace of an in-doubt transaction after a crash.

        Subclasses additionally restore their ordering state (locks for
        2PL, pending pre-writes for TSO/MVTO) so that the in-doubt
        transaction keeps excluding conflicting work until its decision is
        learned — the essence of why 2PC "blocks".
        """
        for item, value in writes.items():
            self._buffer(txn_id, item, value)

    # -- bookkeeping ------------------------------------------------------------
    def active_transactions(self) -> set[int]:
        return set(self._workspace)

    def _apply_workspace(self, txn_id: int, versions: dict[str, int]) -> None:
        """Write the workspace into the committed store."""
        for item, value in self._drop(txn_id).items():
            version = versions.get(item)
            if version is None:
                version = self.store.version(item) + 1
            self.store.apply(item, value, version, txn_id, self.sim.now)
