"""Multiversion timestamp ordering (MVTO).

The paper suggests "replacing … basic timestamp ordering by multi-versioning
TSO" as a term project; this is that extension.  Each item keeps a chain of
committed versions ``(wts, value, rts)``:

* ``read(ts)`` selects the version with the largest ``wts <= ts`` and
  advances its ``rts``.  Reads never get rejected; they only *wait* when a
  pending pre-write that the reader should observe (``chosen.wts < pts <=
  ts``) is still uncommitted.
* ``prewrite(ts)`` finds the same version; it is rejected only if that
  version was already read at some ``rts > ts`` (installing the new version
  would invalidate that read).

Read-heavy workloads therefore keep their throughput under contention —
the qualitative win EXP-CCP demonstrates.

The committed chain is mirrored into the site's single-version
:class:`~repro.site.storage.LocalStore` (latest version wins) so quorum
version numbers and recovery behave identically across CCPs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.errors import ConcurrencyAbort
from repro.protocols.ccp.workspace import WorkspaceController
from repro.site.storage import LocalStore
from repro.sim.kernel import Event, Simulator

__all__ = ["MultiversionTimestampController"]


@dataclass
class _Version:
    wts: float
    value: Any
    rts: float


@dataclass
class _MvItem:
    versions: list[_Version] = field(default_factory=list)  # sorted by wts
    pending: dict[int, float] = field(default_factory=dict)  # txn -> ts
    waiters: list[Event] = field(default_factory=list)

    def select(self, ts: float) -> Optional[_Version]:
        """Committed version with the largest wts <= ts."""
        keys = [v.wts for v in self.versions]
        index = bisect.bisect_right(keys, ts) - 1
        return self.versions[index] if index >= 0 else None

    def insert(self, version: _Version) -> None:
        keys = [v.wts for v in self.versions]
        self.versions.insert(bisect.bisect_right(keys, version.wts), version)

    def wake(self) -> None:
        waiters, self.waiters = self.waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(None)


class MultiversionTimestampController(WorkspaceController):
    """MVTO over per-item version chains."""

    name = "MVTO"
    #: Versions under MVTO *are* writer timestamps; the coordinator must
    #: stamp writes with txn.ts rather than max(version)+1.
    timestamp_versions = True

    def __init__(
        self,
        sim: Simulator,
        store: LocalStore,
        *,
        wait_timeout: Optional[float] = 120.0,
        max_versions: int = 64,
    ):
        super().__init__(sim, store)
        self.wait_timeout = wait_timeout
        self.max_versions = max_versions
        self._items: dict[str, _MvItem] = {}
        self._ts_of: dict[int, float] = {}

    def _item(self, item: str) -> _MvItem:
        record = self._items.get(item)
        if record is None:
            value, version = self.store.read(item)
            record = _MvItem(versions=[_Version(wts=float(version), value=value, rts=float(version))])
            self._items[item] = record
        return record

    # -- operations -------------------------------------------------------------
    def read(self, txn_id: int, ts: float, item: str) -> Generator:
        self._check_doom(txn_id)
        self.stats.reads += 1
        record = self._item(item)
        while True:
            written, value = self._buffered_value(txn_id, item)
            if written:
                return value, self.store.version(item)
            chosen = record.select(ts)
            if chosen is None:
                # No committed version at or below ts (only possible with
                # negative timestamps); treat like a too-late read.
                self.stats.rejections += 1
                raise ConcurrencyAbort(f"MVTO: no version of {item!r} at ts={ts:.4f}")
            blocking = any(
                chosen.wts < pts <= ts
                for pending_txn, pts in record.pending.items()
                if pending_txn != txn_id
            )
            if blocking:
                self.stats.waits += 1
                yield self._wait(record)
                self._check_doom(txn_id)
                continue
            chosen.rts = max(chosen.rts, ts)
            return chosen.value, chosen.wts

    def prewrite(self, txn_id: int, ts: float, item: str, value: Any) -> Generator:
        self._check_doom(txn_id)
        self.stats.prewrites += 1
        record = self._item(item)
        chosen = record.select(ts)
        if chosen is not None and chosen.rts > ts:
            self.stats.rejections += 1
            raise ConcurrencyAbort(
                f"MVTO prewrite invalidates read: rts={chosen.rts:.4f} > ts={ts:.4f} on {item!r}"
            )
        self._buffer(txn_id, item, value)
        record.pending[txn_id] = ts
        self._ts_of[txn_id] = ts
        return self.store.version(item)
        yield  # pragma: no cover - generator marker

    # -- termination -------------------------------------------------------------
    def commit(self, txn_id: int, versions: dict[str, int]) -> None:
        ts = self._ts_of.pop(txn_id, None)
        workspace = self.buffered_writes(txn_id)
        for item, value in workspace.items():
            record = self._item(item)
            pts = record.pending.pop(txn_id, ts if ts is not None else 0.0)
            record.insert(_Version(wts=pts, value=value, rts=pts))
            if len(record.versions) > self.max_versions:
                del record.versions[0: len(record.versions) - self.max_versions]
            record.wake()
            # Mirror the newest version into the single-version store so
            # quorum version numbers and recovery are CCP-independent.
            newest = record.versions[-1]
            self.store.apply(item, newest.value, newest.wts, txn_id, self.sim.now)
        self._drop(txn_id)
        self.stats.commits += 1

    def abort(self, txn_id: int) -> None:
        self._ts_of.pop(txn_id, None)
        for item in self.buffered_writes(txn_id):
            record = self._item(item)
            record.pending.pop(txn_id, None)
            record.wake()
        self._drop(txn_id)
        self.stats.aborts += 1

    def reinstate(self, txn_id: int, ts: float, writes: dict[str, Any]) -> None:
        super().reinstate(txn_id, ts, writes)
        self._ts_of[txn_id] = ts
        for item in writes:
            self._item(item).pending[txn_id] = ts

    def clear(self) -> None:
        for record in self._items.values():
            for event in record.waiters:
                if not event.triggered:
                    event.fail(ConcurrencyAbort("MVTO state cleared (site crash)"))
        self._items.clear()
        self._workspace.clear()
        self._doomed.clear()
        self._ts_of.clear()

    # -- introspection (used by tests and the monitor) ----------------------------
    def version_count(self, item: str) -> int:
        """Number of committed versions currently kept for ``item``."""
        return len(self._item(item).versions)

    # -- helpers ---------------------------------------------------------------------
    def _wait(self, record: _MvItem) -> Event:
        event = self.sim.event(name="mvto-wait")
        record.waiters.append(event)
        if self.wait_timeout is not None:

            def _expire() -> None:
                if not event.triggered:
                    self.stats.rejections += 1
                    event.fail(ConcurrencyAbort("MVTO wait timeout"))

            self.sim.call_later(self.wait_timeout, _expire)
        return event
