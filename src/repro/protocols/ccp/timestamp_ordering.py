"""Basic timestamp ordering (TSO) concurrency controller.

Each transaction carries a unique timestamp assigned at its home site.
Per item the controller tracks the largest committed read and write
timestamps plus the set of *pending* pre-writes (accepted but not yet
committed through 2PC).  The classic rules (Bernstein/Goodman "basic TO
with pre-write buffering"):

* ``read(ts)`` — rejected if ``ts < write_ts``; must *wait* while a pending
  pre-write with a smaller timestamp exists (the reader's correct value is
  still in flight); otherwise executes and advances ``read_ts``.
* ``prewrite(ts)`` — rejected if ``ts < read_ts`` or ``ts < write_ts``;
  otherwise buffered.  Pre-writes never wait, so a transaction with a
  smaller timestamp never waits for a larger one and the waits-for relation
  is acyclic: TSO has rejections and waits but no deadlocks.

A wait timeout (default generous) backstops pathological cases where the
blocking pre-write's coordinator crashed; the orphan-cleanup machinery in
the site normally resolves those first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.errors import ConcurrencyAbort
from repro.protocols.ccp.workspace import WorkspaceController
from repro.site.storage import LocalStore
from repro.sim.kernel import Event, Simulator

__all__ = ["TimestampOrderingController"]


@dataclass
class _TsoItem:
    read_ts: float = -1.0
    write_ts: float = -1.0
    pending: dict[int, float] = field(default_factory=dict)  # txn -> ts
    waiters: list[Event] = field(default_factory=list)

    def min_pending_below(self, ts: float) -> Optional[float]:
        smaller = [pts for pts in self.pending.values() if pts < ts]
        return min(smaller) if smaller else None

    def wake(self) -> None:
        waiters, self.waiters = self.waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(None)


class TimestampOrderingController(WorkspaceController):
    """Basic TO with pre-write buffering."""

    name = "TSO"
    #: Under TO the installation order of writes is timestamp order, so the
    #: coordinator must stamp writes with txn.ts: two concurrent writers
    #: would otherwise both compute version max+1 and the store could apply
    #: them in arrival order instead of ts order (a lost update the
    #: serializability property test caught).  With ts versions the store's
    #: version check *is* the Thomas write rule.
    timestamp_versions = True

    def __init__(
        self,
        sim: Simulator,
        store: LocalStore,
        *,
        wait_timeout: Optional[float] = 120.0,
    ):
        super().__init__(sim, store)
        self.wait_timeout = wait_timeout
        self._items: dict[str, _TsoItem] = {}
        self._ts_of: dict[int, float] = {}

    def _item(self, item: str) -> _TsoItem:
        record = self._items.get(item)
        if record is None:
            record = _TsoItem()
            self._items[item] = record
        return record

    # -- operations -----------------------------------------------------------
    def read(self, txn_id: int, ts: float, item: str) -> Generator:
        self._check_doom(txn_id)
        self.stats.reads += 1
        record = self._item(item)
        while True:
            written, value = self._buffered_value(txn_id, item)
            if written:
                return value, self.store.version(item)
            if ts < record.write_ts:
                self.stats.rejections += 1
                raise ConcurrencyAbort(
                    f"TSO read too late: ts={ts:.4f} < write_ts={record.write_ts:.4f} on {item!r}"
                )
            if record.min_pending_below(ts) is not None:
                self.stats.waits += 1
                yield self._wait(record)
                self._check_doom(txn_id)
                continue
            record.read_ts = max(record.read_ts, ts)
            return self.store.read(item)

    def prewrite(self, txn_id: int, ts: float, item: str, value: Any) -> Generator:
        self._check_doom(txn_id)
        self.stats.prewrites += 1
        record = self._item(item)
        if ts < record.read_ts or ts < record.write_ts:
            self.stats.rejections += 1
            raise ConcurrencyAbort(
                f"TSO prewrite too late: ts={ts:.4f} vs read_ts={record.read_ts:.4f}, "
                f"write_ts={record.write_ts:.4f} on {item!r}"
            )
        self._buffer(txn_id, item, value)
        record.pending[txn_id] = ts
        self._ts_of[txn_id] = ts
        return self.store.version(item)
        yield  # pragma: no cover - makes this a generator like its siblings

    # -- termination -----------------------------------------------------------
    def commit(self, txn_id: int, versions: dict[str, int]) -> None:
        ts = self._ts_of.pop(txn_id, None)
        for item in self.buffered_writes(txn_id):
            record = self._item(item)
            pts = record.pending.pop(txn_id, None)
            if pts is not None:
                record.write_ts = max(record.write_ts, pts)
            elif ts is not None:
                record.write_ts = max(record.write_ts, ts)
            record.wake()
        self._apply_workspace(txn_id, versions)
        self.stats.commits += 1

    def abort(self, txn_id: int) -> None:
        self._ts_of.pop(txn_id, None)
        for item in self.buffered_writes(txn_id):
            record = self._item(item)
            record.pending.pop(txn_id, None)
            record.wake()
        self._drop(txn_id)
        self.stats.aborts += 1

    def reinstate(self, txn_id: int, ts: float, writes: dict[str, Any]) -> None:
        super().reinstate(txn_id, ts, writes)
        self._ts_of[txn_id] = ts
        for item in writes:
            self._item(item).pending[txn_id] = ts

    def clear(self) -> None:
        for record in self._items.values():
            for event in record.waiters:
                if not event.triggered:
                    event.fail(ConcurrencyAbort("TSO state cleared (site crash)"))
        self._items.clear()
        self._workspace.clear()
        self._doomed.clear()
        self._ts_of.clear()

    # -- helpers -------------------------------------------------------------------
    def _wait(self, record: _TsoItem) -> Event:
        event = self.sim.event(name="tso-wait")
        record.waiters.append(event)
        if self.wait_timeout is not None:

            def _expire() -> None:
                if not event.triggered:
                    self.stats.rejections += 1
                    event.fail(ConcurrencyAbort("TSO wait timeout"))

            self.sim.call_later(self.wait_timeout, _expire)
        return event
