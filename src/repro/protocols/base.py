"""Protocol plumbing: interfaces and registries.

Rainbow's protocols "are implemented with minimum interdependencies and
assumptions in order to facilitate their replacement (e.g., by students)
with minimum system-wide modifications."  Concretely:

* Every protocol family has one small interface —
  :class:`ConcurrencyController` (CCP, site-local),
  :class:`ReplicationController` (RCP, coordinator-side) and
  :class:`CommitProtocol` (ACP, coordinator-side; the participant half lives
  in the site's message handlers).
* Implementations self-register in a per-family *registry* keyed by a short
  name (``"2PL"``, ``"QC"``, ``"2PC"`` …), which is exactly what the GUI's
  Protocols Configuration window (paper Figure 4) lists in its drop-downs.
* A student protocol is added by subclassing the interface and calling
  :func:`register_ccp` / :func:`register_rcp` / :func:`register_acp`; no
  other module needs editing.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator

from repro.errors import ProtocolError

__all__ = [
    "ConcurrencyController",
    "ReplicationController",
    "CommitProtocol",
    "register_ccp",
    "register_rcp",
    "register_acp",
    "ccp_registry",
    "rcp_registry",
    "acp_registry",
    "ccp_accepts",
    "make_ccp",
    "make_rcp",
    "make_acp",
]

_CCP_REGISTRY: dict[str, Callable[..., "ConcurrencyController"]] = {}
_RCP_REGISTRY: dict[str, Callable[..., "ReplicationController"]] = {}
_ACP_REGISTRY: dict[str, Callable[..., "CommitProtocol"]] = {}


class ConcurrencyController:
    """CCP interface: guards the *local copies* of one site.

    ``read`` and ``prewrite`` are generator functions (drive them with
    ``yield from``): they may suspend the calling handler (lock waits, TSO
    waits) and raise :class:`~repro.errors.ConcurrencyAbort` on rejection.
    Buffered writes only reach the committed store via :meth:`commit`.
    """

    name = "abstract"

    def read(self, txn_id: int, ts: float, item: str) -> Generator:
        """Yield until readable; return ``(value, version)``."""
        raise NotImplementedError

    def prewrite(self, txn_id: int, ts: float, item: str, value: Any) -> Generator:
        """Yield until accepted; buffer the write; return current version."""
        raise NotImplementedError

    def buffered_writes(self, txn_id: int) -> dict[str, Any]:
        """The uncommitted writes this transaction holds at this site."""
        raise NotImplementedError

    def commit(self, txn_id: int, versions: dict[str, int]) -> None:
        """Apply buffered writes (stamped per ``versions``) and release."""
        raise NotImplementedError

    def abort(self, txn_id: int) -> None:
        """Discard buffered writes and release."""
        raise NotImplementedError

    def validate(self, txn_id: int) -> tuple[bool, str]:
        """Certify the transaction at prepare time (OCC hook).

        Pessimistic protocols validate during execution and return
        ``(True, "")`` here; optimistic ones do their backward validation.
        A False vote makes the participant vote NO.
        """
        return True, ""

    def doom(self, txn_id: int) -> None:
        """Mark the transaction as must-abort (wound-wait, recovery)."""
        raise NotImplementedError

    def is_doomed(self, txn_id: int) -> bool:
        """True if the transaction must abort at this site."""
        raise NotImplementedError

    def active_transactions(self) -> set[int]:
        """Transactions with local state at this site."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop all volatile state (site crash)."""
        raise NotImplementedError


class ReplicationController:
    """RCP interface: executed by the transaction's home-site thread.

    ``do_read``/``do_write`` are generator functions driven with
    ``yield from`` inside the coordinator process; they perform whatever
    remote copy accesses the protocol requires and raise
    :class:`~repro.errors.ReplicationAbort` when the necessary copies or
    quorum cannot be assembled.
    """

    name = "abstract"

    def do_read(self, ctx, item: str) -> Generator:
        """Yield until done; return the value read."""
        raise NotImplementedError

    def do_write(self, ctx, item: str, value: Any) -> Generator:
        """Yield until enough copies are pre-written; returns None."""
        raise NotImplementedError


class CommitProtocol:
    """ACP interface: terminates a transaction atomically.

    ``run`` is a generator driven by the coordinator; it returns the
    decision string ``"COMMIT"`` or raises
    :class:`~repro.errors.CommitAbort`.
    """

    name = "abstract"

    def run(self, ctx) -> Generator:
        """Yield until the decision is reached and propagated."""
        raise NotImplementedError


def _register(registry: dict, kind: str, name: str, factory: Callable) -> None:
    key = name.upper()
    if key in registry:
        raise ProtocolError(f"{kind} protocol {name!r} already registered")
    registry[key] = factory


def register_ccp(name: str, factory: Callable[..., ConcurrencyController]) -> None:
    """Register a concurrency-control protocol under ``name``."""
    _register(_CCP_REGISTRY, "CCP", name, factory)


def register_rcp(name: str, factory: Callable[..., ReplicationController]) -> None:
    """Register a replication-control protocol under ``name``."""
    _register(_RCP_REGISTRY, "RCP", name, factory)


def register_acp(name: str, factory: Callable[..., CommitProtocol]) -> None:
    """Register an atomic-commit protocol under ``name``."""
    _register(_ACP_REGISTRY, "ACP", name, factory)


def ccp_registry() -> list[str]:
    """Names of the registered CCPs (what the GUI panel offers)."""
    return sorted(_CCP_REGISTRY)


def rcp_registry() -> list[str]:
    """Names of the registered RCPs."""
    return sorted(_RCP_REGISTRY)


def acp_registry() -> list[str]:
    """Names of the registered ACPs."""
    return sorted(_ACP_REGISTRY)


def ccp_accepts(name: str, option: str) -> bool:
    """Whether the CCP registered under ``name`` takes keyword ``option``.

    Profiles that supply generic defaults (e.g. the failure experiments'
    ``wait_timeout``) use this to avoid handing a non-waiting controller an
    option it has no constructor parameter for.
    """
    try:
        factory = _CCP_REGISTRY[name.upper()]
    except KeyError:
        return False
    parameters = inspect.signature(factory).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return True
    return option in parameters


def make_ccp(name: str, *args, **kwargs) -> ConcurrencyController:
    """Instantiate the CCP registered under ``name``."""
    try:
        factory = _CCP_REGISTRY[name.upper()]
    except KeyError:
        raise ProtocolError(
            f"unknown CCP {name!r}; registered: {ccp_registry()}"
        ) from None
    return factory(*args, **kwargs)


def make_rcp(name: str, *args, **kwargs) -> ReplicationController:
    """Instantiate the RCP registered under ``name``."""
    try:
        factory = _RCP_REGISTRY[name.upper()]
    except KeyError:
        raise ProtocolError(
            f"unknown RCP {name!r}; registered: {rcp_registry()}"
        ) from None
    return factory(*args, **kwargs)


def make_acp(name: str, *args, **kwargs) -> CommitProtocol:
    """Instantiate the ACP registered under ``name``."""
    try:
        factory = _ACP_REGISTRY[name.upper()]
    except KeyError:
        raise ProtocolError(
            f"unknown ACP {name!r}; registered: {acp_registry()}"
        ) from None
    return factory(*args, **kwargs)
