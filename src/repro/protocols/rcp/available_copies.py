"""ROWA-Available (available copies) replication control.

The middle ground between ROWA and quorum consensus, and the scheme the
SETH lineage ([3] in the paper) used for its failure experiments: reads
touch one copy; writes touch **every reachable** copy and tolerate
unreachable holders (at least one copy must accept).  Write availability is
therefore as good as "any copy up", unlike ROWA's "all copies up".

The textbook caveat is reproduced on purpose: without the validation
protocol real available-copies systems add, a network *partition* can let
both sides write "their" copies independently — one-copy serializability is
lost (two committed writers can install conflicting versions).  The
classroom test demonstrates exactly that, caught by the history checker's
version-collision detector.  Under fail-stop site crashes (no partitions),
the protocol behaves correctly.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConcurrencyAbort, ReplicationAbort
from repro.protocols.base import ReplicationController

__all__ = ["AvailableCopiesController"]


class AvailableCopiesController(ReplicationController):
    """Read one copy, write all *available* copies."""

    name = "ROWAA"

    def do_read(self, ctx, item: str) -> Generator:
        spec = ctx.item_spec(item)
        failures = []
        for site in ctx.order_local_first(spec.sites):
            result = yield from ctx.access_read(site, item)
            if result.ok:
                ctx.note_read(item, result.version)
                return result.value
            if result.kind == "ccp":
                raise ConcurrencyAbort(f"read {item!r} at {site}: {result.reason}")
            failures.append(f"{site}: {result.reason}")
        raise ReplicationAbort(f"no copy of {item!r} reachable ({'; '.join(failures)})")

    def do_write(self, ctx, item: str, value: Any) -> Generator:
        spec = ctx.item_spec(item)
        sites = ctx.order_local_first(spec.sites)
        wave_span = ctx.begin_span("rcp.wave", sites=",".join(sites))
        try:
            results = yield from ctx.access_prewrite_many(sites, item, value)
        finally:
            ctx.end_span(wave_span)
        ccp_failures = [r for r in results if not r.ok and r.kind == "ccp"]
        if ccp_failures:
            raise ConcurrencyAbort(
                f"prewrite {item!r} rejected at {ccp_failures[0].site}: "
                f"{ccp_failures[0].reason}"
            )
        accepted = [r for r in results if r.ok]
        if not accepted:
            raise ReplicationAbort(
                f"no available copy of {item!r} accepted the write"
            )
        new_version = ctx.assign_version(accepted)
        for result in accepted:
            ctx.note_prewrite(result.site, item, new_version)
        ctx.note_write(item, new_version)
