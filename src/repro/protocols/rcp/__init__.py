"""Replication control protocols (RCP): ROWA, available copies, quorums."""

from repro.protocols.base import register_rcp
from repro.protocols.rcp.available_copies import AvailableCopiesController
from repro.protocols.rcp.quorum import QuorumConsensusController
from repro.protocols.rcp.rowa import RowaController

register_rcp("ROWA", RowaController)
register_rcp("ROWAA", AvailableCopiesController)
register_rcp("QC", QuorumConsensusController)

__all__ = [
    "AvailableCopiesController",
    "QuorumConsensusController",
    "RowaController",
]
