"""Quorum consensus (QC) replication control — Rainbow's default RCP.

Each copy of an item carries a vote (from the catalog); an operation must
assemble enough votes: ``r`` for reads, ``w`` for writes, with
``r + w > V`` and ``2w > V`` guaranteeing read/write and write/write
intersection.

"QC starts by building a quorum (read or write) for the first operation of
the transaction.  To do this, QC needs first to find a set of sites from
whom the quorum can be built.  QC then sends each site in the set a request
for that site's local copies.  At that site, copies are read (returning
their current value) or pre-written (returning their current version
number) through CCP.  When a quorum is built for an operation, the next
operation is considered."

Message economy matters for the paper's traffic experiments: QC first
contacts a *minimal* vote-sufficient set of sites (home site first — its
copy is free), and only expands to further holders when members of the
first wave fail.  Reads pick the value of the highest version in the
assembled read quorum; writes stamp ``max(version in write quorum) + 1``.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConcurrencyAbort, ReplicationAbort
from repro.protocols.base import ReplicationController

__all__ = ["QuorumConsensusController"]


class QuorumConsensusController(ReplicationController):
    """Weighted-voting replica control (Gifford-style)."""

    name = "QC"

    def do_read(self, ctx, item: str) -> Generator:
        results = yield from self._assemble(ctx, item, write=False)
        best = max(results, key=lambda r: r.version)
        ctx.note_read(item, best.version)
        # Every quorum member holds CCP state (e.g. an S lock) and must see
        # the decision; register them all as participants.
        return best.value

    def do_write(self, ctx, item: str, value: Any) -> Generator:
        results = yield from self._assemble(ctx, item, write=True, value=value)
        new_version = ctx.assign_version(results)
        for result in results:
            ctx.note_prewrite(result.site, item, new_version)
        ctx.note_write(item, new_version)

    # -- quorum assembly ----------------------------------------------------------
    def _assemble(self, ctx, item: str, write: bool, value: Any = None):
        """Contact holders in waves until the quorum's votes are gathered."""
        spec = ctx.item_spec(item)
        needed = spec.effective_write_quorum() if write else spec.effective_read_quorum()
        votes = dict(spec.placement)
        remaining = ctx.order_local_first(spec.sites)
        gathered = []
        collected_votes = 0
        failures = []

        while collected_votes < needed:
            attainable = collected_votes + sum(votes[site] for site in remaining)
            wave = self._next_wave(remaining, votes, needed - collected_votes)
            if not wave or attainable < needed:
                raise ReplicationAbort(
                    f"cannot build {'write' if write else 'read'} quorum for {item!r}: "
                    f"have {collected_votes}/{needed} votes "
                    f"({'; '.join(failures) or 'no holders left'})"
                )
            remaining = [site for site in remaining if site not in wave]
            wave_span = ctx.begin_span("rcp.wave", sites=",".join(wave))
            try:
                if write:
                    results = yield from ctx.access_prewrite_many(wave, item, value)
                else:
                    results = yield from ctx.access_read_many(wave, item)
            finally:
                ctx.end_span(wave_span)
            for result in results:
                if result.ok:
                    gathered.append(result)
                    collected_votes += votes[result.site]
                elif result.kind == "ccp":
                    # A concurrency rejection is not a matter of trying
                    # another copy: the transaction is ordered out.
                    raise ConcurrencyAbort(
                        f"{'prewrite' if write else 'read'} {item!r} at "
                        f"{result.site}: {result.reason}"
                    )
                else:
                    failures.append(f"{result.site}: {result.reason}")
        return gathered

    @staticmethod
    def _next_wave(remaining: list[str], votes: dict[str, int], needed: int) -> list[str]:
        """A minimal prefix of ``remaining`` whose votes reach ``needed``.

        If the remaining holders cannot reach ``needed`` at all, the whole
        remainder is returned — the caller discovers the shortfall after the
        wave completes and raises the RCP abort with full failure detail.
        """
        wave: list[str] = []
        acc = 0
        for site in remaining:
            wave.append(site)
            acc += votes[site]
            if acc >= needed:
                break
        return wave
