"""Read-One-Write-All (ROWA) replication control.

Reads touch a single copy — the local one when the home site holds a copy,
otherwise the first reachable remote copy.  Writes must pre-write **every**
copy; a single unreachable replica holder makes the write impossible, which
is exactly ROWA's availability weakness that quorum consensus fixes
(EXP-AVAIL reproduces the collapse).

Abort classification:

* a CCP rejection at any copy → :class:`~repro.errors.ConcurrencyAbort`
  (counted against the CCP);
* an unreachable copy that ROWA *requires* → :class:`~repro.errors.ReplicationAbort`
  (counted against the RCP).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConcurrencyAbort, ReplicationAbort
from repro.protocols.base import ReplicationController

__all__ = ["RowaController"]


class RowaController(ReplicationController):
    """Read one copy, write all copies."""

    name = "ROWA"

    def do_read(self, ctx, item: str) -> Generator:
        spec = ctx.item_spec(item)
        candidates = ctx.order_local_first(spec.sites)
        failures = []
        for site in candidates:
            result = yield from ctx.access_read(site, item)
            if result.ok:
                ctx.note_read(item, result.version)
                return result.value
            if result.kind == "ccp":
                raise ConcurrencyAbort(f"read {item!r} at {site}: {result.reason}")
            failures.append(f"{site}: {result.reason}")
        raise ReplicationAbort(f"no copy of {item!r} reachable ({'; '.join(failures)})")

    def do_write(self, ctx, item: str, value: Any) -> Generator:
        spec = ctx.item_spec(item)
        sites = ctx.order_local_first(spec.sites)
        wave_span = ctx.begin_span("rcp.wave", sites=",".join(sites))
        try:
            results = yield from ctx.access_prewrite_many(sites, item, value)
        finally:
            ctx.end_span(wave_span)
        ccp_failures = [r for r in results if not r.ok and r.kind == "ccp"]
        net_failures = [r for r in results if not r.ok and r.kind == "net"]
        if ccp_failures:
            raise ConcurrencyAbort(
                f"prewrite {item!r} rejected at {ccp_failures[0].site}: "
                f"{ccp_failures[0].reason}"
            )
        if net_failures:
            raise ReplicationAbort(
                f"ROWA write needs all {len(sites)} copies of {item!r}; "
                f"unreachable: {[r.site for r in net_failures]}"
            )
        new_version = ctx.assign_version(results)
        for result in results:
            ctx.note_prewrite(result.site, item, new_version)
        ctx.note_write(item, new_version)
