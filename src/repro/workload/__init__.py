"""Workload generation: simulated and manual modes."""

from repro.workload.generator import ManualWorkload, SubmissionOutcome, WorkloadGenerator
from repro.workload.spec import MixClass, WorkloadSpec

__all__ = [
    "ManualWorkload",
    "MixClass",
    "SubmissionOutcome",
    "WorkloadGenerator",
    "WorkloadSpec",
]
