"""Workload specifications for the generator (the WLG panel's fields).

A :class:`WorkloadSpec` captures everything the paper's simulated workload
generation panel configures: how many transactions, how they arrive (open
Poisson/uniform stream or a closed multiprogramming loop), their length and
read/write mix, which items they touch (uniform, Zipf, or hotspot access),
how home sites are picked, and what happens after an abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError

__all__ = ["MixClass", "WorkloadSpec"]


@dataclass
class MixClass:
    """One transaction class of a heterogeneous workload mix.

    Real workloads are rarely uniform: OLTP mixes short updates with long
    read-only scans.  A mix class overrides the size/mix parameters of the
    base spec; classes are drawn per transaction proportionally to
    ``weight``.
    """

    weight: float
    min_ops: int
    max_ops: int
    read_fraction: float
    increment_fraction: float = 0.0
    name: str = ""

    def validate(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"mix class weight must be positive, got {self.weight}")
        if not 1 <= self.min_ops <= self.max_ops:
            raise WorkloadError("mix class needs 1 <= min_ops <= max_ops")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("mix class read_fraction must be in [0, 1]")
        if not 0.0 <= self.increment_fraction <= 1.0:
            raise WorkloadError("mix class increment_fraction must be in [0, 1]")

ARRIVALS = ("poisson", "uniform", "closed")
ACCESS_PATTERNS = ("uniform", "zipf", "hotspot")
HOME_POLICIES = ("round_robin", "random", "weighted")


@dataclass
class WorkloadSpec:
    """Parameters of one generated workload."""

    n_transactions: int = 100
    arrival: str = "poisson"
    arrival_rate: float = 1.0  # transactions per time unit (open modes)
    mpl: int = 8  # concurrent terminals (closed mode)
    think_time: float = 0.0  # closed-mode delay between transactions
    min_ops: int = 4
    max_ops: int = 8
    read_fraction: float = 0.75
    # Of the non-read operations, this fraction become increments
    # (read-modify-write with delta 1) instead of blind writes.
    increment_fraction: float = 0.0
    access: str = "uniform"
    zipf_theta: float = 0.8
    hotspot_fraction: float = 0.2  # fraction of items that are hot
    hotspot_probability: float = 0.8  # probability an access goes hot
    home_policy: str = "round_robin"
    home_weights: Optional[dict[str, float]] = None
    restart_on_abort: bool = False
    max_restarts: int = 3
    restart_delay: float = 5.0
    result_timeout: float = 800.0  # WLG gives up waiting for TXN_RESULT
    distinct_items: bool = True  # a txn touches each item at most once
    # Heterogeneous workloads: when set, each transaction draws one class
    # (weighted) whose size/mix parameters override the base fields above.
    mix: Optional[list[MixClass]] = None

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on inconsistent parameters."""
        if self.n_transactions < 0:
            raise WorkloadError("n_transactions must be >= 0")
        if self.arrival not in ARRIVALS:
            raise WorkloadError(f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        if self.arrival != "closed" and self.arrival_rate <= 0:
            raise WorkloadError("arrival_rate must be positive for open arrivals")
        if self.arrival == "closed" and self.mpl < 1:
            raise WorkloadError("mpl must be >= 1 for the closed workload")
        if not 1 <= self.min_ops <= self.max_ops:
            raise WorkloadError("need 1 <= min_ops <= max_ops")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.increment_fraction <= 1.0:
            raise WorkloadError("increment_fraction must be in [0, 1]")
        if self.access not in ACCESS_PATTERNS:
            raise WorkloadError(f"access must be one of {ACCESS_PATTERNS}")
        if self.access == "zipf" and self.zipf_theta < 0:
            raise WorkloadError("zipf_theta must be >= 0")
        if self.access == "hotspot":
            if not 0.0 < self.hotspot_fraction < 1.0:
                raise WorkloadError("hotspot_fraction must be in (0, 1)")
            if not 0.0 <= self.hotspot_probability <= 1.0:
                raise WorkloadError("hotspot_probability must be in [0, 1]")
        if self.home_policy not in HOME_POLICIES:
            raise WorkloadError(f"home_policy must be one of {HOME_POLICIES}")
        if self.home_policy == "weighted" and not self.home_weights:
            raise WorkloadError("home_policy 'weighted' requires home_weights")
        if self.max_restarts < 0:
            raise WorkloadError("max_restarts must be >= 0")
        if self.result_timeout <= 0:
            raise WorkloadError("result_timeout must be positive")
        if self.mix is not None:
            if not self.mix:
                raise WorkloadError("mix must have at least one class")
            for mix_class in self.mix:
                mix_class.validate()
