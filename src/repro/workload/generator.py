"""The workload generator (WLG).

Rainbow offers "either the manual or the simulated workload generation
panel to compose and submit transactions".  Both paths dispatch through the
network: the generator owns an endpoint (the WLGlet's position in the
middle tier) and submits each transaction to its home site as a
``TXN_SUBMIT`` message; the site dedicates a coordinator process to it and
answers with ``TXN_RESULT``.

*Simulated mode* synthesises transactions from a :class:`WorkloadSpec`
(arrival process, size, read/write mix, access skew, home-site policy) and
optionally restarts aborted ones.  *Manual mode*
(:class:`ManualWorkload`) submits hand-written transactions at chosen
times — the classroom path for stepping through a scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError, RpcTimeout, WorkloadError
from repro.nameserver.catalog import Catalog
from repro.net.message import MessageType
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.randoms import weighted_choice, zipf_weights
from repro.txn.transaction import Operation, Transaction
from repro.workload.spec import WorkloadSpec

__all__ = ["WorkloadGenerator", "ManualWorkload", "SubmissionOutcome"]


@dataclass
class SubmissionOutcome:
    """What the WLG learned about one submitted transaction."""

    txn_id: int
    template_id: int
    status: str  # "COMMITTED" | "ABORTED" | "LOST"
    cause: Optional[str] = None
    attempts: int = 1


class _Submitter:
    """Shared submit-and-maybe-restart machinery for both WLG modes."""

    def __init__(self, sim, endpoint, directory, monitor, spec):
        self.sim = sim
        self.endpoint = endpoint
        self.directory = directory
        self.monitor = monitor
        self.spec = spec
        self.outcomes: list[SubmissionOutcome] = []

    def submit_tracked(self, txn: Transaction):
        """Submit ``txn``; on abort, restart per the spec (generator)."""
        attempts = 0
        current = txn
        while True:
            attempts += 1
            status, cause = yield from self._submit_once(current)
            restartable = (
                status == "ABORTED"
                and self.spec.restart_on_abort
                and attempts <= self.spec.max_restarts
            )
            if not restartable:
                outcome = SubmissionOutcome(
                    txn_id=current.txn_id,
                    template_id=current.template_id,
                    status=status,
                    cause=cause,
                    attempts=attempts,
                )
                self.outcomes.append(outcome)
                return outcome
            yield self.sim.timeout(self.spec.restart_delay)
            current = current.restarted()

    def _submit_once(self, txn: Transaction):
        if txn.home_site not in self.directory:
            raise WorkloadError(f"unknown home site {txn.home_site!r}")
        if self.monitor is not None:
            self.monitor.txn_submitted(txn)
        else:
            txn.submitted_at = self.sim.now
        try:
            reply = yield self.endpoint.request(
                self.directory[txn.home_site],
                MessageType.TXN_SUBMIT,
                {"txn_spec": txn},
                timeout=self.spec.result_timeout,
                txn_id=txn.txn_id,
            )
        except (RpcTimeout, NetworkError):
            # The home site crashed (or is unreachable): the WLG never
            # learns the outcome.  The monitor may still have recorded it
            # through the coordinator; the WLG marks it LOST and moves on.
            return "LOST", "no TXN_RESULT (home site unreachable)"
        payload = reply.payload or {}
        outcome = payload.get("outcome") or {}
        return outcome.get("status", "LOST"), outcome.get("cause")


class WorkloadGenerator:
    """Simulated workload generation over a catalog and a site directory."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: dict[str, str],
        catalog: Catalog,
        spec: WorkloadSpec,
        rng: random.Random,
        monitor=None,
        host: str = "wlg-host",
        name: str = "wlg",
    ):
        spec.validate()
        if not directory:
            raise WorkloadError("empty site directory")
        self.sim = sim
        self.spec = spec
        self.rng = rng
        self.catalog = catalog
        self.items = catalog.item_names()
        if not self.items:
            raise WorkloadError("catalog has no items to generate accesses for")
        self.sites = sorted(directory)
        self.endpoint = network.endpoint(host, name)
        self._submitter = _Submitter(sim, self.endpoint, directory, monitor, spec)
        self._home_cursor = 0
        self._access_weights = self._build_access_weights()
        self._value_counter = 0

    @property
    def outcomes(self) -> list[SubmissionOutcome]:
        """Per-transaction outcomes observed so far."""
        return self._submitter.outcomes

    # -- synthesis -----------------------------------------------------------
    def _build_access_weights(self) -> Optional[list[float]]:
        if self.spec.access == "uniform":
            return None
        if self.spec.access == "zipf":
            return zipf_weights(len(self.items), self.spec.zipf_theta)
        # hotspot: the first ceil(f*n) items share hotspot_probability.
        n = len(self.items)
        hot = max(1, round(self.spec.hotspot_fraction * n))
        if hot >= n:
            return None
        hot_weight = self.spec.hotspot_probability / hot
        cold_weight = (1.0 - self.spec.hotspot_probability) / (n - hot)
        return [hot_weight] * hot + [cold_weight] * (n - hot)

    def _pick_item(self) -> str:
        if self._access_weights is None:
            return self.rng.choice(self.items)
        return self.items[weighted_choice(self.rng, self._access_weights)]

    def _pick_home(self) -> str:
        policy = self.spec.home_policy
        if policy == "round_robin":
            site = self.sites[self._home_cursor % len(self.sites)]
            self._home_cursor += 1
            return site
        if policy == "random":
            return self.rng.choice(self.sites)
        weights = self.spec.home_weights or {}
        names = sorted(weights)
        total = sum(weights[name] for name in names)
        normalised = [weights[name] / total for name in names]
        return names[weighted_choice(self.rng, normalised)]

    def _pick_mix_class(self):
        """Draw a mix class (or None for a homogeneous workload)."""
        if not self.spec.mix:
            return None
        total = sum(mix_class.weight for mix_class in self.spec.mix)
        point = self.rng.random() * total
        acc = 0.0
        for mix_class in self.spec.mix:
            acc += mix_class.weight
            if point <= acc:
                return mix_class
        return self.spec.mix[-1]

    def make_transaction(self) -> Transaction:
        """Synthesise one transaction per the spec (or its drawn mix class)."""
        mix_class = self._pick_mix_class()
        if mix_class is None:
            min_ops, max_ops = self.spec.min_ops, self.spec.max_ops
            read_fraction = self.spec.read_fraction
            increment_fraction = self.spec.increment_fraction
        else:
            min_ops, max_ops = mix_class.min_ops, mix_class.max_ops
            read_fraction = mix_class.read_fraction
            increment_fraction = mix_class.increment_fraction
        n_ops = self.rng.randint(min_ops, max_ops)
        ops: list[Operation] = []
        used: set[str] = set()
        for _index in range(n_ops):
            item = self._pick_item()
            if self.spec.distinct_items:
                tries = 0
                while item in used and tries < 20:
                    item = self._pick_item()
                    tries += 1
                if item in used:
                    continue
                used.add(item)
            if self.rng.random() < read_fraction:
                ops.append(Operation.read(item))
            elif self.rng.random() < increment_fraction:
                ops.append(Operation.increment(item, 1))
            else:
                self._value_counter += 1
                ops.append(Operation.write(item, self._value_counter))
        if not ops:
            ops.append(Operation.read(self._pick_item()))
        return Transaction(ops=ops, home_site=self._pick_home())

    # -- execution -----------------------------------------------------------
    def run(self):
        """Start the workload; returns a process that ends when all done."""
        if self.spec.arrival == "closed":
            return self.sim.process(self._closed_loop(), name="wlg:closed")
        return self.sim.process(self._open_loop(), name="wlg:open")

    def _open_loop(self):
        trackers = []
        for _index in range(self.spec.n_transactions):
            if self.spec.arrival == "poisson":
                gap = self.rng.expovariate(self.spec.arrival_rate)
            else:
                gap = 1.0 / self.spec.arrival_rate
            yield self.sim.timeout(gap)
            txn = self.make_transaction()
            trackers.append(
                self.sim.process(
                    self._submitter.submit_tracked(txn), name=f"wlg:t{txn.txn_id}"
                )
            )
        if trackers:
            yield self.sim.all_of(trackers)
        return self.outcomes

    def _closed_loop(self):
        total = self.spec.n_transactions
        mpl = min(self.spec.mpl, max(total, 1))
        quotas = [total // mpl + (1 if index < total % mpl else 0) for index in range(mpl)]
        terminals = [
            self.sim.process(self._terminal(quota), name=f"wlg:term{index}")
            for index, quota in enumerate(quotas)
            if quota > 0
        ]
        if terminals:
            yield self.sim.all_of(terminals)
        return self.outcomes

    def _terminal(self, quota: int):
        for _index in range(quota):
            txn = self.make_transaction()
            yield from self._submitter.submit_tracked(txn)
            if self.spec.think_time > 0:
                yield self.sim.timeout(self.spec.think_time)


class ManualWorkload:
    """Manual workload generation: submit hand-composed transactions.

    This is the programmatic face of the paper's Manual Workload Generation
    panel (Figure A-2): the user composes explicit transactions and
    dispatches them, optionally at chosen simulated times.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: dict[str, str],
        monitor=None,
        spec: Optional[WorkloadSpec] = None,
        host: str = "wlg-host",
        name: str = "wlg-manual",
    ):
        self.sim = sim
        self.endpoint = network.endpoint(host, name)
        self._submitter = _Submitter(
            sim, self.endpoint, directory, monitor, spec or WorkloadSpec()
        )
        self._queue: list[tuple[float, Transaction]] = []

    @property
    def outcomes(self) -> list[SubmissionOutcome]:
        """Outcomes of the submitted transactions, in completion order."""
        return self._submitter.outcomes

    def add(self, txn: Transaction, at: float = 0.0) -> "ManualWorkload":
        """Queue ``txn`` for submission at simulated time ``at`` (chainable)."""
        self._queue.append((at, txn))
        return self

    def run(self):
        """Dispatch the queued transactions; process ends when all finish."""
        return self.sim.process(self._dispatch(), name="wlg:manual")

    def _dispatch(self):
        trackers = []
        for at, txn in sorted(self._queue, key=lambda pair: pair[0]):
            if at > self.sim.now:
                yield self.sim.timeout(at - self.sim.now)
            trackers.append(
                self.sim.process(
                    self._submitter.submit_tracked(txn), name=f"wlg:m{txn.txn_id}"
                )
            )
        if trackers:
            yield self.sim.all_of(trackers)
        return self.outcomes
