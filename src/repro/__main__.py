"""``python -m repro`` dispatches to the CLI.

The ``__main__`` guard is load-bearing: spawn-based worker processes
(the parallel experiment runner) re-import the parent's main module, and
must not re-enter the CLI when they do.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
