"""Declarative Rainbow configuration (what the GUI panels configure).

"Rainbow configuration includes Rainbow sites, transaction processing
protocols, database items, and database replication scheme, in that order.
If networking simulation is desired, then it should be configured first.
The configuration data can be saved for reuse in another session."

:class:`RainbowConfig` bundles, in the paper's order: the network
simulation, the name server, the sites, the protocols (RCP/CCP/ACP), the
database items and their replication scheme, and the fault plan.  It
serialises to/from JSON so configurations can be saved for reuse.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import CatalogError, ConfigurationError
from repro.nameserver.catalog import Catalog
from repro.net.faults import FaultSchedule
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LanWanLatency,
    UniformLatency,
)

__all__ = ["NetworkConfig", "SiteConfig", "ProtocolConfig", "FaultConfig", "RainbowConfig"]

_LATENCY_KINDS = ("constant", "uniform", "exponential", "lanwan")


@dataclass
class NetworkConfig:
    """Network-simulation parameters (configured first, per the paper)."""

    latency: str = "uniform"
    latency_params: dict = field(default_factory=dict)
    loss_rate: float = 0.0
    host_service_time: float = 0.0  # receiver-side queueing (0 = unlimited)

    def build_latency_model(self):
        """Instantiate the configured latency model."""
        if self.latency not in _LATENCY_KINDS:
            raise ConfigurationError(
                f"latency must be one of {_LATENCY_KINDS}, got {self.latency!r}"
            )
        params = dict(self.latency_params)
        if self.latency == "constant":
            return ConstantLatency(**params)
        if self.latency == "uniform":
            return UniformLatency(**params)
        if self.latency == "exponential":
            return ExponentialLatency(**params)
        return LanWanLatency(**params)


@dataclass
class SiteConfig:
    """One Rainbow site: its id and the host it lives on."""

    name: str
    host: str


@dataclass
class ProtocolConfig:
    """Protocol selection — the Protocols Configuration window (Figure 4)."""

    rcp: str = "QC"
    ccp: str = "2PL"
    acp: str = "2PC"
    rcp_options: dict = field(default_factory=dict)
    ccp_options: dict = field(default_factory=dict)
    acp_options: dict = field(default_factory=dict)
    op_timeout: float = 90.0
    vote_timeout: float = 40.0
    ack_timeout: float = 25.0
    ack_retries: int = 3
    # Message-economy optimizations (docs/PERF.md).  All default off, so
    # existing configurations replay byte-identically.
    batch_site_ops: bool = False  # coalesce same-host copy accesses
    piggyback_prepare: bool = False  # fold VOTE_REQ into the final access
    latency_aware_routing: bool = False  # rank copy holders by expected delay

    def validate(self) -> None:
        from repro.protocols.base import acp_registry, ccp_registry, rcp_registry

        if self.rcp.upper() not in rcp_registry():
            raise ConfigurationError(f"unknown RCP {self.rcp!r}: {rcp_registry()}")
        if self.ccp.upper() not in ccp_registry():
            raise ConfigurationError(f"unknown CCP {self.ccp!r}: {ccp_registry()}")
        if self.acp.upper() not in acp_registry():
            raise ConfigurationError(f"unknown ACP {self.acp!r}: {acp_registry()}")
        for value, label in (
            (self.op_timeout, "op_timeout"),
            (self.vote_timeout, "vote_timeout"),
            (self.ack_timeout, "ack_timeout"),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive")


@dataclass
class FaultConfig:
    """Fault injection: a deterministic schedule plus random crash cycles."""

    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    random_targets: list[str] = field(default_factory=list)
    mttf: float = 0.0  # 0 disables random failures
    mttr: float = 0.0
    horizon: Optional[float] = None


@dataclass
class RainbowConfig:
    """A complete Rainbow instance description."""

    sites: list[SiteConfig] = field(default_factory=list)
    nameserver_host: str = "ns-host"
    network: NetworkConfig = field(default_factory=NetworkConfig)
    protocols: ProtocolConfig = field(default_factory=ProtocolConfig)
    catalog_data: dict = field(default_factory=dict)
    faults: FaultConfig = field(default_factory=FaultConfig)
    seed: int = 0
    # Site-level policies
    uncertainty_timeout: Optional[float] = 80.0
    decision_retry: float = 25.0
    gc_interval: float = 60.0
    gc_timeout: float = 150.0
    settle_time: float = 120.0  # post-workload drain window
    sample_interval: Optional[float] = None  # progress-monitor time series
    # Distributed deadlock detection (CMH edge chasing); when on, sites
    # exchange probe messages instead of relying solely on wait timeouts.
    distributed_deadlock: bool = False
    probe_interval: float = 20.0
    # Periodic fuzzy checkpoints (WAL truncation); None disables.
    checkpoint_interval: Optional[float] = None

    # -- construction helpers ------------------------------------------------
    @classmethod
    def quick(
        cls,
        n_sites: int = 4,
        n_items: int = 16,
        replication_degree: Optional[int] = None,
        sites_per_host: int = 1,
        initial_value=0,
        **overrides,
    ) -> "RainbowConfig":
        """A ready-to-run configuration for classroom demos and tests.

        Sites ``site1..siteN`` are spread over hosts (``sites_per_host``
        sites each); items ``x1..xM`` are placed round-robin with the given
        replication degree (default: full replication).
        """
        if n_sites < 1:
            raise ConfigurationError("need at least one site")
        if n_items < 1:
            raise ConfigurationError("need at least one item")
        sites = [
            SiteConfig(
                name=f"site{index + 1}",
                host=f"host{(index // max(sites_per_host, 1)) + 1}",
            )
            for index in range(n_sites)
        ]
        catalog = Catalog()
        for index in range(n_items):
            catalog.add_item(f"x{index + 1}", initial_value=initial_value)
        site_names = [site.name for site in sites]
        degree = replication_degree if replication_degree is not None else n_sites
        if degree >= n_sites:
            catalog.place_full_replication(site_names)
        else:
            catalog.place_round_robin(site_names, degree)
        config = cls(sites=sites, catalog_data=catalog.to_dict())
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise ConfigurationError(f"unknown RainbowConfig field {key!r}")
            setattr(config, key, value)
        return config

    def catalog(self) -> Catalog:
        """Materialise the catalog object from the stored schema."""
        return Catalog.from_dict(self.catalog_data)

    def set_catalog(self, catalog: Catalog) -> None:
        """Store ``catalog`` as this configuration's database schema."""
        self.catalog_data = catalog.to_dict()

    def site_names(self) -> list[str]:
        return [site.name for site in self.sites]

    def hosts(self) -> list[str]:
        """All distinct hosts, name-server host included."""
        hosts = {site.host for site in self.sites}
        hosts.add(self.nameserver_host)
        return sorted(hosts)

    # -- validation -------------------------------------------------------------
    def validate(self) -> None:
        """Check the whole configuration for consistency."""
        if not self.sites:
            raise ConfigurationError("configuration has no sites")
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate site names")
        self.protocols.validate()
        catalog = self.catalog()
        try:
            catalog.validate(known_sites=names)
        except CatalogError as error:
            raise ConfigurationError(f"invalid catalog: {error}") from error
        if self.settle_time < 0:
            raise ConfigurationError("settle_time must be >= 0")
        known_targets = set(names) | {"nameserver"}
        for target, _at in self.faults.schedule.crashes + self.faults.schedule.recoveries:
            if target not in known_targets:
                raise ConfigurationError(f"fault target {target!r} is not a site")
        for target in self.faults.random_targets:
            if target not in known_targets:
                raise ConfigurationError(f"fault target {target!r} is not a site")
        if self.faults.random_targets and (self.faults.mttf <= 0 or self.faults.mttr <= 0):
            raise ConfigurationError("random faults require positive mttf and mttr")

    # -- persistence ---------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        data = asdict(self)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RainbowConfig":
        """Inverse of :meth:`to_dict`."""
        config = cls()
        config.sites = [SiteConfig(**site) for site in data.get("sites", [])]
        config.nameserver_host = data.get("nameserver_host", config.nameserver_host)
        config.network = NetworkConfig(**data.get("network", {}))
        config.protocols = ProtocolConfig(**data.get("protocols", {}))
        config.catalog_data = data.get("catalog_data", {})
        faults = data.get("faults", {})
        schedule = faults.get("schedule", {})
        config.faults = FaultConfig(
            schedule=FaultSchedule(
                crashes=[tuple(pair) for pair in schedule.get("crashes", [])],
                recoveries=[tuple(pair) for pair in schedule.get("recoveries", [])],
                partitions=[
                    (at, [list(group) for group in groups])
                    for at, groups in schedule.get("partitions", [])
                ],
                heals=list(schedule.get("heals", [])),
                link_cuts=[tuple(entry) for entry in schedule.get("link_cuts", [])],
                flaky_links=[tuple(entry) for entry in schedule.get("flaky_links", [])],
            ),
            random_targets=list(faults.get("random_targets", [])),
            mttf=faults.get("mttf", 0.0),
            mttr=faults.get("mttr", 0.0),
            horizon=faults.get("horizon"),
        )
        for key in (
            "seed",
            "uncertainty_timeout",
            "decision_retry",
            "gc_interval",
            "gc_timeout",
            "settle_time",
            "sample_interval",
            "distributed_deadlock",
            "probe_interval",
            "checkpoint_interval",
        ):
            if key in data:
                setattr(config, key, data[key])
        return config

    def save(self, path: str | Path) -> None:
        """Write the configuration as JSON ("saved for reuse")."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "RainbowConfig":
        """Load a configuration saved by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
