"""Rainbow core: configuration and the runnable instance."""

from repro.core.config import (
    FaultConfig,
    NetworkConfig,
    ProtocolConfig,
    RainbowConfig,
    SiteConfig,
)
from repro.core.instance import RainbowInstance, SessionResult

__all__ = [
    "FaultConfig",
    "NetworkConfig",
    "ProtocolConfig",
    "RainbowConfig",
    "RainbowInstance",
    "SessionResult",
    "SiteConfig",
]
