"""A Rainbow instance: bring-up, sessions, and results.

:class:`RainbowInstance` materialises a :class:`~repro.core.config.RainbowConfig`
into a running system in the paper's order: network simulation → name server
→ sites (with their local copies) → protocols → fault plan.  It then runs
*sessions*: a workload is submitted (simulated or manual), the simulation is
driven until the workload and a settle window complete, and the progress
monitor's statistics are packaged into a :class:`SessionResult`.

Bring-up is faithful to the paper: the administrator registers sites with
the name server, then every site *queries the name server over the network*
for the site directory and the fragmentation/replication schema ("Any site
can query the name server to get pertinent information").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro import obs
from repro.core.config import RainbowConfig
from repro.errors import ConfigurationError, NetworkError, RpcTimeout
from repro.monitor.stats import OutputStatistics, ProgressMonitor
from repro.nameserver.catalog import Catalog
from repro.nameserver.server import NameServer
from repro.net.faults import FaultEvent, FaultInjector
from repro.net.message import MessageType
from repro.net.network import Network
from repro.sim.kernel import Process, Simulator
from repro.sim.randoms import RandomStreams
from repro.site.site import Site
from repro.txn.coordinator import CoordinatorConfig, TxnContext, run_transaction
from repro.txn.transaction import Transaction
from repro.workload.generator import ManualWorkload, SubmissionOutcome, WorkloadGenerator
from repro.workload.spec import WorkloadSpec

__all__ = ["SessionResult", "RainbowInstance"]

_wlg_counter = itertools.count(1)


@dataclass
class SessionResult:
    """Everything one Rainbow session produced."""

    statistics: OutputStatistics
    outcomes: list[SubmissionOutcome] = field(default_factory=list)
    serializable: Optional[bool] = None
    serialization_witness: Optional[list[int]] = None
    serialization_cycle: Optional[list[int]] = None
    fault_log: list[FaultEvent] = field(default_factory=list)
    duration: float = 0.0

    @property
    def committed(self) -> int:
        return self.statistics.committed

    @property
    def aborted(self) -> int:
        return self.statistics.aborted


class RainbowInstance:
    """One configured, runnable Rainbow system."""

    def __init__(self, config: RainbowConfig):
        config.validate()
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.network = Network(
            self.sim,
            config.network.build_latency_model(),
            rng=self.streams.get("network"),
            loss_rate=config.network.loss_rate,
            host_service_time=config.network.host_service_time,
        )
        self.injector = FaultInjector(self.sim, self.network)
        self.nameserver = NameServer(self.sim, self.network, config.nameserver_host)
        self.nameserver.catalog = config.catalog()
        self.catalog: Catalog = self.nameserver.catalog
        self.injector.register(self.nameserver)

        protocols = config.protocols
        self.coordinator_config = CoordinatorConfig(
            rcp=protocols.rcp,
            acp=protocols.acp,
            rcp_options=dict(protocols.rcp_options),
            acp_options=dict(protocols.acp_options),
            op_timeout=protocols.op_timeout,
            vote_timeout=protocols.vote_timeout,
            ack_timeout=protocols.ack_timeout,
            ack_retries=protocols.ack_retries,
            batch_site_ops=protocols.batch_site_ops,
            piggyback_prepare=protocols.piggyback_prepare,
            latency_aware_routing=protocols.latency_aware_routing,
        )

        self.sites: dict[str, Site] = {}
        for site_config in config.sites:
            site = Site(
                self.sim,
                self.network,
                site_config.name,
                site_config.host,
                ccp=protocols.ccp,
                ccp_options=dict(protocols.ccp_options),
                uncertainty_timeout=config.uncertainty_timeout,
                decision_retry=config.decision_retry,
                gc_interval=config.gc_interval,
                gc_timeout=config.gc_timeout,
                distributed_deadlock=config.distributed_deadlock,
                probe_interval=config.probe_interval,
                checkpoint_interval=config.checkpoint_interval,
            )
            for item_name in self.catalog.items_at(site_config.name):
                site.store.create_copy(
                    item_name, self.catalog.item(item_name).initial_value
                )
            site.coordinator_factory = self._coordinate
            self.nameserver.register_site(site.name, site.address, site.host)
            self.injector.register(site)
            self.sites[site.name] = site

        # Same-host siblings share a Sitelet (paper §2): wire the in-process
        # links BATCH_ACCESS gateways use to fan sub-ops out locally.
        by_host: dict[str, list[Site]] = {}
        for site in self.sites.values():
            by_host.setdefault(site.host, []).append(site)
        for siblings in by_host.values():
            for site in siblings:
                site.colocated = {
                    other.name: other for other in siblings if other is not site
                }

        self.directory = {name: site.address for name, site in self.sites.items()}
        self.monitor = ProgressMonitor(
            self.sim,
            self.network,
            sites=self.sites.values(),
            sample_interval=config.sample_interval,
        )
        self._started = False
        self._session_counter = itertools.count(1)
        self.span_tracer = None
        # ``repro experiment --trace``: sweeps build their instances deep
        # inside experiment modules, so a process-global flag tells every
        # new instance to enable tracing and register its tracer.
        if obs.global_tracing_enabled():
            obs.register_tracer(self.enable_tracing())

    # -- observability ---------------------------------------------------------------
    def enable_tracing(self):
        """Turn on causal span tracing for this instance (idempotent).

        Wires one shared :class:`repro.obs.SpanTracer` into the network,
        every site, and the monitor.  Tracing is purely observational — a
        traced session produces the same history and statistics as an
        untraced one — but must be enabled before transactions run for
        the trace to be complete.
        """
        if self.span_tracer is None:
            tracer = obs.SpanTracer(self.sim)
            self.span_tracer = tracer
            self.network.tracer = tracer
            for site in self.sites.values():
                site.tracer = tracer
            self.monitor.span_tracer = tracer
        return self.span_tracer

    # -- coordinator wiring --------------------------------------------------------
    def _coordinate(self, site: Site, txn: Transaction):
        """The generator each home site runs per transaction (its thread)."""
        directory = getattr(site, "directory", None) or self.directory
        catalog = getattr(site, "catalog_cache", None) or self.catalog
        ctx = TxnContext(
            txn, site, catalog, directory, self.coordinator_config, self.monitor
        )
        site.register_home_txn(txn.txn_id, ctx)
        try:
            status = yield from run_transaction(ctx)
        finally:
            site.unregister_home_txn(txn.txn_id)
        return {
            "status": status,
            "cause": txn.abort_cause,
            "txn_id": txn.txn_id,
            "reads": dict(txn.reads),
            "response_time": txn.response_time,
        }

    # -- bring-up ---------------------------------------------------------------------
    def start(self) -> None:
        """Bootstrap the domain: sites fetch metadata from the name server."""
        if self._started:
            return
        bootstraps = [
            self.sim.process(self._bootstrap_site(site), name=f"boot:{site.name}")
            for site in self.sites.values()
        ]
        self.sim.run(until=self.sim.all_of(bootstraps))
        self._apply_fault_plan()
        self._started = True

    def _bootstrap_site(self, site: Site):
        try:
            lookup = yield site.endpoint.request(
                self.nameserver.address, MessageType.NS_LOOKUP, {}, timeout=30.0
            )
            site.directory = {
                info["name"]: info["address"]
                for info in (lookup.payload or {}).get("sites", [])
            }
            schema = yield site.endpoint.request(
                self.nameserver.address, MessageType.NS_CATALOG, {}, timeout=30.0
            )
            site.catalog_cache = Catalog.from_dict(
                (schema.payload or {}).get("catalog", {})
            )
        except (RpcTimeout, NetworkError):
            # Name server unreachable at bring-up: fall back to the
            # administrator's local copies (the instance owns them anyway).
            site.directory = dict(self.directory)
            site.catalog_cache = self.catalog

    def _apply_fault_plan(self) -> None:
        faults = self.config.faults
        self.injector.apply_schedule(faults.schedule)
        if faults.random_targets:
            self.injector.random_crash_recover(
                faults.random_targets,
                faults.mttf,
                faults.mttr,
                self.streams.get("faults"),
                until=faults.horizon,
            )

    # -- sessions ---------------------------------------------------------------------
    def run_workload(self, spec: WorkloadSpec) -> SessionResult:
        """Run a simulated-mode workload session and collect its results."""
        self.start()
        session = next(self._session_counter)
        generator = WorkloadGenerator(
            self.sim,
            self.network,
            self.directory,
            self.catalog,
            spec,
            self.streams.get(f"workload-{session}"),
            monitor=self.monitor,
            name=f"wlg{session}",
        )
        process = generator.run()
        self.sim.run(until=process)
        self._settle()
        return self.session_result(generator.outcomes)

    def manual_workload(self) -> ManualWorkload:
        """A manual-mode workload bound to this instance (Figure A-2 path)."""
        self.start()
        return ManualWorkload(
            self.sim,
            self.network,
            self.directory,
            monitor=self.monitor,
            name=f"wlg-manual{next(_wlg_counter)}",
        )

    def run_manual(self, manual: ManualWorkload) -> SessionResult:
        """Dispatch a prepared manual workload and collect the results."""
        process = manual.run()
        self.sim.run(until=process)
        self._settle()
        return self.session_result(manual.outcomes)

    def submit(self, txn: Transaction) -> Process:
        """Directly start ``txn`` at its home site (library/testing path).

        Bypasses the WLG messages; the returned process ends with the
        transaction's coordinator.
        """
        self.start()
        try:
            site = self.sites[txn.home_site]
        except KeyError:
            raise ConfigurationError(f"unknown home site {txn.home_site!r}") from None
        self.monitor.txn_submitted(txn)
        return site.spawn_home_transaction(
            self._coordinate(site, txn), name=f"txn{txn.txn_id}@{site.name}"
        )

    def run_transactions(self, txns: Iterable[Transaction]) -> SessionResult:
        """Submit transactions directly (all at once) and run to completion."""
        processes = [self.submit(txn) for txn in txns]
        if processes:
            self.sim.run(until=self.sim.all_of(processes))
        self._settle()
        return self.session_result([])

    def _settle(self) -> None:
        if self.config.settle_time > 0:
            self.sim.run(until=self.sim.now + self.config.settle_time)

    # -- results ---------------------------------------------------------------------
    def session_result(
        self, outcomes: Optional[list[SubmissionOutcome]] = None
    ) -> SessionResult:
        """Package the monitor's view of the session so far."""
        check = self.monitor.check_serializable()
        serializable = witness = cycle = None
        if check is not None:
            serializable, order_or_cycle = check
            if serializable:
                witness = order_or_cycle
            else:
                cycle = order_or_cycle
        return SessionResult(
            statistics=self.monitor.output_statistics(),
            outcomes=list(outcomes or []),
            serializable=serializable,
            serialization_witness=witness,
            serialization_cycle=cycle,
            fault_log=list(self.injector.log),
            duration=self.sim.now,
        )
