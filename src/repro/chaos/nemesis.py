"""The nemesis: seeded generation of randomized fault plans.

A chaos run needs an adversary.  The nemesis composes the repertoire the
Rainbow GUI exposes — site crashes/recoveries, network partitions, link
cuts — plus the probabilistic per-link message loss and duplication the
chaos layer adds, into a :class:`FaultSchedule` drawn deterministically
from a seed.

Plans are built from :class:`FaultChunk` units.  A chunk is one *atomic*
fault episode: a crash **and** its recovery, a partition **and** its heal,
a cut **and** its restore, a flaky window **and** its clear.  Keeping the
repair glued to the fault means any *subset* of chunks is still a valid,
self-healing plan — which is exactly what the delta-debugging shrinker
(:mod:`repro.chaos.shrink`) needs.

Construction guarantees validity: recoveries come strictly after their
crash, per-site crash windows never overlap, partition windows never
overlap each other (a heal heals every partition), and every repair lands
before ``repair_deadline`` so the session can quiesce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.faults import FaultSchedule
from repro.sim.randoms import RandomStreams

__all__ = [
    "FaultChunk",
    "ChaosPlan",
    "generate_plan",
    "schedule_from_chunks",
    "render_schedule",
]

#: Relative weights of the fault kinds the nemesis draws from.
KIND_WEIGHTS = (
    ("crash", 0.40),
    ("partition", 0.20),
    ("link_cut", 0.20),
    ("flaky_link", 0.20),
)


@dataclass(frozen=True)
class FaultChunk:
    """One atomic fault episode (fault + its repair)."""

    kind: str  # "crash" | "partition" | "link_cut" | "flaky_link"
    start: float
    end: float
    target: str = ""  # site name (crash chunks)
    hosts: tuple[str, ...] = ()  # host pair (link chunks)
    groups: tuple[tuple[str, ...], ...] = ()  # partition sides
    loss: float = 0.0
    duplicate: float = 0.0

    def describe(self) -> str:
        window = f"[{self.start:.1f}, {self.end:.1f}]"
        if self.kind == "crash":
            return f"crash {self.target} {window}"
        if self.kind == "partition":
            sides = " | ".join(",".join(group) for group in self.groups)
            return f"partition {{{sides}}} {window}"
        if self.kind == "link_cut":
            return f"cut {self.hosts[0]}~{self.hosts[1]} {window}"
        return (
            f"flaky {self.hosts[0]}~{self.hosts[1]} {window} "
            f"loss={self.loss:.2f} dup={self.duplicate:.2f}"
        )


@dataclass
class ChaosPlan:
    """A seed's generated fault plan (the nemesis output)."""

    seed: int
    chunks: list[FaultChunk] = field(default_factory=list)

    def schedule(self) -> FaultSchedule:
        return schedule_from_chunks(self.chunks)

    def describe(self) -> list[str]:
        return [chunk.describe() for chunk in self.chunks]


def schedule_from_chunks(chunks: list[FaultChunk] | tuple[FaultChunk, ...]) -> FaultSchedule:
    """Assemble a :class:`FaultSchedule` from fault chunks."""
    schedule = FaultSchedule()
    for chunk in chunks:
        if chunk.kind == "crash":
            schedule.crashes.append((chunk.target, chunk.start))
            schedule.recoveries.append((chunk.target, chunk.end))
        elif chunk.kind == "partition":
            schedule.partitions.append(
                (chunk.start, [list(group) for group in chunk.groups])
            )
            schedule.heals.append(chunk.end)
        elif chunk.kind == "link_cut":
            schedule.link_cuts.append(
                (chunk.hosts[0], chunk.hosts[1], chunk.start, chunk.end)
            )
        elif chunk.kind == "flaky_link":
            schedule.flaky_links.append(
                (
                    chunk.hosts[0],
                    chunk.hosts[1],
                    chunk.start,
                    chunk.end,
                    chunk.loss,
                    chunk.duplicate,
                )
            )
        else:  # pragma: no cover - nemesis only emits the four kinds
            raise ValueError(f"unknown fault chunk kind {chunk.kind!r}")
    return schedule


def generate_plan(
    seed: int,
    site_names: list[str],
    site_hosts: list[str],
    horizon: float,
    intensity: float = 1.0,
) -> ChaosPlan:
    """Draw a randomized, self-healing fault plan from ``seed``.

    ``site_names`` are crashable targets; ``site_hosts`` are the hosts the
    network-level faults (partitions, cuts, flaky windows) act on.
    ``intensity`` scales the number of fault episodes attempted
    (``intensity * len(site_names)``, at least one).  All randomness comes
    from the dedicated ``"nemesis"`` stream of ``seed``, so the same
    arguments always produce the same plan.
    """
    rng: random.Random = RandomStreams(seed).get("nemesis")
    hosts = sorted(set(site_hosts))
    n_episodes = max(1, round(intensity * len(site_names)))
    fault_window = (0.10 * horizon, 0.65 * horizon)
    repair_deadline = 0.85 * horizon
    min_duration = 0.05 * horizon
    max_duration = 0.25 * horizon

    site_busy_until = {name: 0.0 for name in site_names}
    partition_busy_until = 0.0
    chunks: list[FaultChunk] = []
    kinds = [kind for kind, _weight in KIND_WEIGHTS]
    weights = [weight for _kind, weight in KIND_WEIGHTS]

    for _ in range(n_episodes):
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        start = rng.uniform(*fault_window)
        end = min(start + rng.uniform(min_duration, max_duration), repair_deadline)
        if end <= start:
            continue
        if kind == "crash":
            target = rng.choice(site_names)
            if site_busy_until[target] > start:
                continue  # overlapping crash windows would tangle recovery pairing
            site_busy_until[target] = end
            chunks.append(FaultChunk("crash", start, end, target=target))
        elif kind == "partition":
            if partition_busy_until > start or len(hosts) < 2:
                continue  # a heal heals every partition; keep windows disjoint
            partition_busy_until = end
            side_size = rng.randint(1, len(hosts) - 1)
            side = set(rng.sample(hosts, side_size))
            groups = (
                tuple(host for host in hosts if host in side),
                tuple(host for host in hosts if host not in side),
            )
            chunks.append(FaultChunk("partition", start, end, groups=groups))
        elif kind == "link_cut":
            if len(hosts) < 2:
                continue
            pair = tuple(rng.sample(hosts, 2))
            chunks.append(FaultChunk("link_cut", start, end, hosts=pair))
        else:  # flaky_link
            if len(hosts) < 2:
                continue
            pair = tuple(rng.sample(hosts, 2))
            chunks.append(
                FaultChunk(
                    "flaky_link",
                    start,
                    end,
                    hosts=pair,
                    loss=rng.uniform(0.05, 0.30),
                    duplicate=rng.uniform(0.05, 0.30),
                )
            )

    if not chunks:
        # Degenerate draw (every episode skipped): fall back to one crash so
        # a chaos case always exercises at least one fault.
        target = rng.choice(site_names)
        chunks.append(
            FaultChunk("crash", fault_window[0], 0.5 * horizon, target=target)
        )
    chunks.sort(key=lambda chunk: (chunk.start, chunk.kind, chunk.target, chunk.hosts))
    return ChaosPlan(seed=seed, chunks=chunks)


def render_schedule(schedule: FaultSchedule) -> str:
    """Pretty-print a schedule as ready-to-paste classroom Python.

    The output constructs the exact :class:`FaultSchedule`, suitable for a
    lab handout or a regression test
    (``config.faults.schedule = <paste>``).
    """
    lines = ["FaultSchedule("]
    if schedule.crashes:
        lines.append(f"    crashes={schedule.crashes!r},")
    if schedule.recoveries:
        lines.append(f"    recoveries={schedule.recoveries!r},")
    if schedule.partitions:
        lines.append(f"    partitions={schedule.partitions!r},")
    if schedule.heals:
        lines.append(f"    heals={schedule.heals!r},")
    if schedule.link_cuts:
        lines.append(f"    link_cuts={schedule.link_cuts!r},")
    if schedule.flaky_links:
        lines.append(f"    flaky_links={schedule.flaky_links!r},")
    lines.append(")")
    if len(lines) == 2:
        return "FaultSchedule()  # no faults needed: the violation is fault-free"
    return "\n".join(lines)
