"""Chaos engineering for Rainbow: nemesis, invariants, shrinking.

The paper's experimental facility injects failures; this package *verifies*
that the protocol stack stays safe under them.  A seeded nemesis
(:mod:`~repro.chaos.nemesis`) composes crashes, partitions, link cuts, and
probabilistic message loss/duplication into fault plans; the engine
(:mod:`~repro.chaos.engine`) runs a full session under a plan, heals, and
quiesces; the invariant suite (:mod:`~repro.chaos.invariants`) checks
atomicity, convergence, orphan resolution, serializability, and monitor
conservation; and the shrinker (:mod:`~repro.chaos.shrink`) delta-debugs a
failing plan to a minimal classroom scenario.  ``python -m repro chaos``
is the entry point.
"""

from repro.chaos.engine import ChaosCaseReport, run_chaos_case
from repro.chaos.invariants import INVARIANTS, check_all
from repro.chaos.nemesis import (
    ChaosPlan,
    FaultChunk,
    generate_plan,
    render_schedule,
    schedule_from_chunks,
)
from repro.chaos.shrink import ShrinkResult, ddmin, shrink_case
from repro.chaos.suite import ChaosSuiteResult, render_suite_report, run_chaos_suite

__all__ = [
    "ChaosCaseReport",
    "ChaosPlan",
    "ChaosSuiteResult",
    "FaultChunk",
    "INVARIANTS",
    "ShrinkResult",
    "check_all",
    "ddmin",
    "generate_plan",
    "render_schedule",
    "render_suite_report",
    "run_chaos_case",
    "run_chaos_suite",
    "schedule_from_chunks",
    "shrink_case",
]
