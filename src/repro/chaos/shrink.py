"""Fault-plan shrinking: delta-debug a failing seed to a minimal plan.

A failing chaos seed usually carries more faults than the violation needs.
:func:`shrink_case` applies the classic *ddmin* algorithm over the plan's
:class:`~repro.chaos.nemesis.FaultChunk` list: it replays the **same
seed** (same workload, same network randomness) with subsets of the fault
episodes removed, keeping a subset only while the run still violates one
of the originally failing invariants.  Because every chunk is an atomic
fault+repair pair, every subset is itself a valid, self-healing plan.

The result is a 1-minimal plan — removing any single remaining episode
makes the violation disappear — rendered as a ready-to-paste classroom
scenario by :func:`repro.chaos.nemesis.render_schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.engine import ChaosCaseReport, run_chaos_case
from repro.chaos.nemesis import FaultChunk, render_schedule, schedule_from_chunks

__all__ = ["ShrinkResult", "ddmin", "shrink_case"]

#: Upper bound on replays per shrink (ddmin is quadratic in the worst case).
MAX_PROBES = 64


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing case."""

    seed: int
    original_chunks: tuple[FaultChunk, ...]
    minimal_chunks: tuple[FaultChunk, ...]
    reproduced: list[str] = field(default_factory=list)  # invariants still violated
    probes: int = 0  # replays spent

    def scenario(self) -> str:
        """The minimal plan as paste-ready classroom Python."""
        return render_schedule(schedule_from_chunks(list(self.minimal_chunks)))


def ddmin(
    items: tuple,
    fails: Callable[[tuple], bool],
    max_probes: int = MAX_PROBES,
) -> tuple[tuple, int]:
    """Zeller's ddmin: a 1-minimal failing subsequence of ``items``.

    ``fails(subset)`` must be deterministic.  Returns ``(subset, probes)``;
    if the probe budget runs out, the smallest failing subset found so far
    is returned (still failing, maybe not 1-minimal).
    """
    probes = 0
    current = tuple(items)
    granularity = 2
    while len(current) >= 2 and probes < max_probes:
        chunk_size = max(1, len(current) // granularity)
        starts = list(range(0, len(current), chunk_size))
        reduced = False
        for start in starts:
            complement = current[:start] + current[start + chunk_size :]
            if not complement and len(starts) > 1:
                continue
            probes += 1
            if fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if probes >= max_probes:
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    # Can the violation survive with no faults at all?  (Broken protocols
    # often fail fault-free; the minimal scenario should say so.)
    if current and probes < max_probes:
        probes += 1
        if fails(()):
            current = ()
    return current, probes


def shrink_case(
    report: ChaosCaseReport,
    max_probes: int = MAX_PROBES,
    **case_kwargs,
) -> ShrinkResult:
    """Delta-debug a failing case's fault plan to a minimal reproduction.

    ``case_kwargs`` must be the keyword arguments the original
    :func:`~repro.chaos.engine.run_chaos_case` ran with (protocol stack,
    sizes), so replays differ only by the injected faults.
    """
    if report.ok:
        raise ValueError(f"seed {report.seed} did not fail; nothing to shrink")
    target = set(report.violated_invariants())

    def fails(chunks: tuple) -> bool:
        replay = run_chaos_case(report.seed, chunks=tuple(chunks), **case_kwargs)
        return bool(target & set(replay.violated_invariants()))

    minimal, probes = ddmin(tuple(report.chunks), fails, max_probes=max_probes)
    replay = run_chaos_case(report.seed, chunks=tuple(minimal), **case_kwargs)
    return ShrinkResult(
        seed=report.seed,
        original_chunks=tuple(report.chunks),
        minimal_chunks=tuple(minimal),
        reproduced=sorted(target & set(replay.violated_invariants())),
        probes=probes + 1,
    )
