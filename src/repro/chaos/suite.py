"""The chaos suite: many seeded cases in parallel, one deterministic report.

:func:`run_chaos_suite` fans seeds out through the experiment runner (each
case is an independent simulation, so results are byte-identical for any
job count), collects the per-seed reports, and delta-debugs the failing
seeds down to minimal classroom scenarios.  :func:`render_suite_report`
prints it all — the report contains no wall-clock or host-dependent data,
so the same seeds always render the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.engine import ChaosCaseReport, run_chaos_case
from repro.chaos.invariants import INVARIANTS
from repro.chaos.shrink import ShrinkResult, shrink_case
from repro.experiments.runner import Trial, run_trials

__all__ = ["ChaosSuiteResult", "run_chaos_suite", "render_suite_report"]

#: How many failing seeds get the (expensive) shrinking treatment.
MAX_SHRINKS = 3


@dataclass
class ChaosSuiteResult:
    """All cases of one suite run plus the shrunk reproductions."""

    cases: list[ChaosCaseReport] = field(default_factory=list)
    shrinks: list[ShrinkResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def failing(self) -> list[ChaosCaseReport]:
        return [case for case in self.cases if not case.ok]


def run_chaos_suite(
    seeds: list[int],
    n_jobs: Optional[int] = 1,
    shrink: bool = True,
    max_shrinks: int = MAX_SHRINKS,
    **case_kwargs,
) -> ChaosSuiteResult:
    """Run one chaos case per seed and shrink the failures.

    ``case_kwargs`` forwards to :func:`~repro.chaos.engine.run_chaos_case`
    (protocol stack, sizes, intensity).  Cases run across ``n_jobs``
    worker processes; shrinking replays run serially in-process (they are
    sequential by nature — each probe depends on the last).
    """
    trials = [
        Trial(run_chaos_case, {"seed": seed, **case_kwargs}, tag=seed)
        for seed in seeds
    ]
    cases = run_trials(trials, n_jobs=n_jobs)
    result = ChaosSuiteResult(cases=cases)
    if shrink:
        for case in result.failing()[:max_shrinks]:
            result.shrinks.append(shrink_case(case, **case_kwargs))
    return result


def _wrap_history(history: str, width: int = 88) -> list[str]:
    """Wrap a one-line textbook history on its op separators."""
    lines: list[str] = []
    current = ""
    for token in history.split("  "):
        if current and len(current) + 2 + len(token) > width:
            lines.append(current)
            current = token
        else:
            current = f"{current}  {token}" if current else token
    if current:
        lines.append(current)
    return lines


def render_suite_report(result: ChaosSuiteResult) -> str:
    """Deterministic text report of a suite run."""
    lines = ["Chaos suite", "==========="]
    header = (
        f"{'seed':>6}  {'faults':>6}  {'commit':>6}  {'abort':>5}  "
        f"{'lost':>4}  {'dup':>5}  {'lossy':>5}  verdict"
    )
    lines += [header, "-" * len(header)]
    for case in result.cases:
        verdict = "ok" if case.ok else "FAIL " + ",".join(case.violated_invariants())
        lines.append(
            f"{case.seed:>6}  {len(case.chunks):>6}  {case.committed:>6}  "
            f"{case.aborted:>5}  {case.lost:>4}  {case.messages_duplicated:>5}  "
            f"{case.messages_lost_random:>5}  {verdict}"
        )
    total = len(result.cases)
    failing = result.failing()
    lines.append("")
    lines.append(f"{total - len(failing)}/{total} seeds green across invariants: "
                 + ", ".join(INVARIANTS))
    for case in failing:
        lines.append("")
        lines.append(f"seed {case.seed} violations:")
        for text in case.flat_violations():
            lines.append(f"  {text}")
        lines.append("  fault plan:")
        for chunk in case.chunks:
            lines.append(f"    {chunk.describe()}")
        if case.history:
            lines.append("  execution history (textbook notation):")
            for text in _wrap_history(case.history):
                lines.append(f"    {text}")
    for shrink in result.shrinks:
        lines.append("")
        lines.append(
            f"seed {shrink.seed}: shrunk {len(shrink.original_chunks)} -> "
            f"{len(shrink.minimal_chunks)} fault episode(s) in {shrink.probes} "
            f"replays; still violates: {', '.join(shrink.reproduced) or '(none)'}"
        )
        lines.append("  minimal classroom scenario (config.faults.schedule = ...):")
        for line in shrink.scenario().splitlines():
            lines.append(f"    {line}")
    return "\n".join(lines)
