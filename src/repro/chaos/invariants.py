"""Safety-invariant checkers for chaos sessions.

Each checker inspects a finished (healed, quiesced, fully recovered)
:class:`~repro.core.instance.RainbowInstance` plus its
:class:`~repro.core.instance.SessionResult` and returns a list of
human-readable violation strings (empty = invariant holds).

The catalog, in the order :func:`check_all` runs them:

* ``atomicity`` — committed transactions' writes are durably applied and
  quorum-readable; transactions aborted by a protocol (RCP/CCP/ACP) left
  no durable writes anywhere.  SYSTEM aborts are *excluded* from the
  no-writes check: a coordinator that logs COMMIT and then dies reports
  the transaction aborted to the monitor while participants legitimately
  commit it during resolution — that is correct behaviour, not a leak.
* ``convergence`` — after heal + quiesce, replicas at the same version
  agree on the value, and the latest committed version of every item is
  quorum-readable (quorum-consensus replicas may legitimately hold stale
  *older* versions; the read quorum still intersects the newest write).
* ``no_orphans`` — every site is up and holds zero in-doubt transactions.
* ``serializability`` — the committed history is one-copy serializable
  (the existing :class:`~repro.txn.history.HistoryRecorder` machinery),
  with no version collisions and no reads of phantom versions.
* ``conservation`` — the monitor's accounting balances: every started
  transaction finished, finished == committed + aborted, and submissions
  that never started are bounded by the workload generator's LOST count.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.core.instance import RainbowInstance, SessionResult

__all__ = ["INVARIANTS", "check_all"]

INVARIANTS = (
    "atomicity",
    "convergence",
    "no_orphans",
    "serializability",
    "conservation",
)


def _txn_sets(instance: RainbowInstance) -> tuple[set[int], set[int], set[int]]:
    """(committed, protocol-aborted, system-aborted) txn ids of the session."""
    committed: set[int] = set()
    protocol_aborted: set[int] = set()
    system_aborted: set[int] = set()
    for record in instance.monitor.records:
        if record.status == "COMMITTED":
            committed.add(record.txn_id)
        elif record.abort_cause == "SYSTEM":
            system_aborted.add(record.txn_id)
        else:
            protocol_aborted.add(record.txn_id)
    return committed, protocol_aborted, system_aborted


def check_atomicity(instance: RainbowInstance, result: SessionResult) -> list[str]:
    violations: list[str] = []
    committed, protocol_aborted, system_aborted = _txn_sets(instance)
    known_writers = committed | system_aborted | {0}

    # Durable evidence: (item, version, txn_id) -> {site: value}.
    evidence: dict[tuple[str, int, int], dict[str, object]] = defaultdict(dict)
    for name in sorted(instance.sites):
        site = instance.sites[name]
        for record in site.store.audit_log:
            evidence[(record.item, record.version, record.txn_id)][name] = record.value
            if record.txn_id in protocol_aborted:
                violations.append(
                    f"aborted txn {record.txn_id} left durable write "
                    f"{record.item}=v{record.version} at {name}"
                )
            elif record.txn_id not in known_writers:
                violations.append(
                    f"durable write {record.item}=v{record.version} at {name} "
                    f"by unknown txn {record.txn_id}"
                )

    history = instance.monitor.history
    if history is None:
        return violations
    quorum_rcp = instance.config.protocols.rcp.upper() == "QC"
    for txn in history.committed:
        for item, version in sorted(txn.writes.items()):
            spec = instance.catalog.item(item)
            applied = evidence.get((item, int(version), txn.txn_id), {})
            values = set(map(repr, applied.values()))
            if len(values) > 1:
                violations.append(
                    f"committed txn {txn.txn_id}: {item}=v{int(version)} has "
                    f"diverging durable values {sorted(values)}"
                )
            reachable = [
                site_name
                for site_name in spec.sites
                if instance.sites[site_name].store.version(item) >= version
            ]
            if not applied and not reachable:
                violations.append(
                    f"committed txn {txn.txn_id}: write {item}=v{int(version)} "
                    "is durable nowhere"
                )
            if quorum_rcp:
                votes = sum(spec.placement[site_name] for site_name in reachable)
                if votes < spec.effective_write_quorum():
                    violations.append(
                        f"committed txn {txn.txn_id}: {item}=v{int(version)} "
                        f"readable with only {votes} votes "
                        f"(write quorum {spec.effective_write_quorum()})"
                    )
    return violations


def check_convergence(instance: RainbowInstance, result: SessionResult) -> list[str]:
    violations: list[str] = []
    history = instance.monitor.history
    committed_vmax: dict[str, int] = defaultdict(int)
    if history is not None:
        for txn in history.committed:
            for item, version in txn.writes.items():
                committed_vmax[item] = max(committed_vmax[item], int(version))
    quorum_rcp = instance.config.protocols.rcp.upper() == "QC"
    for item in instance.catalog.item_names():
        spec = instance.catalog.item(item)
        replicas = {
            site_name: instance.sites[site_name].store.read(item)
            for site_name in spec.sites
        }
        by_version: dict[int, dict[str, object]] = defaultdict(dict)
        for site_name, (value, version) in replicas.items():
            by_version[version][site_name] = value
        for version in sorted(by_version):
            values = set(map(repr, by_version[version].values()))
            if len(values) > 1:
                violations.append(
                    f"{item}: replicas diverge at v{version}: "
                    + ", ".join(
                        f"{site_name}={value!r}"
                        for site_name, value in sorted(by_version[version].items())
                    )
                )
        vmax = committed_vmax.get(item, 0)
        current = [
            site_name
            for site_name, (_value, version) in replicas.items()
            if version >= vmax
        ]
        if quorum_rcp:
            votes = sum(spec.placement[site_name] for site_name in current)
            if votes < spec.effective_write_quorum():
                violations.append(
                    f"{item}: latest committed version v{vmax} held by only "
                    f"{votes} votes (write quorum {spec.effective_write_quorum()})"
                )
        elif not current:
            violations.append(
                f"{item}: no replica reached latest committed version v{vmax}"
            )
    return violations


def check_no_orphans(instance: RainbowInstance, result: SessionResult) -> list[str]:
    violations: list[str] = []
    for name in sorted(instance.sites):
        site = instance.sites[name]
        if not site.up:
            violations.append(f"site {name} still down after heal phase")
        count = site.in_doubt_count()
        if count:
            violations.append(
                f"site {name} still holds {count} in-doubt transaction(s) "
                f"after heal + quiesce"
            )
    return violations


def check_serializability(instance: RainbowInstance, result: SessionResult) -> list[str]:
    violations: list[str] = []
    if result.serializable is False:
        cycle = result.serialization_cycle or []
        violations.append(
            "committed history is not one-copy serializable "
            f"(cycle {' -> '.join(map(str, cycle))})"
        )
    history = instance.monitor.history
    if history is not None:
        violations.extend(history.version_collisions())
        violations.extend(history.reads_see_committed_versions())
    return violations


def check_conservation(
    instance: RainbowInstance,
    result: SessionResult,
    expected_submissions: Optional[int] = None,
) -> list[str]:
    violations: list[str] = []
    stats = result.statistics
    monitor = instance.monitor
    if stats.finished != stats.committed + stats.aborted:
        violations.append(
            f"finished ({stats.finished}) != committed ({stats.committed}) "
            f"+ aborted ({stats.aborted})"
        )
    if monitor.started != stats.finished:
        violations.append(
            f"{monitor.started - stats.finished} started transaction(s) "
            f"never finished (started {monitor.started}, finished {stats.finished})"
        )
    never_started = stats.submitted - monitor.started
    lost = sum(1 for outcome in result.outcomes if outcome.status == "LOST")
    if never_started < 0:
        violations.append(
            f"started ({monitor.started}) exceeds submitted ({stats.submitted})"
        )
    elif never_started > lost:
        violations.append(
            f"{never_started} submission(s) never started but only {lost} "
            "reported LOST by the workload generator"
        )
    if expected_submissions is not None and len(result.outcomes) != expected_submissions:
        violations.append(
            f"workload generator returned {len(result.outcomes)} outcomes "
            f"for {expected_submissions} transactions"
        )
    return violations


def check_all(
    instance: RainbowInstance,
    result: SessionResult,
    expected_submissions: Optional[int] = None,
) -> dict[str, list[str]]:
    """Run the full invariant catalog; keys follow :data:`INVARIANTS`."""
    return {
        "atomicity": check_atomicity(instance, result),
        "convergence": check_convergence(instance, result),
        "no_orphans": check_no_orphans(instance, result),
        "serializability": check_serializability(instance, result),
        "conservation": check_conservation(instance, result, expected_submissions),
    }
