"""The chaos engine: one full Rainbow session under a nemesis plan.

:func:`run_chaos_case` is the unit of chaos work: build an instance from a
seed, unleash the nemesis plan (generated from the same seed, or supplied
explicitly when the shrinker replays a subset), run a write-heavy
workload, then *heal everything* — heal partitions, restore cut links,
clear flaky windows, recover every crashed component — quiesce, and run
the invariant catalog over the final state.

Each case is fully self-contained (its own simulator, network, and seeded
random streams) and the report is plain picklable data, so cases fan out
across worker processes through :mod:`repro.experiments.runner` with
byte-identical results for any job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos import invariants
from repro.chaos.nemesis import ChaosPlan, FaultChunk, generate_plan, schedule_from_chunks
from repro.experiments.common import build_instance
from repro.monitor.tracing import ExecutionTracer, format_history
from repro.txn.transaction import txn_id_scope
from repro.workload.spec import WorkloadSpec

__all__ = ["ChaosCaseReport", "run_chaos_case"]

#: Post-heal drain window: long enough for uncertainty timeouts, decision
#: retries, and recovery resolution under the failure timeout profile.
QUIESCE_TIME = 200.0


@dataclass
class ChaosCaseReport:
    """Everything one chaos case produced (picklable for the runner)."""

    seed: int
    chunks: tuple[FaultChunk, ...]
    violations: dict[str, list[str]] = field(default_factory=dict)
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    lost: int = 0
    orphan_events: int = 0
    messages_dropped: int = 0
    messages_lost_random: int = 0
    messages_duplicated: int = 0
    fault_events: int = 0
    duration: float = 0.0
    # Coordinator-side orphans (home site died pre-decision).
    orphaned_txns: int = 0
    # Populated only for failing cases: the textbook-notation execution
    # history (so a violated invariant ships its interleaving next to the
    # fault plan) and, with ``trace=True``, the Chrome trace-event JSON.
    history: str = ""
    trace_json: str = ""

    @property
    def ok(self) -> bool:
        return not any(self.violations.values())

    def violated_invariants(self) -> list[str]:
        return [name for name in invariants.INVARIANTS if self.violations.get(name)]

    def flat_violations(self) -> list[str]:
        flat: list[str] = []
        for name in invariants.INVARIANTS:
            flat.extend(f"[{name}] {text}" for text in self.violations.get(name, []))
        return flat


def _chaos_workload(seed: int, n_transactions: int, arrival_rate: float) -> WorkloadSpec:
    """A write-heavy mixed workload: increments make lost updates visible."""
    return WorkloadSpec(
        n_transactions=n_transactions,
        arrival="poisson",
        arrival_rate=arrival_rate,
        min_ops=2,
        max_ops=5,
        read_fraction=0.6,
        increment_fraction=0.5,
        restart_on_abort=False,
        result_timeout=250.0,
    )


def run_chaos_case(
    seed: int,
    *,
    n_sites: int = 4,
    n_items: int = 12,
    replication_degree: int = 3,
    rcp: str = "QC",
    ccp: str = "2PL",
    acp: str = "2PC",
    n_transactions: int = 40,
    intensity: float = 1.0,
    sites_per_host: int = 1,
    batch_site_ops: bool = False,
    piggyback_prepare: bool = False,
    latency_aware_routing: bool = False,
    chunks: Optional[tuple[FaultChunk, ...]] = None,
    trace: bool = False,
) -> ChaosCaseReport:
    """Run one seeded chaos session and check every safety invariant.

    With ``chunks`` given, the nemesis is bypassed and exactly those fault
    episodes are injected — the shrinker's replay path.  Everything else
    (workload, network randomness) still derives from ``seed``, so a replay
    differs from the original run only by the removed faults.
    """
    from repro.protocols.base import ccp_registry

    if ccp.upper() not in ccp_registry():
        # Classroom protocols (e.g. the deliberately broken NOCC) register
        # on import; pull them in so chaos can target them by name.
        import repro.classroom  # noqa: F401

    arrival_rate = 0.4
    horizon = n_transactions / arrival_rate
    instance = build_instance(
        n_sites,
        n_items,
        replication_degree,
        rcp=rcp,
        ccp=ccp,
        acp=acp,
        seed=seed,
        failure_profile=True,
        settle_time=120.0,
        sites_per_host=sites_per_host,
        batch_site_ops=batch_site_ops,
        piggyback_prepare=piggyback_prepare,
        latency_aware_routing=latency_aware_routing,
        checkpoint_interval=50.0,
    )
    # Always observe the op-level execution (pure observation, so the run
    # is unchanged); enable span tracing only on request — the resulting
    # Chrome JSON is carried inside the picklable report, so traces stay
    # byte-identical across ``-j N`` worker placements.
    tracer = ExecutionTracer(instance.sim)
    tracer.attach_all(instance)
    span_tracer = instance.enable_tracing() if trace else None
    if chunks is None:
        plan = generate_plan(
            seed,
            site_names=instance.config.site_names(),
            site_hosts=[site.host for site in instance.config.sites],
            horizon=horizon,
            intensity=intensity,
        )
    else:
        plan = ChaosPlan(seed=seed, chunks=list(chunks))
    instance.config.faults.schedule = plan.schedule()

    # A chaos case is self-contained, so scope txn ids to it: raw ids (and
    # with them invariant messages, histories, and traces) become a pure
    # function of the seed, byte-identical for every -j worker placement.
    with txn_id_scope():
        result = instance.run_workload(
            _chaos_workload(seed, n_transactions, arrival_rate)
        )

    # Heal phase: undo every fault category, recover everything still down.
    instance.network.heal_partition()
    instance.network.restore_all_links()
    instance.network.clear_flaky_links()
    if not instance.nameserver.up:
        instance.injector.recover_now(instance.nameserver.name)
    for name in sorted(instance.sites):
        if not instance.sites[name].up:
            instance.injector.recover_now(name)
    instance.sim.run(until=instance.sim.now + QUIESCE_TIME)

    final = instance.session_result(result.outcomes)
    violations = invariants.check_all(
        instance, final, expected_submissions=n_transactions
    )
    stats = final.statistics
    failed = any(violations.values())
    history = ""
    if failed:
        history = format_history(tracer.global_events(), max_events=240)
    trace_json = ""
    if span_tracer is not None and failed:
        from repro.obs.export import spans_to_chrome_json

        trace_json = spans_to_chrome_json(span_tracer.spans)
    return ChaosCaseReport(
        seed=seed,
        chunks=tuple(plan.chunks),
        violations=violations,
        submitted=stats.submitted,
        committed=stats.committed,
        aborted=stats.aborted,
        lost=sum(1 for outcome in final.outcomes if outcome.status == "LOST"),
        orphan_events=stats.orphan_events,
        messages_dropped=stats.messages_dropped,
        messages_lost_random=stats.messages_lost_random,
        messages_duplicated=stats.messages_duplicated,
        fault_events=len(final.fault_log),
        duration=final.duration,
        orphaned_txns=stats.orphaned_txns,
        history=history,
        trace_json=trace_json,
    )
