"""Rainbow: a distributed database system for classroom education and
experimental research (Helal & Li, VLDB 2000) — Python reproduction.

The public API is re-exported here; see README.md for the quickstart and
DESIGN.md for the architecture.  Importing :mod:`repro` registers the stock
protocols (ROWA/ROWAA/QC, 2PL/TSO/MVTO/OCC, 2PC/3PC) in the protocol
registries; importing :mod:`repro.classroom` additionally registers the
deliberately broken NOCC demo protocol.
"""

import repro.protocols  # noqa: F401 - side effect: register stock protocols

from repro.core.config import (
    FaultConfig,
    NetworkConfig,
    ProtocolConfig,
    RainbowConfig,
    SiteConfig,
)
from repro.core.instance import RainbowInstance, SessionResult
from repro.errors import (
    CatalogError,
    CommitAbort,
    ConcurrencyAbort,
    ConfigurationError,
    RainbowError,
    ReplicationAbort,
    TransactionAborted,
    WorkloadError,
)
from repro.txn.transaction import Operation, OpKind, Transaction, TxnStatus
from repro.workload.generator import ManualWorkload, WorkloadGenerator
from repro.workload.spec import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "CatalogError",
    "CommitAbort",
    "ConcurrencyAbort",
    "ConfigurationError",
    "FaultConfig",
    "ManualWorkload",
    "NetworkConfig",
    "OpKind",
    "Operation",
    "ProtocolConfig",
    "RainbowConfig",
    "RainbowError",
    "RainbowInstance",
    "ReplicationAbort",
    "SessionResult",
    "SiteConfig",
    "Transaction",
    "TransactionAborted",
    "TxnStatus",
    "WorkloadError",
    "WorkloadGenerator",
    "WorkloadSpec",
    "__version__",
]
