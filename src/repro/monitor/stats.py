"""The progress monitor (PM): Rainbow's measurement facility.

"The performance of transaction processing and several dynamics of the
distributed database system can be monitored and measured.  Rainbow offers
an extensible set of output statistics including: number of committed
transactions, number of aborted transactions (and rate) due to RCP, ACP,
and CCP, transaction commit rate, transaction abort rates for each type of
aborts, total number of messages generated per time unit, transaction
throughput and response time measures, other parameters such as number of
orphan transactions, round trip messages and other load balance/imbalance
indicators."

:class:`ProgressMonitor` collects transaction events from the coordinators
and computes exactly that set in :meth:`output_statistics`.  A sampler
process additionally records a time series of the cumulative counters so
sessions can plot progress over simulated time (the GUI's Display menu).
"""

from __future__ import annotations

import statistics as stats_lib
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.txn.history import HistoryRecorder
from repro.txn.transaction import Transaction, TxnStatus

__all__ = ["TxnRecord", "OutputStatistics", "ProgressMonitor"]

ABORT_CAUSES = ("RCP", "CCP", "ACP", "SYSTEM")


@dataclass
class TxnRecord:
    """Summary of one finished transaction (the Tx Processing table rows)."""

    txn_id: int
    home_site: str
    status: str
    abort_cause: Optional[str]
    abort_detail: str
    submitted_at: float
    response_time: Optional[float]
    n_ops: int
    n_reads: int
    n_writes: int
    attempt: int
    messages: int = 0  # network messages attributable to this transaction


@dataclass
class OutputStatistics:
    """The paper's §3 statistics for one session (or one sample window)."""

    elapsed: float
    submitted: int
    finished: int
    committed: int
    aborted: int
    aborts_by_cause: dict[str, int]
    commit_rate: float  # committed / finished
    abort_rate: float
    abort_rates_by_cause: dict[str, float]
    throughput: float  # committed per time unit
    messages_total: int
    messages_per_time_unit: float
    messages_by_type: dict[str, int]
    mean_messages_per_txn: float
    round_trips: int
    rpc_timeouts: int
    mean_response_time: Optional[float]
    median_response_time: Optional[float]
    p95_response_time: Optional[float]
    orphans_current: int
    orphan_events: int
    orphans_resolved: int
    home_txns_by_site: dict[str, int]
    messages_handled_by_site: dict[str, int]
    load_imbalance: float  # coefficient of variation of per-site home txns
    # Fault-induced message pathologies (alongside dropped_by_type in the
    # network snapshot): messages deterministically dropped by partitions,
    # cut links, and crashed hosts; lost to probabilistic loss; and
    # duplicated by flaky links.
    messages_dropped: int = 0
    messages_lost_random: int = 0
    messages_duplicated: int = 0
    # Message-economy optimizations (docs/PERF.md): round trips the
    # coordinators avoided via batching and piggybacked prepares, and the
    # number of copy accesses that traveled inside BATCH_ACCESS messages.
    # Both stay 0 (and off the panel) unless the optimizations are enabled.
    round_trips_saved: int = 0
    batched_ops: int = 0
    # The paper's "number of orphan transactions" from the coordinator's
    # point of view: transactions whose home site died before a decision
    # was logged.  (``orphan_events``/``orphans_resolved`` above count the
    # participant side of the same phenomenon.)
    orphaned_txns: int = 0
    # Per-phase latency breakdown (mean/max per finished transaction, by
    # repro.obs phase taxonomy); populated only when span tracing is on,
    # so default sessions keep the exact historical panel bytes.
    phase_breakdown: dict[str, dict[str, float]] = field(default_factory=dict)
    # Simulator self-measurement: how fast the kernel ran this session in
    # real time.  These depend on the host machine — unlike every field
    # above, they are NOT deterministic and are excluded from experiment
    # tables, which must stay byte-identical run to run.
    processed_events: int = 0
    wall_clock_seconds: float = 0.0
    events_per_second: float = 0.0

    def as_rows(self) -> list[tuple[str, str]]:
        """(label, value) rows, in the order the Figure 5 panel lists them."""

        def fmt(value) -> str:
            if value is None:
                return "n/a"
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        rows = [
            ("Elapsed (sim time)", fmt(self.elapsed)),
            ("Transactions submitted", fmt(self.submitted)),
            ("Transactions finished", fmt(self.finished)),
            ("Committed transactions", fmt(self.committed)),
            ("Aborted transactions", fmt(self.aborted)),
        ]
        for cause in ABORT_CAUSES:
            rows.append(
                (
                    f"  aborts due to {cause}",
                    f"{self.aborts_by_cause.get(cause, 0)}"
                    f" (rate {self.abort_rates_by_cause.get(cause, 0.0):.3f})",
                )
            )
        rows += [
            ("Commit rate", fmt(self.commit_rate)),
            ("Abort rate", fmt(self.abort_rate)),
            ("Throughput (commits/time)", fmt(self.throughput)),
            ("Messages total", fmt(self.messages_total)),
            ("Messages per time unit", fmt(self.messages_per_time_unit)),
            ("Mean messages per transaction", fmt(self.mean_messages_per_txn)),
            ("Round-trip messages", fmt(self.round_trips)),
            ("RPC timeouts", fmt(self.rpc_timeouts)),
        ]
        # Only rendered when an optimization actually fired, so sessions
        # with the flags off keep the exact historical panel bytes.
        if self.round_trips_saved:
            rows.append(("Round trips saved (optimizations)", fmt(self.round_trips_saved)))
        if self.batched_ops:
            rows.append(("Batched copy accesses", fmt(self.batched_ops)))
        rows += [
            ("Messages dropped (faults)", fmt(self.messages_dropped)),
            ("Messages lost (random)", fmt(self.messages_lost_random)),
            ("Messages duplicated", fmt(self.messages_duplicated)),
            ("Mean response time", fmt(self.mean_response_time)),
            ("Median response time", fmt(self.median_response_time)),
            ("P95 response time", fmt(self.p95_response_time)),
            ("Orphan transactions (now)", fmt(self.orphans_current)),
            ("Orphan events (cumulative)", fmt(self.orphan_events)),
            ("Orphans resolved", fmt(self.orphans_resolved)),
        ]
        # Conditional rows (same byte-identity rule as the optimization
        # counters): orphaned coordinators only appear in crash sessions,
        # the phase breakdown only when span tracing was enabled.
        if self.orphaned_txns:
            rows.append(("Orphaned transactions (dead coordinator)", fmt(self.orphaned_txns)))
        if self.phase_breakdown:
            rows.append(("Per-phase latency (mean/max per txn)", ""))
            for phase, entry in self.phase_breakdown.items():
                rows.append(
                    (
                        f"  {phase}",
                        f"{entry['mean_per_txn']:.3f} / {entry['max_per_txn']:.3f}",
                    )
                )
        rows += [
            ("Load imbalance (CV of home txns)", fmt(self.load_imbalance)),
            ("Kernel events processed", fmt(self.processed_events)),
            ("Wall clock (s)", fmt(self.wall_clock_seconds)),
            ("Kernel events per second", f"{self.events_per_second:,.0f}"),
        ]
        return rows


class ProgressMonitor:
    """Collects transaction outcomes and computes the output statistics."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sites=None,
        record_history: bool = True,
        sample_interval: Optional[float] = None,
    ):
        self.sim = sim
        self.network = network
        self.sites = list(sites or [])
        self.history = HistoryRecorder() if record_history else None
        self.records: list[TxnRecord] = []
        self.submitted = 0
        self.started = 0
        self.committed = 0
        self.aborted = 0
        self.aborts_by_cause: Counter[str] = Counter()
        self.response_times: list[float] = []
        # Message-economy counters fed by the coordinators.
        self.round_trips_saved = 0
        self.batched_ops = 0
        # Coordinator-side orphans (txn.orphaned, set on home-site crash).
        self.orphaned_txns = 0
        # Span tracer (repro.obs.SpanTracer) when the instance has tracing
        # enabled; feeds the per-phase latency breakdown.
        self.span_tracer = None
        self.session_started_at = sim.now
        # Wall-clock/event baselines so the session self-reports simulator
        # performance (events/sec) alongside the paper's statistics.
        self._wall_started = time.perf_counter()
        self._events_at_start = sim.processed_events
        # Per-transaction message attribution (messages tagged txn_id).
        self._txn_messages: Counter[int] = Counter()
        network.add_observer(self._observe_message)
        self.series: dict[str, list[float]] = {
            "t": [],
            "committed": [],
            "aborted": [],
            "messages": [],
            "orphans": [],
        }
        if sample_interval:
            sim.process(self._sample_loop(sample_interval), name="pm:sampler")

    def _observe_message(self, msg, outcome) -> None:
        if msg.txn_id is not None:
            self._txn_messages[msg.txn_id] += 1

    # -- event intake ---------------------------------------------------------
    def txn_submitted(self, txn: Transaction) -> None:
        """A transaction entered the system (workload generator event)."""
        self.submitted += 1
        txn.submitted_at = self.sim.now

    def txn_started(self, txn: Transaction) -> None:
        """The home-site thread picked the transaction up."""
        self.started += 1

    def note_round_trips_saved(self, n: int = 1) -> None:
        """A coordinator avoided ``n`` request/reply round trips."""
        self.round_trips_saved += n

    def note_batched_ops(self, n_ops: int, saved: int) -> None:
        """``n_ops`` copy accesses traveled in one BATCH_ACCESS message."""
        self.batched_ops += n_ops
        self.round_trips_saved += saved

    def txn_finished(self, txn: Transaction, ctx=None) -> None:
        """The coordinator thread finished (committed or aborted)."""
        n_reads = sum(1 for op in txn.ops if op.kind == "R")
        self.records.append(
            TxnRecord(
                txn_id=txn.txn_id,
                home_site=txn.home_site,
                status=txn.status,
                abort_cause=txn.abort_cause,
                abort_detail=txn.abort_detail,
                submitted_at=txn.submitted_at,
                response_time=txn.response_time,
                n_ops=len(txn.ops),
                n_reads=n_reads,
                n_writes=len(txn.ops) - n_reads,
                attempt=txn.attempt,
                messages=self._txn_messages.pop(txn.txn_id, 0),
            )
        )
        if txn.committed:
            self.committed += 1
            if txn.response_time is not None:
                self.response_times.append(txn.response_time)
            if self.history is not None:
                self.history.record_commit(
                    txn.txn_id,
                    txn.read_versions,
                    txn.write_versions,
                    committed_at=txn.decided_at or self.sim.now,
                )
        else:
            self.aborted += 1
            self.aborts_by_cause[txn.abort_cause or "SYSTEM"] += 1
            if getattr(txn, "orphaned", False):
                self.orphaned_txns += 1

    # -- sampling ---------------------------------------------------------------
    def _sample_loop(self, interval: float):
        while True:
            yield self.sim.timeout(interval)
            self.sample()

    def sample(self) -> None:
        """Append one point of the cumulative-counter time series."""
        self.series["t"].append(self.sim.now)
        self.series["committed"].append(self.committed)
        self.series["aborted"].append(self.aborted)
        self.series["messages"].append(self.network.stats.sent)
        self.series["orphans"].append(self._orphans_current())

    # -- statistics ---------------------------------------------------------------
    def _orphans_current(self) -> int:
        return sum(site.in_doubt_count() for site in self.sites)

    def output_statistics(self) -> OutputStatistics:
        """Compute the full §3 statistics block for the session so far."""
        elapsed = max(self.sim.now - self.session_started_at, 1e-12)
        finished = self.committed + self.aborted
        finished_nz = max(finished, 1)
        net = self.network.stats

        response = sorted(self.response_times)
        mean_rt = stats_lib.fmean(response) if response else None
        median_rt = stats_lib.median(response) if response else None
        p95_rt = response[min(len(response) - 1, int(0.95 * len(response)))] if response else None

        wall_clock = max(time.perf_counter() - self._wall_started, 1e-9)
        processed = self.sim.processed_events - self._events_at_start

        home_by_site = {site.name: site.stats.home_txns_started for site in self.sites}
        handled_by_site = {site.name: site.stats.messages_handled for site in self.sites}
        orphan_events = sum(site.stats.orphan_events for site in self.sites)
        orphans_resolved = sum(site.stats.orphans_resolved for site in self.sites)

        phase_breakdown: dict[str, dict[str, float]] = {}
        if self.span_tracer is not None:
            from repro.obs.analyze import aggregate_phase_stats

            phase_breakdown = aggregate_phase_stats(
                self.span_tracer.spans,
                txn_ids=[record.txn_id for record in self.records],
            )

        return OutputStatistics(
            elapsed=elapsed,
            submitted=self.submitted,
            finished=finished,
            committed=self.committed,
            aborted=self.aborted,
            aborts_by_cause=dict(self.aborts_by_cause),
            commit_rate=self.committed / finished_nz,
            abort_rate=self.aborted / finished_nz,
            abort_rates_by_cause={
                cause: self.aborts_by_cause.get(cause, 0) / finished_nz
                for cause in ABORT_CAUSES
            },
            throughput=self.committed / elapsed,
            messages_total=net.sent,
            messages_per_time_unit=net.sent / elapsed,
            messages_by_type=dict(net.by_type),
            mean_messages_per_txn=(
                sum(record.messages for record in self.records) / finished_nz
            ),
            round_trips=net.round_trips,
            rpc_timeouts=net.rpc_timeouts,
            messages_dropped=net.dropped,
            messages_lost_random=net.lost_random,
            messages_duplicated=net.duplicated,
            round_trips_saved=self.round_trips_saved,
            batched_ops=self.batched_ops,
            mean_response_time=mean_rt,
            median_response_time=median_rt,
            p95_response_time=p95_rt,
            orphans_current=self._orphans_current(),
            orphan_events=orphan_events,
            orphans_resolved=orphans_resolved,
            orphaned_txns=self.orphaned_txns,
            phase_breakdown=phase_breakdown,
            home_txns_by_site=home_by_site,
            messages_handled_by_site=handled_by_site,
            load_imbalance=self._imbalance(list(home_by_site.values())),
            processed_events=processed,
            wall_clock_seconds=wall_clock,
            events_per_second=processed / wall_clock,
        )

    @staticmethod
    def _imbalance(values: list[int]) -> float:
        """Coefficient of variation: 0 = perfectly balanced."""
        if len(values) < 2:
            return 0.0
        mean = stats_lib.fmean(values)
        if mean == 0:
            return 0.0
        return stats_lib.pstdev(values) / mean

    def window_summary(self, t0: float, t1: float) -> dict:
        """Statistics restricted to decisions inside ``[t0, t1)``.

        Lets a session be sliced into before/during/after-failure windows
        ("measure the performance resulting from executing a Rainbow
        instance" — per phase).  A transaction belongs to the window of
        its decision instant.
        """
        if t1 <= t0:
            raise ValueError(f"empty window [{t0}, {t1})")
        committed = aborted = 0
        response_times = []
        for record in self.records:
            if record.response_time is None:
                continue
            decided_at = record.submitted_at + record.response_time
            if not t0 <= decided_at < t1:
                continue
            if record.status == TxnStatus.COMMITTED:
                committed += 1
                response_times.append(record.response_time)
            else:
                aborted += 1
        finished = committed + aborted
        return {
            "t0": t0,
            "t1": t1,
            "committed": committed,
            "aborted": aborted,
            "commit_rate": committed / finished if finished else 0.0,
            "throughput": committed / (t1 - t0),
            "mean_response_time": (
                stats_lib.fmean(response_times) if response_times else None
            ),
        }

    # -- convenience ---------------------------------------------------------------
    def check_serializable(self):
        """Run the 1SR check over the committed history (None if disabled)."""
        if self.history is None:
            return None
        return self.history.check_serializable()
