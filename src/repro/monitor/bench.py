"""``python -m repro bench`` — machine-readable performance baselines.

Writes two JSON artifacts the CI pipeline uploads on every run, so the
performance trajectory of the kernel and the transaction path is tracked
release over release:

* ``BENCH_kernel.json`` — discrete-event kernel throughput (events per
  wall-clock second) on the same three workloads as the pytest-benchmark
  suite: a pure timeout chain, an event ping-pong, and a full session.
* ``BENCH_session.json`` — transaction-path economy: messages and round
  trips per transaction with the message-economy optimizations
  (docs/PERF.md) off vs. all on, over the same co-located 8-site domain.

Simulation-derived numbers (events, messages, round trips, commit rate)
are deterministic for a given seed; only the wall-clock fields vary from
machine to machine.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.common import build_instance
from repro.sim.kernel import Simulator
from repro.workload.spec import WorkloadSpec

__all__ = ["run_kernel_bench", "run_session_bench", "write_bench_files"]


def _timeout_chain(n: int) -> tuple[int, float]:
    sim = Simulator()

    def chain():
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.process(chain())
    started = time.perf_counter()
    sim.run()
    return sim.processed_events, time.perf_counter() - started


def _ping_pong(n: int) -> tuple[int, float]:
    sim = Simulator()
    pending = []

    def ping():
        for _ in range(n):
            event = sim.event()
            pending.append(event)
            yield sim.timeout(0.5)
            yield event

    def pong():
        while True:
            yield sim.timeout(1.0)
            if pending:
                pending.pop().succeed(42)

    ping_process = sim.process(ping())
    sim.process(pong())
    started = time.perf_counter()
    sim.run(until=ping_process)
    return sim.processed_events, time.perf_counter() - started


def run_kernel_bench(
    chain_n: int = 150_000, pong_n: int = 40_000, n_txns: int = 100
) -> dict:
    """Kernel events/sec on the three standard workloads."""
    rows = []
    for workload, (events, wall) in (
        ("timeout-chain", _timeout_chain(chain_n)),
        ("ping-pong", _ping_pong(pong_n)),
    ):
        rows.append(
            {
                "workload": workload,
                "events": events,
                "wall_s": wall,
                "events_per_sec": events / wall,
            }
        )
    instance = build_instance(4, 32, 3, seed=5, settle_time=30.0)
    result = instance.run_workload(
        WorkloadSpec(
            n_transactions=n_txns,
            arrival="poisson",
            arrival_rate=0.5,
            min_ops=3,
            max_ops=6,
            read_fraction=0.7,
        )
    )
    stats = result.statistics
    rows.append(
        {
            "workload": "session",
            "events": stats.processed_events,
            "wall_s": stats.wall_clock_seconds,
            "events_per_sec": stats.events_per_second,
        }
    )
    return {"benchmark": "BENCH-KERNEL", "unit": "events/sec", "rows": rows}


def _session_point(label: str, *, optimized: bool, n_txns: int) -> dict:
    instance = build_instance(
        8,
        48,
        4,
        rcp="QC",
        ccp="MVTO",
        seed=7,
        settle_time=50.0,
        sites_per_host=4,
        batch_site_ops=optimized,
        piggyback_prepare=optimized,
        latency_aware_routing=optimized,
        latency="lanwan",
    )
    result = instance.run_workload(
        WorkloadSpec(
            n_transactions=n_txns,
            arrival="poisson",
            arrival_rate=0.2,
            min_ops=4,
            max_ops=6,
            read_fraction=0.6,
        )
    )
    stats = result.statistics
    net = instance.network.stats
    finished = max(stats.finished, 1)
    return {
        "config": label,
        "messages_per_txn": net.sent / finished,
        "round_trips_per_txn": net.round_trips / finished,
        "round_trips_saved_per_txn": stats.round_trips_saved / finished,
        "events_per_sec": stats.events_per_second,
        "mean_response_time": stats.mean_response_time or 0.0,
        "commit_rate": stats.commit_rate,
    }


def run_session_bench(n_txns: int = 120) -> dict:
    """Transaction-path message economy: optimizations off vs. all on."""
    rows = [
        _session_point("baseline", optimized=False, n_txns=n_txns),
        _session_point("optimized", optimized=True, n_txns=n_txns),
    ]
    return {
        "benchmark": "BENCH-SESSION",
        "domain": "8 sites / 2 hosts, degree 4, QC+MVTO+2PC, lanwan latency",
        "rows": rows,
    }


def write_bench_files(out_dir: str = ".") -> list[Path]:
    """Write ``BENCH_kernel.json`` and ``BENCH_session.json`` into ``out_dir``."""
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for name, payload in (
        ("BENCH_kernel.json", run_kernel_bench()),
        ("BENCH_session.json", run_session_bench()),
    ):
        path = target / name
        path.write_text(json.dumps(payload, indent=2) + "\n")
        written.append(path)
    return written
