"""Result export: CSV and JSON writers for statistics and tables.

Research use needs results that leave the tool: experiment tables, the §3
statistics block, and time series all serialise to CSV/JSON so they can be
post-processed (gnuplot, pandas, spreadsheets) outside Rainbow.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.monitor.stats import OutputStatistics

if TYPE_CHECKING:  # import cycle guard: experiments builds on the monitor
    from repro.experiments.common import ExperimentTable

__all__ = [
    "table_to_csv",
    "table_to_json",
    "statistics_to_json",
    "network_stats_to_json",
    "timeseries_to_csv",
    "trace_to_chrome_json",
    "trace_to_csv",
    "write_text",
]


def table_to_csv(table: "ExperimentTable", path: Optional[str | Path] = None) -> str:
    """Serialise an ExperimentTable to CSV (optionally writing ``path``)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=table.columns, lineterminator="\n")
    writer.writeheader()
    for row in table.rows:
        writer.writerow({column: row[column] for column in table.columns})
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def table_to_json(table: "ExperimentTable", path: Optional[str | Path] = None) -> str:
    """Serialise an ExperimentTable to JSON (optionally writing ``path``)."""
    payload = {
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
    }
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if path is not None:
        Path(path).write_text(text)
    return text


def statistics_to_json(
    statistics: OutputStatistics, path: Optional[str | Path] = None
) -> str:
    """Serialise the §3 statistics block to JSON."""
    text = json.dumps(asdict(statistics), indent=2, sort_keys=True, default=str)
    if path is not None:
        Path(path).write_text(text)
    return text


def network_stats_to_json(network_stats, path: Optional[str | Path] = None) -> str:
    """Serialise a :class:`NetworkStats` snapshot to JSON.

    Includes the per-type breakdowns of dropped (faults), randomly lost,
    and duplicated messages alongside the aggregate counters.
    """
    text = json.dumps(network_stats.snapshot(), indent=2, sort_keys=True, default=str)
    if path is not None:
        Path(path).write_text(text)
    return text


def timeseries_to_csv(
    series: dict[str, list[float]], path: Optional[str | Path] = None
) -> str:
    """Serialise a progress-monitor time series dict to CSV.

    Columns are the series keys; rows align by sample index.
    """
    keys = list(series)
    length = max((len(values) for values in series.values()), default=0)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(keys)
    for index in range(length):
        writer.writerow(
            [series[key][index] if index < len(series[key]) else "" for key in keys]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def trace_to_chrome_json(tracer, path: Optional[str | Path] = None) -> str:
    """Serialise a span trace to Chrome trace-event JSON (Perfetto).

    ``tracer`` is a :class:`repro.obs.SpanTracer` (or a span list); see
    docs/OBSERVABILITY.md for how to load the result in Perfetto.
    """
    from repro.obs.export import spans_to_chrome_json

    text = spans_to_chrome_json(tracer)
    if path is not None:
        Path(path).write_text(text)
    return text


def trace_to_csv(tracer, path: Optional[str | Path] = None) -> str:
    """Serialise a span trace to a flat per-span CSV."""
    from repro.obs.export import spans_to_csv

    text = spans_to_csv(tracer)
    if path is not None:
        Path(path).write_text(text)
    return text


def write_text(text: str, path: str | Path) -> Path:
    """Write any rendered artifact (panel, chart, table) to a file."""
    target = Path(path)
    target.write_text(text)
    return target
