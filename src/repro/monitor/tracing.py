"""Execution tracing: local and global histories.

Rainbow lets the user "observe local as well as global executions (history
and measured behavior and performance)".  The :class:`ExecutionTracer`
subscribes to site-level operation events and records, per site, the local
history of CCP-mediated operations — and, by merging on simulated time, the
global history of the whole instance.

Histories render in the textbook notation students know::

    r1[x]  w2[y=5]  p2  c2  a1

(read/write by transaction id, prepare, commit, abort), so a lab exercise
can literally print the interleaving an execution produced and discuss its
serializability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["TraceEvent", "ExecutionTracer", "format_history"]

EVENT_KINDS = ("read", "prewrite", "prepare", "precommit", "commit", "abort")


@dataclass
class TraceEvent:
    """One observed protocol event at one site."""

    at: float
    site: str
    kind: str  # one of EVENT_KINDS
    txn_id: int
    item: Optional[str] = None
    value: object = None
    version: Optional[float] = None

    def notation(self) -> str:
        """Textbook notation for this event."""
        if self.kind == "read":
            return f"r{self.txn_id}[{self.item}]"
        if self.kind == "prewrite":
            return f"w{self.txn_id}[{self.item}={self.value}]"
        if self.kind == "prepare":
            return f"p{self.txn_id}"
        if self.kind == "precommit":
            return f"pc{self.txn_id}"
        if self.kind == "commit":
            return f"c{self.txn_id}"
        return f"a{self.txn_id}"


def format_history(events: Iterable[TraceEvent], max_events: int | None = None) -> str:
    """Render a sequence of trace events as one history string."""
    ordered = sorted(events, key=lambda event: (event.at, event.txn_id))
    if max_events is not None:
        ordered = ordered[:max_events]
    return "  ".join(event.notation() for event in ordered)


class ExecutionTracer:
    """Collects local histories from instrumented sites.

    Attach with :meth:`attach`; it wraps the site's ``local_*`` entry points
    so every CCP-mediated operation and every termination event is recorded.
    Tracing is opt-in (it costs memory) — sessions that only need statistics
    skip it.
    """

    def __init__(self, sim):
        self.sim = sim
        self.events: list[TraceEvent] = []
        self._attached: set[str] = set()

    # -- instrumentation ----------------------------------------------------
    def attach(self, site) -> None:
        """Instrument one site (idempotent per site name)."""
        if site.name in self._attached:
            return
        self._attached.add(site.name)
        tracer = self

        original_read = site.local_read
        original_prewrite = site.local_prewrite
        original_prepare = site.local_prepare
        original_precommit = site.local_precommit
        original_commit = site.local_commit
        original_abort = site.local_abort

        def traced_read(txn, ts, item):
            result = yield from original_read(txn, ts, item)
            value, version = result
            tracer.record("read", site.name, txn, item=item, value=value, version=version)
            return result

        def traced_prewrite(txn, ts, item, value):
            version = yield from original_prewrite(txn, ts, item, value)
            tracer.record("prewrite", site.name, txn, item=item, value=value,
                          version=version)
            return version

        def traced_prepare(txn, versions, coordinator, ts, acp="2PC", peers=None):
            vote = original_prepare(txn, versions, coordinator, ts, acp=acp, peers=peers)
            if vote[0]:
                tracer.record("prepare", site.name, txn)
            return vote

        def traced_precommit(txn):
            original_precommit(txn)
            tracer.record("precommit", site.name, txn)

        def traced_commit(txn):
            original_commit(txn)
            tracer.record("commit", site.name, txn)

        def traced_abort(txn):
            original_abort(txn)
            tracer.record("abort", site.name, txn)

        site.local_read = traced_read
        site.local_prewrite = traced_prewrite
        site.local_prepare = traced_prepare
        site.local_precommit = traced_precommit
        site.local_commit = traced_commit
        site.local_abort = traced_abort

    def attach_all(self, instance) -> None:
        """Instrument every site of a RainbowInstance."""
        for site in instance.sites.values():
            self.attach(site)

    def record(self, kind: str, site: str, txn_id: int, item=None, value=None,
               version=None) -> None:
        """Append one event (public so custom protocols can trace too)."""
        self.events.append(
            TraceEvent(
                at=self.sim.now,
                site=site,
                kind=kind,
                txn_id=txn_id,
                item=item,
                value=value,
                version=version,
            )
        )

    # -- views -------------------------------------------------------------------
    def local_events(self, site: str) -> list[TraceEvent]:
        """The local history of one site, in time order."""
        return sorted(
            (event for event in self.events if event.site == site),
            key=lambda event: (event.at, event.txn_id),
        )

    def global_events(self) -> list[TraceEvent]:
        """The merged global history, in time order."""
        return sorted(self.events, key=lambda event: (event.at, event.txn_id))

    def txn_events(self, txn_id: int) -> list[TraceEvent]:
        """Every event one transaction produced, across all sites."""
        return sorted(
            (event for event in self.events if event.txn_id == txn_id),
            key=lambda event: (event.at, event.site),
        )

    def local_history(self, site: str, max_events: int | None = None) -> str:
        """The local history string of one site."""
        return format_history(self.local_events(site), max_events)

    def global_history(self, max_events: int | None = None) -> str:
        """The global history string of the whole instance."""
        return format_history(self.global_events(), max_events)

    def operation_counts(self) -> dict[str, int]:
        """Events per kind (a quick sanity view for lab reports)."""
        counts: dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
