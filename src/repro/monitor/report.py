"""Session reports: one markdown document per Rainbow session.

Research needs a write-up, classrooms need a lab report; this module
assembles both from a finished session: the §3 statistics block, the
per-site table, the message-traffic breakdown, the fault log, the
serializability verdict, and (optionally) the tail of the global execution
history.  The output is plain markdown with the ASCII panels embedded in
code fences, so it reads in a terminal, a gist, or a grading system alike.
"""

from __future__ import annotations


__all__ = ["session_report"]


def session_report(
    instance,
    result,
    *,
    title: str = "Rainbow session report",
    tracer=None,
    history_tail: int = 40,
) -> str:
    """Build the markdown report for ``result`` produced on ``instance``."""
    # Imported here to keep the monitor package free of a gui dependency
    # at import time (gui builds on web, which builds on core, which
    # imports the monitor).
    from repro.gui.panels import (
        render_session_panel,
        render_sites_panel,
        render_traffic_panel,
    )

    stats = result.statistics
    protocols = instance.config.protocols
    lines = [
        f"# {title}",
        "",
        f"- Protocols: RCP={protocols.rcp}, CCP={protocols.ccp}, "
        f"ACP={protocols.acp}",
        f"- Domain: {len(instance.sites)} sites on "
        f"{len({s.host for s in instance.sites.values()})} hosts, "
        f"{len(instance.catalog)} items",
        f"- Simulated duration: {result.duration:.1f} time units",
        f"- Simulator: {stats.processed_events} kernel events in "
        f"{stats.wall_clock_seconds:.3f}s wall clock "
        f"({stats.events_per_second:,.0f} events/sec)",
        f"- Committed history one-copy serializable: **{result.serializable}**",
    ]
    if result.serialization_cycle:
        lines.append(
            f"- Serialization cycle: {result.serialization_cycle} "
            "(**violation — investigate the protocol configuration**)"
        )
    collisions = (
        instance.monitor.history.version_collisions()
        if instance.monitor.history is not None
        else []
    )
    if collisions:
        lines.append(f"- Version collisions: {collisions}")
    lines += [
        "",
        "## Output statistics",
        "",
        "```",
        render_session_panel(stats, instance.monitor.records[-5:]),
        "```",
        "",
        "## Sites",
        "",
        "```",
        render_sites_panel(instance.sites.values()),
        "```",
        "",
        "## Message traffic",
        "",
        "```",
        render_traffic_panel(
            instance.network.stats,
            round_trips_saved=stats.round_trips_saved,
            batched_ops=stats.batched_ops,
        ),
        "```",
    ]
    if result.fault_log:
        lines += ["", "## Injected faults", ""]
        for event in result.fault_log:
            detail = f" {event.detail}" if event.detail else ""
            lines.append(f"- t={event.time:.1f}: {event.kind} {event.target}{detail}")
    if tracer is not None and tracer.events:
        lines += [
            "",
            f"## Global execution history (last {history_tail} events)",
            "",
            "```",
            _tail_history(tracer, history_tail),
            "```",
        ]
    lines.append("")
    return "\n".join(lines)


def _tail_history(tracer, count: int) -> str:
    from repro.monitor.tracing import format_history

    events = tracer.global_events()
    return format_history(events[-count:])
