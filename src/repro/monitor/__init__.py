"""Progress monitor: statistics, time series, tracing, result export."""

from repro.monitor.export import (
    network_stats_to_json,
    statistics_to_json,
    table_to_csv,
    table_to_json,
    timeseries_to_csv,
    trace_to_chrome_json,
    trace_to_csv,
)
from repro.monitor.report import session_report
from repro.monitor.stats import OutputStatistics, ProgressMonitor, TxnRecord
from repro.monitor.tracing import ExecutionTracer, TraceEvent, format_history

__all__ = [
    "ExecutionTracer",
    "OutputStatistics",
    "ProgressMonitor",
    "TraceEvent",
    "TxnRecord",
    "format_history",
    "network_stats_to_json",
    "session_report",
    "statistics_to_json",
    "table_to_csv",
    "table_to_json",
    "timeseries_to_csv",
    "trace_to_chrome_json",
    "trace_to_csv",
]
