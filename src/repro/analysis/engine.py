"""The lint engine: file collection, parsing, project context, rule driving.

``run_lint`` is the single entry point used by both the CLI and the test
suite.  It walks the requested paths, parses every ``*.py`` file once,
builds the project-wide class/registration tables that the cross-module
rules need, runs each selected rule over each module, and filters the
findings through the ``# rb: ignore`` tables.

Everything is deterministic: files are visited in sorted order and
findings are reported sorted by ``(path, line, col, rule)`` — the analyzer
holds itself to the invariant it enforces.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.core import ERROR, Finding, Rule, all_rules
from repro.analysis.ignores import IgnoreTable, parse_ignores

__all__ = [
    "ClassRecord",
    "LintReport",
    "ModuleInfo",
    "Project",
    "collect_files",
    "run_lint",
]

#: Rule id reserved for files that fail to parse.
SYNTAX_RULE_ID = "RB100"

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules", ".eggs"}


@dataclass
class ModuleInfo:
    """One parsed source file plus the per-file lookup tables rules use."""

    path: str                    # absolute path on disk
    relpath: str                 # path as reported in findings
    source: str
    tree: ast.Module
    ignores: IgnoreTable

    @property
    def path_parts(self) -> tuple[str, ...]:
        return tuple(self.relpath.replace(os.sep, "/").split("/"))


@dataclass
class ClassRecord:
    """Statically-visible facts about one class definition."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: tuple[str, ...]           # base names as written (dotted tail only)
    methods: frozenset[str]          # names of functions defined in the body
    has_slots: bool                  # body assigns __slots__


def _base_name(expr: ast.expr) -> str | None:
    """The usable name of a base-class expression (``a.b.C`` -> ``C``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class Project:
    """Cross-module context shared by every rule in one run.

    Builds a best-effort class table (name -> records) so rules can walk
    statically-visible inheritance chains, plus the set of class names
    referenced from ``register_ccp``/``register_rcp``/``register_acp``
    calls anywhere in the analyzed set.
    """

    REGISTER_FUNCS = ("register_ccp", "register_rcp", "register_acp")

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.classes: dict[str, list[ClassRecord]] = {}
        self.registered_names: set[str] = set()
        self.base_names: set[str] = set()
        for module in self.modules:
            self._index_module(module)

    def _index_module(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    name for name in (_base_name(b) for b in node.bases) if name
                )
                methods = frozenset(
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                has_slots = any(
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                    for stmt in node.body
                )
                record = ClassRecord(node.name, module, node, bases, methods, has_slots)
                self.classes.setdefault(node.name, []).append(record)
                self.base_names.update(bases)
            elif isinstance(node, ast.Call):
                func = node.func
                func_name = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                if func_name in self.REGISTER_FUNCS:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name):
                                self.registered_names.add(sub.id)
                            elif isinstance(sub, ast.Attribute):
                                self.registered_names.add(sub.attr)

    def resolve(self, class_name: str) -> ClassRecord | None:
        """The record for ``class_name`` (first definition wins)."""
        records = self.classes.get(class_name)
        return records[0] if records else None

    def ancestry(self, record: ClassRecord, limit: int = 32) -> Iterator[ClassRecord]:
        """Walk statically-resolvable ancestors, nearest first, cycle-safe."""
        seen = {record.name}
        frontier = list(record.bases)
        while frontier and limit > 0:
            limit -= 1
            base = frontier.pop(0)
            if base in seen:
                continue
            seen.add(base)
            parent = self.resolve(base)
            if parent is None:
                continue
            yield parent
            frontier.extend(parent.bases)

    def descends_from(self, record: ClassRecord, root_names: Iterable[str]) -> bool:
        """True if ``record`` names any of ``root_names`` in its static MRO."""
        roots = set(root_names)
        if set(record.bases) & roots:
            return True
        return any(set(parent.bases) & roots for parent in self.ancestry(record))


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand ``paths`` (files or directories) into sorted ``*.py`` files."""
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(os.path.abspath(path))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS
                                     and not d.startswith("."))
                for filename in filenames:
                    if filename.endswith(".py"):
                        found.add(os.path.abspath(os.path.join(dirpath, filename)))
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(found)


def _relpath(path: str) -> str:
    rel = os.path.relpath(path)
    return path if rel.startswith("..") else rel


def run_lint(
    paths: Sequence[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint ``paths`` and return the (deterministically ordered) report."""
    # RB100 is emitted by the engine itself, not a registered rule; honour
    # the filters for it here and strip it before the registry lookup.
    select_set = {s.upper() for s in select} if select else None
    ignore_set = {s.upper() for s in ignore} if ignore else set()
    syntax_wanted = (
        SYNTAX_RULE_ID not in ignore_set
        and (select_set is None or SYNTAX_RULE_ID in select_set)
    )
    if select_set is not None:
        select_set.discard(SYNTAX_RULE_ID)
    ignore_set.discard(SYNTAX_RULE_ID)

    rules: list[Rule] = all_rules(select=select_set, ignore=ignore_set)
    report = LintReport()
    modules: list[ModuleInfo] = []

    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.files_checked += 1
        relpath = _relpath(path)
        ignores = parse_ignores(source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            finding = Finding(
                path=relpath,
                line=err.lineno or 1,
                col=(err.offset or 0) + 1 if err.offset is not None else 1,
                rule_id=SYNTAX_RULE_ID,
                message=f"syntax error: {err.msg}",
                severity=ERROR,
            )
            if not syntax_wanted or ignores.suppresses(finding.line, SYNTAX_RULE_ID):
                report.suppressed += 1
            else:
                report.findings.append(finding)
            continue
        modules.append(ModuleInfo(path, relpath, source, tree, ignores))

    project = Project(modules)
    for module in modules:
        for rule in rules:
            for finding in rule.check_module(module, project):
                if module.ignores.suppresses(finding.line, finding.rule_id):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)

    report.findings.sort()
    return report
