"""Text and JSON rendering of lint reports.

Text output is the familiar ``path:line:col RBxxx [severity] message``
shape (clickable in editors and CI logs); JSON is a stable envelope for
tooling.  Both render findings in the engine's deterministic order.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

__all__ = ["render_json", "render_text"]


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    """Human-readable report; one finding per line plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule_id} [{finding.severity}] {finding.message}"
        for finding in report.findings
    ]
    n = len(report.findings)
    summary = (
        f"{n} finding{'s' if n != 1 else ''} in {report.files_checked} "
        f"file{'s' if report.files_checked != 1 else ''}"
    )
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed by rb: ignore)"
    if n or verbose:
        lines.append(summary)
    elif not lines:
        lines.append(f"ok: {summary}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """JSON envelope: summary counts plus the ordered finding list."""
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
