"""Generator-protocol rules: RB101 unyielded-event, RB103 generator-contract.

The kernel drives *generators*: a protocol handler suspends by yielding an
:class:`~repro.sim.kernel.Event` and delegates to sub-generators with
``yield from``.  Two silent failure modes follow:

* calling an event/RPC-returning API and discarding the result inside a
  generator — the event exists but nobody waits on it, so the handler
  races ahead (``ctx.broadcast(...)`` without ``yield from`` "sends"
  nothing as far as the caller can tell);
* declaring ``-> Generator`` on a plain function (or writing a generator
  protocol handler without the annotation) — ``sim.process(fn())`` then
  dies at runtime, or type-checkers reason from a lie.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ERROR, Finding, Rule, register_rule
from repro.analysis.engine import ModuleInfo, Project

__all__ = ["UnyieldedEventRule", "GeneratorContractRule", "EVENT_RETURNING_APIS"]

#: Method names whose result is an Event / generator that is inert unless
#: yielded (or explicitly bound for later yielding).  Deliberately excludes
#: the fire-and-forget surface — ``Simulator.defer``, ``Endpoint.send``,
#: ``Endpoint.reply``, ``Simulator.call_later`` — which is *designed* to be
#: called as a bare statement.
EVENT_RETURNING_APIS = frozenset({
    # TxnContext / coordinator surface
    "broadcast", "collect_votes",
    "access_read", "access_prewrite", "access_read_many", "access_prewrite_many",
    # RCP / CCP / ACP handler generators
    "do_read", "do_write", "local_read", "local_prewrite",
    # kernel event constructors
    "timeout", "event", "any_of", "all_of",
    # endpoint RPC surface
    "request", "receive",
})

#: Return-annotation names treated as "this is a generator".
GENERATORISH_ANNOTATIONS = frozenset({"Generator", "Iterator", "Iterable"})

#: Handler methods whose generator-ness is part of the protocol contract.
HANDLER_METHODS = frozenset({"read", "prewrite", "do_read", "do_write", "run"})

#: The interfaces whose subclasses the handler check applies to.
PROTOCOL_INTERFACES = frozenset({
    "ConcurrencyController", "ReplicationController", "CommitProtocol",
})


def _own_statements(func: ast.FunctionDef) -> Iterator[ast.stmt]:
    """Statements in ``func``'s own scope (nested def/class bodies excluded)."""
    stack: list[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif hasattr(child, "body") and not isinstance(child, ast.expr):
                # Compound clause nodes (ExceptHandler, match cases, with
                # items) carry statement lists one level down.
                stack.extend(s for s in getattr(child, "body") if isinstance(s, ast.stmt))


def is_generator(func: ast.FunctionDef) -> bool:
    """True if ``func`` contains a yield in its own scope.

    Yields inside nested ``def``/``lambda`` belong to the nested scope and
    do not make the outer function a generator, so nested scopes are pruned.
    """
    found = False

    class _Visitor(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is func:
                self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

        def visit_Yield(self, node: ast.Yield) -> None:
            nonlocal found
            found = True

        visit_YieldFrom = visit_Yield  # type: ignore[assignment]

    _Visitor().visit(func)
    return found


def _is_abstract_stub(func: ast.FunctionDef) -> bool:
    """Body is only a docstring plus ``raise``/``pass``/``...`` — an interface stub."""
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    return all(
        isinstance(stmt, (ast.Raise, ast.Pass))
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The head name of a return annotation (``Generator[int, None, None]`` -> ``Generator``)."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] or None
    return None


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register_rule
class UnyieldedEventRule(Rule):
    """RB101: event/RPC-returning call discarded inside a generator."""

    id = "RB101"
    name = "unyielded-event"
    severity = ERROR
    description = (
        "a call to an event/RPC-returning API (broadcast, collect_votes, "
        "request, timeout, do_read, ...) inside a generator function whose "
        "result is neither yielded, `yield from`ed, nor bound — a silent "
        "no-op in the kernel"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef) or not is_generator(node):
                continue
            for stmt in _own_statements(node):
                # Only bare expression statements: a bound, yielded,
                # returned, or argument-position result is (at least
                # plausibly) consumed later.
                if not isinstance(stmt, ast.Expr):
                    continue
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                api = _call_name(value)
                if api in EVENT_RETURNING_APIS:
                    yield self.finding(
                        module, stmt,
                        f"result of event-returning call `{api}(...)` is discarded "
                        f"inside generator `{node.name}`; drive it with `yield` / "
                        f"`yield from` (or bind it) or the call is a silent no-op",
                    )


@register_rule
class GeneratorContractRule(Rule):
    """RB103: `-> Generator` annotations must match generator-ness."""

    id = "RB103"
    name = "generator-contract"
    severity = ERROR
    description = (
        "a function annotated `-> Generator` contains no yield (or a "
        "protocol handler method that *is* a generator lacks the "
        "annotation); abstract interface stubs are exempt"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                record = project.resolve(node.name)
                in_protocol = record is not None and (
                    node.name in PROTOCOL_INTERFACES
                    or project.descends_from(record, PROTOCOL_INTERFACES)
                )
                for stmt in node.body:
                    if isinstance(stmt, ast.FunctionDef):
                        yield from self._check_function(
                            module, stmt, in_protocol_class=in_protocol
                        )
            elif isinstance(node, ast.FunctionDef) and self._is_module_level(node, module):
                yield from self._check_function(module, node, in_protocol_class=False)

    @staticmethod
    def _is_module_level(node: ast.FunctionDef, module: ModuleInfo) -> bool:
        return node in module.tree.body

    def _check_function(
        self, module: ModuleInfo, func: ast.FunctionDef, *, in_protocol_class: bool
    ) -> Iterator[Finding]:
        annotated = _annotation_name(func.returns) in GENERATORISH_ANNOTATIONS
        generator = is_generator(func)
        if annotated and not generator and not _is_abstract_stub(func):
            yield self.finding(
                module, func,
                f"`{func.name}` is annotated `-> {_annotation_name(func.returns)}` "
                f"but contains no yield; it will not suspend when driven by the kernel",
            )
        elif (
            not annotated
            and generator
            and in_protocol_class
            and func.name in HANDLER_METHODS
        ):
            yield self.finding(
                module, func,
                f"protocol handler `{func.name}` is a generator but lacks a "
                f"`-> Generator` return annotation; annotate it so the contract "
                f"is visible to readers and type checkers",
            )
