"""rainbow-lint: AST-based determinism & protocol-conformance analysis.

Rainbow's pedagogical contract rests on two properties that ordinary
linters cannot see:

* **Determinism** — a given seed always replays the same history.  A stray
  module-level ``random.*`` call, a wall-clock read, or iteration over a
  ``set`` feeding a scheduling decision silently de-correlates replays.
* **Protocol conformance** — student protocol swaps (2PL/TSO/MVTO,
  ROWA/QC, 2PC/3PC) plug into the stack only if they implement the
  family's interface, self-register, and drive the kernel's generator
  protocol correctly.  A handler that calls ``ctx.broadcast(...)`` without
  ``yield from`` never sends anything — a silent no-op.

This package encodes those invariants as machine-checked rules:

========  ======================  =============================================
Rule id   Name                    What it catches
========  ======================  =============================================
RB100     syntax-error            file does not parse (everything else skipped)
RB101     unyielded-event         event/RPC-returning call discarded inside a
                                  generator function
RB102     nondeterminism-hazard   global ``random``, unseeded ``Random()``,
                                  wall clock, set-order iteration, ``id()``
                                  sort keys
RB103     generator-contract      ``-> Generator`` without ``yield`` and
                                  protocol handlers missing the annotation
RB104     protocol-conformance    protocol subclass missing required methods
                                  or never registered
RB105     sim-hygiene             mutable default args, missing ``__slots__``
                                  in a slotted hierarchy
RB106     trace-hygiene           span/trace emission code drawing RNG, reading
                                  the wall clock, or ordering by unordered sets
========  ======================  =============================================

Suppress a finding with an inline ``# rb: ignore[RB101] -- reason`` comment
on the flagged line, or a whole file with ``# rb: ignore-file[RB102]`` in
its first ten lines.  Run it with ``python -m repro lint [paths]``.
"""

from repro.analysis.core import Finding, Rule, all_rules, register_rule, rule_catalog
from repro.analysis.engine import LintReport, ModuleInfo, Project, collect_files, run_lint
from repro.analysis.reporting import render_json, render_text

# Importing the rule modules registers the stock rules.
from repro.analysis import rules_determinism  # noqa: F401  - side-effect registration
from repro.analysis import rules_generators  # noqa: F401
from repro.analysis import rules_hygiene  # noqa: F401
from repro.analysis import rules_protocol  # noqa: F401
from repro.analysis import rules_tracing  # noqa: F401

__all__ = [
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "collect_files",
    "register_rule",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_lint",
]
