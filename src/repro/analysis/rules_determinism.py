"""RB102 nondeterminism-hazard: sources of replay divergence.

The simulator's contract is that a seed fully determines the history.
Anything that smuggles entropy in from outside the seeded
:class:`~repro.sim.randoms.RandomStreams` breaks replays *silently* — the
run still "works", it just stops being reproducible.  Flagged hazards:

* calls through the **global** ``random`` module (``random.random()``,
  ``random.choice(...)``, ``from random import choice``): shared global
  state, perturbed by any other consumer;
* ``random.Random()`` with no seed argument: seeded from the OS;
* **wall-clock** reads (``time.time``, ``perf_counter``,
  ``datetime.now``, ...) anywhere except ``monitor/`` and ``benchmarks/``,
  which legitimately report host performance;
* iterating a ``set``/``frozenset`` directly in ``for`` or a
  comprehension: order depends on ``PYTHONHASHSEED`` for str keys — wrap
  in ``sorted(...)``;
* ``id()`` used in a sort key: memory addresses vary run to run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ERROR, Finding, Rule, register_rule
from repro.analysis.engine import ModuleInfo, Project

__all__ = ["NondeterminismRule"]

#: Functions of the ``random`` module that draw from the global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "expovariate", "gauss", "normalvariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "seed", "randbytes",
})

#: ``time`` module wall-clock readers.
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
})

#: ``datetime``/``date`` constructors that read the clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Path components whose files may read the wall clock (self-reported
#: simulator performance is host-dependent by definition).
_WALLCLOCK_EXEMPT_PARTS = frozenset({"monitor", "benchmarks"})

#: ``sorted``/``min``/``max``/``list.sort`` — callables that take ``key=``.
_SORTERS = frozenset({"sorted", "min", "max", "sort"})


def _dotted_head(node: ast.expr) -> str | None:
    """``random.choice`` -> ``random``; ``a.b.c`` -> ``a`` (Names only)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _ImportMap:
    """What the module-level names in this file refer to."""

    def __init__(self, tree: ast.Module):
        self.module_aliases: dict[str, str] = {}   # local name -> module
        self.from_imports: dict[str, tuple[str, str]] = {}  # local -> (module, orig)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = \
                        (node.module, alias.name)


@register_rule
class NondeterminismRule(Rule):
    """RB102: entropy sources outside the seeded random streams."""

    id = "RB102"
    name = "nondeterminism-hazard"
    severity = ERROR
    description = (
        "global `random.*` usage, unseeded `random.Random()`, wall-clock "
        "reads outside monitor//benchmarks/, direct set-order iteration, "
        "or `id()` in sort keys — all of which de-correlate seeded replays"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        imports = _ImportMap(module.tree)
        wallclock_exempt = bool(set(module.path_parts) & _WALLCLOCK_EXEMPT_PARTS)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, imports, wallclock_exempt)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(module, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    yield from self._check_iteration(module, comp.iter, "comprehension")

    # -- calls ---------------------------------------------------------------
    def _check_call(
        self, module: ModuleInfo, call: ast.Call, imports: _ImportMap,
        wallclock_exempt: bool,
    ) -> Iterator[Finding]:
        func = call.func

        # random.<fn>(...) through the module object.
        if isinstance(func, ast.Attribute):
            head = _dotted_head(func)
            head_module = imports.module_aliases.get(head or "")
            if head_module == "random":
                if func.attr in _GLOBAL_RANDOM_FUNCS:
                    yield self.finding(
                        module, call,
                        f"`random.{func.attr}(...)` draws from the shared global "
                        f"RNG; use a stream from `RandomStreams` instead",
                    )
                elif func.attr == "Random" and not call.args and not call.keywords:
                    yield self.finding(
                        module, call,
                        "`random.Random()` without a seed is OS-seeded and "
                        "unreproducible; pass an explicit seed",
                    )
            elif head_module == "time" and func.attr in _TIME_FUNCS:
                if not wallclock_exempt:
                    yield self.finding(
                        module, call,
                        f"wall-clock read `time.{func.attr}()` outside monitor//"
                        f"benchmarks/; use `sim.now` for simulated time",
                    )
            elif func.attr in _DATETIME_FUNCS and self._is_datetime_head(
                func, imports
            ):
                if not wallclock_exempt:
                    yield self.finding(
                        module, call,
                        f"wall-clock read `datetime.{func.attr}()` outside "
                        f"monitor//benchmarks/; use `sim.now` for simulated time",
                    )
        elif isinstance(func, ast.Name):
            origin = imports.from_imports.get(func.id)
            if origin is not None and origin[0] == "random":
                original = origin[1]
                if original in _GLOBAL_RANDOM_FUNCS:
                    yield self.finding(
                        module, call,
                        f"`{func.id}(...)` (from `random import {original}`) draws "
                        f"from the shared global RNG; use a `RandomStreams` stream",
                    )
                elif original == "Random" and not call.args and not call.keywords:
                    yield self.finding(
                        module, call,
                        "`Random()` without a seed is OS-seeded and "
                        "unreproducible; pass an explicit seed",
                    )

        # id() in sort keys.
        func_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if func_name in _SORTERS:
            for keyword in call.keywords:
                if keyword.arg == "key" and self._key_uses_id(keyword.value):
                    yield self.finding(
                        module, keyword.value,
                        f"`{func_name}(..., key=...)` uses `id()`: memory addresses "
                        f"differ between runs, so tie-breaks are unreproducible",
                    )

    @staticmethod
    def _is_datetime_head(func: ast.Attribute, imports: _ImportMap) -> bool:
        """True for ``datetime.now`` / ``datetime.datetime.now`` shapes."""
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in ("datetime", "date"):
                origin = imports.from_imports.get(value.id)
                if origin is not None:
                    return origin[0] == "datetime"
                return imports.module_aliases.get(value.id) == "datetime"
            return False
        if isinstance(value, ast.Attribute) and value.attr in ("datetime", "date"):
            head = _dotted_head(value)
            return imports.module_aliases.get(head or "") == "datetime"
        return False

    @staticmethod
    def _key_uses_id(key: ast.expr) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            for node in ast.walk(key.body):
                if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                        and node.func.id == "id"):
                    return True
        return False

    # -- set iteration -------------------------------------------------------
    def _check_iteration(
        self, module: ModuleInfo, iterable: ast.expr, where: str
    ) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield self.finding(
                module, iterable,
                f"iterating a set literal directly in a {where}: iteration order "
                f"depends on PYTHONHASHSEED; wrap it in `sorted(...)`",
            )
        elif (isinstance(iterable, ast.Call)
              and isinstance(iterable.func, ast.Name)
              and iterable.func.id in ("set", "frozenset")):
            yield self.finding(
                module, iterable,
                f"iterating `{iterable.func.id}(...)` directly in a {where}: "
                f"iteration order depends on PYTHONHASHSEED; wrap it in `sorted(...)`",
            )
