"""Rule framework: findings, the rule base class, and the rule registry.

A rule is a class with an ``id`` (``"RB101"``), a short kebab-case
``name``, a ``severity``, and a :meth:`Rule.check_module` generator that
inspects one parsed module at a time (with project-wide context available
through the :class:`~repro.analysis.engine.Project` argument for
cross-module rules such as protocol registration).

Students add a rule by subclassing :class:`Rule` and decorating it with
:func:`register_rule`; the engine, the CLI's ``--select``/``--ignore``
filters, and the ``# rb: ignore[...]`` machinery pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.errors import RainbowError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import ModuleInfo, Project

__all__ = [
    "ERROR",
    "WARNING",
    "AnalysisError",
    "Finding",
    "Rule",
    "all_rules",
    "register_rule",
    "rule_catalog",
]

#: Severity levels.  Both fail the lint gate; the split exists so reports
#: can rank correctness hazards above style-of-the-simulator issues.
ERROR = "error"
WARNING = "warning"


class AnalysisError(RainbowError):
    """Raised for analyzer misuse (bad rule id, duplicate registration)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to ``file:line:col``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    severity: str = field(default=ERROR, compare=False)

    def location(self) -> str:
        """The clickable ``path:line:col`` prefix used by the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-friendly representation (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


class Rule:
    """Base class for analyzer rules.

    Subclasses set the class attributes and implement
    :meth:`check_module`.  Rules must be stateless across modules — the
    engine instantiates each rule once per run and feeds it every module;
    anything cross-module belongs on the shared ``project``.
    """

    id: str = "RB000"
    name: str = "abstract"
    severity: str = ERROR
    description: str = ""

    def check_module(self, module: "ModuleInfo", project: "Project") -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, module: "ModuleInfo", node, message: str) -> Finding:
        """Build a finding for ``node`` (any ast node with a location)."""
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


_RULES: dict[str, Type[Rule]] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``rule_cls`` to the global rule registry."""
    rule_id = rule_cls.id
    if not (rule_id.startswith("RB") and rule_id[2:].isdigit()):
        raise AnalysisError(f"rule id must look like RBxxx, got {rule_id!r}")
    if rule_id in _RULES:
        raise AnalysisError(f"rule {rule_id} already registered ({_RULES[rule_id].__name__})")
    _RULES[rule_id] = rule_cls
    return rule_cls


def all_rules(select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules, filtered by ``select``/``ignore``.

    ``select`` keeps only the listed rule ids; ``ignore`` then removes ids.
    Unknown ids raise so typos in CI configs fail loudly.
    """
    known = set(_RULES)
    for label, chosen in (("select", select), ("ignore", ignore)):
        unknown = set(chosen or ()) - known
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s) in --{label}: {sorted(unknown)}; known: {sorted(known)}"
            )
    wanted = set(select) if select is not None else known
    wanted -= set(ignore or ())
    return [_RULES[rule_id]() for rule_id in sorted(wanted)]


def rule_catalog() -> list[tuple[str, str, str, str]]:
    """``(id, name, severity, description)`` rows for ``lint --list-rules``."""
    return [
        (rule_id, cls.name, cls.severity, cls.description)
        for rule_id, cls in sorted(_RULES.items())
    ]
