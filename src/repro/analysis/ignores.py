"""The ``# rb: ignore`` escape hatch.

Findings are suppressed, never silently dropped: every suppression is an
inline comment a reviewer can see and question.

* ``# rb: ignore[RB101]`` on the flagged line suppresses that rule there.
* ``# rb: ignore[RB101,RB105] -- reason`` suppresses several, with a note.
* ``# rb: ignore`` (no bracket) suppresses every rule on that line.
* ``# rb: ignore-file[RB102]`` within the first ten lines suppresses the
  rule for the whole file (``# rb: ignore-file`` suppresses all of them).

The ``-- reason`` tail is free text; the analyzer does not parse it, but
the repo convention is to always say *why* the finding is intentional.
"""

from __future__ import annotations

import re

__all__ = ["IgnoreTable", "parse_ignores"]

#: Matches both line and file forms; group 1 is "-file" or empty, group 2
#: the optional bracketed id list.
_IGNORE_RE = re.compile(r"#\s*rb:\s*ignore(-file)?(?:\[([A-Za-z0-9_,\s]*)\])?")

#: File-level pragmas must appear near the top so readers cannot miss them.
_FILE_PRAGMA_WINDOW = 10

#: Sentinel id meaning "every rule".
ALL_RULES = "*"


class IgnoreTable:
    """Which rule ids are suppressed per line (and file-wide)."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    def add_line(self, line: int, rule_ids: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rule_ids)

    def add_file(self, rule_ids: set[str]) -> None:
        self._file_wide.update(rule_ids)

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True if a pragma covers ``rule_id`` at ``line``."""
        if ALL_RULES in self._file_wide or rule_id in self._file_wide:
            return True
        ids = self._by_line.get(line)
        return ids is not None and (ALL_RULES in ids or rule_id in ids)


def _parse_id_list(raw: str | None) -> set[str]:
    if raw is None:
        return {ALL_RULES}
    ids = {part.strip().upper() for part in raw.split(",") if part.strip()}
    return ids or {ALL_RULES}


def parse_ignores(source: str) -> IgnoreTable:
    """Scan ``source`` for ``rb: ignore`` pragmas.

    A plain string scan (not the tokenizer) keeps this usable even on
    files with syntax errors, where suppressing RB100 would otherwise be
    impossible.  The pattern is anchored on ``#`` so string literals that
    merely *mention* the pragma (like this module's docstring) are only
    matched when they contain the literal comment form — acceptable for a
    teaching linter and called out in docs/ANALYSIS.md.
    """
    table = IgnoreTable()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(text)
        if match is None:
            continue
        file_wide, raw_ids = match.group(1), match.group(2)
        if file_wide:
            if lineno <= _FILE_PRAGMA_WINDOW:
                table.add_file(_parse_id_list(raw_ids))
        else:
            table.add_line(lineno, _parse_id_list(raw_ids))
    return table
