"""RB104 protocol-conformance: the "swap anything" contract, checked.

Rainbow's protocol families plug in through three small interfaces plus a
per-family registry (:mod:`repro.protocols.base`).  A student protocol
that forgets a required method fails at runtime deep inside a session; one
that forgets to call ``register_ccp``/``register_rcp``/``register_acp``
simply never appears in the GUI drop-downs or the CLI — both silent.

This rule checks every *concrete leaf* subclass of an interface (classes
that other analyzed classes inherit from are treated as intermediate bases
and skipped — :class:`~repro.protocols.ccp.workspace.WorkspaceController`
is the canonical example):

* the union of methods defined along the statically-visible inheritance
  chain must cover the family's required method set;
* the class name must appear in a ``register_*`` call somewhere in the
  analyzed file set (registration conventionally lives in the package
  ``__init__``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ERROR, Finding, Rule, register_rule
from repro.analysis.engine import ClassRecord, ModuleInfo, Project

__all__ = ["ProtocolConformanceRule", "REQUIRED_METHODS"]

#: interface -> (family label, registration function, required methods).
REQUIRED_METHODS: dict[str, tuple[str, str, frozenset[str]]] = {
    "ConcurrencyController": (
        "CCP", "register_ccp",
        frozenset({
            "read", "prewrite", "buffered_writes", "commit", "abort",
            "doom", "is_doomed", "active_transactions", "clear",
        }),
    ),
    "ReplicationController": (
        "RCP", "register_rcp",
        frozenset({"do_read", "do_write"}),
    ),
    "CommitProtocol": (
        "ACP", "register_acp",
        frozenset({"run"}),
    ),
}


@register_rule
class ProtocolConformanceRule(Rule):
    """RB104: protocol subclasses must implement + register their family."""

    id = "RB104"
    name = "protocol-conformance"
    severity = ERROR
    description = (
        "a concrete subclass of ConcurrencyController / ReplicationController "
        "/ CommitProtocol is missing required family methods or is never "
        "passed to register_ccp/rcp/acp"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in REQUIRED_METHODS:
                continue  # the interface itself
            record = self._record_for(node, module, project)
            if record is None:
                continue
            interface = self._interface_of(record, project)
            if interface is None:
                continue
            if node.name in project.base_names:
                continue  # intermediate base: concreteness judged at its leaves
            family, register_func, required = REQUIRED_METHODS[interface]
            provided = set(record.methods)
            for parent in project.ancestry(record):
                if parent.name in REQUIRED_METHODS:
                    continue  # interface stubs do not count as implementations
                provided |= parent.methods
            missing = sorted(required - provided)
            if missing:
                yield self.finding(
                    module, node,
                    f"{family} protocol `{node.name}` is missing required "
                    f"method(s): {', '.join(missing)}",
                )
            if node.name not in project.registered_names:
                yield self.finding(
                    module, node,
                    f"{family} protocol `{node.name}` is never registered; call "
                    f"`{register_func}(\"<name>\", {node.name})` (conventionally "
                    f"in the family package __init__) so it is selectable",
                )

    @staticmethod
    def _record_for(
        node: ast.ClassDef, module: ModuleInfo, project: Project
    ) -> ClassRecord | None:
        for record in project.classes.get(node.name, ()):
            if record.node is node:
                return record
        return None

    @staticmethod
    def _interface_of(record: ClassRecord, project: Project) -> str | None:
        for interface in REQUIRED_METHODS:
            if project.descends_from(record, (interface,)):
                return interface
        return None
