"""RB106 trace-hygiene: span emission must itself be deterministic.

The observability layer's contract (docs/OBSERVABILITY.md) is that a
trace is a *pure function of the seed*: span ids derive from
``(txn_id, site, seq)`` counters, timestamps from ``sim.now``, and
orderings from sorted views.  Code that emits spans but draws entropy —
an RNG call feeding a span id, a wall-clock read passed as a timestamp,
a ``set`` whose iteration order names or orders spans — silently breaks
byte-identical trace replay in ways RB102 cannot see (RB102 only knows
the global ``random`` module, ``time.*`` attribute reads, and *direct*
set iteration).

The rule therefore scopes itself to *trace code* and applies a stricter
catalog there.  Trace code is:

* any function whose name mentions ``span`` or ``trace``
  (``_trace_flight``, ``begin_span``, ``render_span_tree``, ...);
* the argument expressions of tracer-API calls — ``*.begin_span(...)`` /
  ``*.end_span(...)`` anywhere, and ``begin``/``finish``/``record``
  called on a receiver whose dotted path mentions ``tracer``.

Inside that scope it flags:

* RNG draws through *any* receiver that looks like an RNG (``rng.random()``,
  ``self.rng.choice(...)``) — span ids and orderings must come from
  deterministic counters;
* wall-clock reads in every form, including ``from time import
  perf_counter`` and with **no** monitor//benchmarks/ exemption — span
  timestamps must be ``sim.now``;
* ``id(...)`` anywhere in scope — memory addresses must never leak into
  span identity;
* unordered-set ordering: iterating a set expression *or a local name
  assigned from one*, and passing a set expression straight into a
  tracer-API call.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.core import ERROR, Finding, Rule, register_rule
from repro.analysis.engine import ModuleInfo, Project

__all__ = ["TraceHygieneRule"]

#: Function names that mark a definition as trace code.
_SCOPE_NAME = re.compile(r"span|trace", re.IGNORECASE)

#: Tracer-API method names that put their arguments in scope.
_SPAN_METHODS = frozenset({"begin_span", "end_span"})
_TRACER_METHODS = frozenset({"begin", "finish", "record"})

#: RNG method names (superset of the global-``random`` surface — the
#: receiver here is an RNG *object*, which RB102 does not track).
_RNG_METHODS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "expovariate", "gauss", "normalvariate",
    "getrandbits", "randbytes", "triangular",
})

#: Clock-reading callable names, in bare (from-imported) or attribute form.
_CLOCK_NAMES = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
    "now", "utcnow", "today",
})
_CLOCK_MODULES = frozenset({"time", "datetime", "date"})


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted path of an expression (``self.obs.tracer`` ...)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _is_tracer_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _SPAN_METHODS:
        return True
    if func.attr in _TRACER_METHODS:
        return "tracer" in _dotted(func.value).lower()
    return False


@register_rule
class TraceHygieneRule(Rule):
    """RB106: entropy inside span/trace emission code."""

    id = "RB106"
    name = "trace-hygiene"
    severity = ERROR
    description = (
        "span/trace code draws an RNG, reads the wall clock (no exemptions "
        "— span timestamps must be `sim.now`), uses `id()`, or lets "
        "unordered-set iteration derive span ids or ordering"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _SCOPE_NAME.search(node.name):
                    yield from self._check_scope(module, node, node)
            elif isinstance(node, ast.Call) and _is_tracer_call(node):
                # Arguments of a tracer-API call are trace code even when
                # the enclosing function's name says nothing about it.
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _is_set_expr(arg):
                        yield self.finding(
                            module, arg,
                            "unordered set passed into a tracer call: its "
                            "rendering/iteration order depends on "
                            "PYTHONHASHSEED; pass `sorted(...)`",
                        )
                    yield from self._check_entropy(module, arg)

    # -- scoped function bodies ----------------------------------------------
    def _check_scope(
        self, module: ModuleInfo, func: ast.AST, root: ast.AST
    ) -> Iterator[Finding]:
        set_names = {
            target.id
            for node in ast.walk(root)
            if isinstance(node, ast.Assign) and _is_set_expr(node.value)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                yield from self._check_entropy(module, node, walk=False)
            elif isinstance(node, ast.For):
                yield from self._check_iter(module, node.iter, set_names)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    yield from self._check_iter(module, comp.iter, set_names)

    def _check_iter(
        self, module: ModuleInfo, iterable: ast.expr, set_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(iterable, ast.Name) and iterable.id in set_names:
            yield self.finding(
                module, iterable,
                f"trace code iterates `{iterable.id}`, a local set: iteration "
                f"order depends on PYTHONHASHSEED; wrap it in `sorted(...)`",
            )

    # -- entropy sources ------------------------------------------------------
    def _check_entropy(
        self, module: ModuleInfo, node: ast.expr, walk: bool = True
    ) -> Iterator[Finding]:
        nodes = ast.walk(node) if walk else [node]
        for sub in nodes:
            if not isinstance(sub, ast.Call):
                continue
            message = self._entropy_message(sub)
            if message is not None:
                yield self.finding(module, sub, message)

    @staticmethod
    def _entropy_message(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return ("`id(...)` in trace code: memory addresses differ "
                        "between runs; derive span identity from "
                        "`(txn_id, site, seq)` counters")
            if func.id in _CLOCK_NAMES and func.id not in ("time",):
                # Bare clock calls reach here via ``from time import ...``;
                # a bare ``time(...)`` alone is too ambiguous to flag.
                return (f"wall-clock read `{func.id}()` in trace code: span "
                        f"timestamps must come from `sim.now`")
            return None
        if isinstance(func, ast.Attribute):
            receiver = _dotted(func.value).lower()
            tail = receiver.rsplit(".", 1)[-1]
            if func.attr in _RNG_METHODS and (
                "rng" in tail or "random" in tail
            ):
                return (f"trace code draws `{_dotted(func)}(...)`: span ids "
                        f"and ordering must come from deterministic counters, "
                        f"never an RNG")
            if func.attr in _CLOCK_NAMES and tail in _CLOCK_MODULES:
                return (f"wall-clock read `{_dotted(func)}()` in trace code: "
                        f"span timestamps must come from `sim.now`")
        return None
