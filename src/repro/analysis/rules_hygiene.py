"""RB105 sim-hygiene: small Python hazards that bite simulators hardest.

* **Mutable default arguments** (``def f(x=[])``): the default is shared
  across *every* call and every simulator instance in the process —
  exactly how state leaks between "independent" experiment repetitions.
* **Missing ``__slots__`` in a slotted hierarchy**: the kernel's
  :class:`~repro.sim.kernel.Event` family declares ``__slots__`` because
  millions of events are allocated per run.  A subclass that forgets its
  own ``__slots__`` silently re-grows a ``__dict__`` per instance and
  forfeits the optimisation for the whole subtree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, WARNING, register_rule
from repro.analysis.engine import ModuleInfo, Project

__all__ = ["SimHygieneRule"]

#: Call names producing fresh mutable containers — mutable as defaults too.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
        and not node.args
        and not node.keywords
    )


@register_rule
class SimHygieneRule(Rule):
    """RB105: mutable defaults; missing __slots__ in slotted hierarchies."""

    id = "RB105"
    name = "sim-hygiene"
    severity = WARNING
    description = (
        "mutable default arguments (state shared across simulator "
        "instances) and subclasses of __slots__ classes that drop the "
        "declaration (per-instance __dict__ re-appears on the hot path)"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_slots(module, node, project)

    def _check_defaults(self, module: ModuleInfo, func) -> Iterator[Finding]:
        args = func.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                yield self.finding(
                    module, default,
                    f"mutable default argument in `{func.name}(...)`: the object "
                    f"is shared across every call (and simulator instance); "
                    f"default to None and construct inside",
                )

    def _check_slots(
        self, module: ModuleInfo, node: ast.ClassDef, project: Project
    ) -> Iterator[Finding]:
        record = None
        for candidate in project.classes.get(node.name, ()):
            if candidate.node is node:
                record = candidate
                break
        if record is None or record.has_slots:
            return
        # dataclass(slots=True) generates __slots__; plain @dataclass
        # subclassing a slotted base is still worth flagging, but a
        # slots=True dataclass is clean.
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                target = decorator.func
                named = (isinstance(target, ast.Name) and target.id == "dataclass") or (
                    isinstance(target, ast.Attribute) and target.attr == "dataclass"
                )
                if named and any(
                    kw.arg == "slots" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                ):
                    return
        slotted_parent = next(
            (parent for parent in project.ancestry(record) if parent.has_slots), None
        )
        if slotted_parent is not None:
            yield self.finding(
                module, node,
                f"`{node.name}` subclasses slotted `{slotted_parent.name}` but "
                f"declares no `__slots__` of its own; instances regain a "
                f"__dict__ and lose the hierarchy's memory optimisation "
                f"(use `__slots__ = ()` if it adds no fields)",
            )
