"""Causal span store for transaction tracing.

A *span* is a named time interval attributed to one transaction at one
site, optionally nested under a parent span.  The coordinator opens a
root span per transaction attempt; the replica-control, concurrency-
control, and atomic-commit layers open children; the network records one
span per delivered (or dropped) message.  Together they form a causal
DAG whose root-to-leaf paths explain where a transaction's latency went.

Determinism contract (enforced by rainbow-lint rule RB106): span ids are
derived purely from ``(txn_id, site, sequence)`` — never from ``id()``,
RNG draws, or the wall clock — and spans are appended in simulator
execution order.  Because the kernel schedules deterministically for a
given seed, the span list (ids, ordering, timestamps) is a pure function
of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Span", "SpanTracer"]


@dataclass
class Span:
    """One named interval in a transaction's causal timeline."""

    span_id: str
    parent_id: Optional[str]
    txn_id: int
    name: str
    site: str
    start: float
    end: Optional[float] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length; an unfinished span has zero duration."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class SpanTracer:
    """Collects spans for one simulation session.

    One tracer is shared by the network, every site, and every
    coordinator context of a :class:`~repro.core.instance.RainbowInstance`
    (see ``RainbowInstance.enable_tracing``).  Ids follow the scheme
    ``t{txn_id}:{site}:{seq}`` where ``seq`` is a per-(txn, site) counter,
    so they are stable across processes and across ``-j N``.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.spans: list[Span] = []
        self._seq: dict[tuple[int, str], int] = {}
        self._by_id: dict[str, Span] = {}

    # -- recording ---------------------------------------------------------

    def _next_id(self, txn_id: int, site: str) -> str:
        key = (txn_id, site)
        seq = self._seq.get(key, 0) + 1
        self._seq[key] = seq
        return f"t{txn_id}:{site}:{seq}"

    def begin(
        self,
        txn_id: int,
        site: str,
        name: str,
        *,
        parent: Optional[str] = None,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; close it later with :meth:`finish`."""
        span = Span(
            span_id=self._next_id(txn_id, site),
            parent_id=parent,
            txn_id=txn_id,
            name=name,
            site=site,
            start=self.sim.now if start is None else start,
            attrs=attrs,
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def finish(self, span: Span, end: Optional[float] = None) -> None:
        """Close an open span at ``end`` (default: simulated now)."""
        span.end = self.sim.now if end is None else end

    def record(
        self,
        txn_id: int,
        site: str,
        name: str,
        *,
        start: float,
        end: float,
        parent: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-complete span (e.g. a message flight)."""
        span = self.begin(txn_id, site, name, parent=parent, start=start, **attrs)
        span.end = end
        return span

    # -- views -------------------------------------------------------------

    def get(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    def txn_ids(self) -> list[int]:
        """Traced transaction ids, ascending."""
        return sorted({span.txn_id for span in self.spans})

    def txn_spans(self, txn_id: int) -> list[Span]:
        """All spans of one transaction, in recording order."""
        return [span for span in self.spans if span.txn_id == txn_id]

    def root(self, txn_id: int) -> Optional[Span]:
        """The transaction's root (``txn``) span, if it was traced."""
        for span in self.spans:
            if span.txn_id == txn_id and span.name == "txn":
                return span
        return None

    def children(self, span_id: str) -> list[Span]:
        """Direct children of a span, in recording order."""
        return [span for span in self.spans if span.parent_id == span_id]
