"""Span analysis: phase taxonomy, latency breakdown, critical path.

The phase taxonomy maps span names onto the five buckets the session
panel reports (per ISSUE 5): time a transaction spent blocked in the
concurrency controller (``lock_wait``), assembling read/write quorums
(``quorum_wait``), collecting commit votes (``vote``), distributing the
decision (``decision``), and in message flight (``network``).

Two different sums are exposed on purpose:

* :func:`aggregate_phase_stats` sums *all* spans of a phase per
  transaction (nested network spans under a quorum wave count toward
  ``network`` as well as being covered by the wave) — the right view for
  "how much of this phase did the run see".
* :func:`txn_phase_breakdown` partitions one transaction's *root window*
  among the root's direct children, clamped to ``[root.start,
  root.end]``, plus an ``other`` gap — so the printed rows sum exactly
  to the transaction's response time.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.spans import Span, SpanTracer

__all__ = [
    "PHASES",
    "phase_of",
    "aggregate_phase_stats",
    "txn_phase_breakdown",
    "critical_path",
    "render_span_tree",
]

#: Panel ordering of the latency buckets.
PHASES = ("lock_wait", "quorum_wait", "vote", "decision", "network")

# Structural spans (the root, per-wave groupings) carry no phase of their
# own: their time is attributed through their leaf children instead, so a
# quorum wave is not double-counted against the rcp.* op span above it.
_PHASE_BY_NAME = {
    "ccp.read": "lock_wait",
    "ccp.prewrite": "lock_wait",
    "ccp.prepare": "lock_wait",
    "rcp.read": "quorum_wait",
    "rcp.write": "quorum_wait",
    "rcp.increment": "quorum_wait",
    "acp.vote": "vote",
    "acp.precommit": "decision",
    "acp.decision": "decision",
    "net.msg": "network",
    "dispatch": "network",
}


def phase_of(name: str) -> Optional[str]:
    """Latency bucket for a span name (``None`` for structural spans)."""
    return _PHASE_BY_NAME.get(name)


def aggregate_phase_stats(
    spans: Iterable[Span],
    txn_ids: Optional[Iterable[int]] = None,
) -> dict[str, dict[str, float]]:
    """Per-phase ``{mean_per_txn, max_per_txn}`` over traced transactions.

    ``txn_ids`` restricts the aggregate (e.g. to finished transactions);
    by default every traced transaction counts.  Returns ``{}`` when
    nothing qualifies, so flag-off output is unchanged.
    """
    wanted = None if txn_ids is None else set(txn_ids)
    totals: dict[int, dict[str, float]] = {}
    for span in spans:
        phase = phase_of(span.name)
        if phase is None:
            continue
        if wanted is not None and span.txn_id not in wanted:
            continue
        per_txn = totals.setdefault(span.txn_id, dict.fromkeys(PHASES, 0.0))
        per_txn[phase] += span.duration
    if not totals:
        return {}
    ordered = [totals[txn_id] for txn_id in sorted(totals)]
    result: dict[str, dict[str, float]] = {}
    for phase in PHASES:
        values = [per_txn[phase] for per_txn in ordered]
        result[phase] = {
            "mean_per_txn": sum(values) / len(values),
            "max_per_txn": max(values),
        }
    return result


def _clamped_duration(span: Span, window_start: float, window_end: float) -> float:
    """Overlap of a span with a window (open spans contribute nothing)."""
    if span.end is None:
        return 0.0
    lo = max(span.start, window_start)
    hi = min(span.end, window_end)
    return max(0.0, hi - lo)


def txn_phase_breakdown(
    tracer: SpanTracer, txn_id: int
) -> Optional[dict[str, float]]:
    """Partition one transaction's response time among phases.

    The root span covers ``[submitted_at, decided_at]`` — exactly the
    monitor's response time.  Each direct child is clamped to that window
    and attributed to its phase (a decision broadcast that outlives the
    decision point therefore contributes only its pre-decision part, as
    it should: post-decision time is not response time).  The remainder
    is reported as ``other``, so the values sum to the root duration.
    """
    root = tracer.root(txn_id)
    if root is None or root.end is None:
        return None
    breakdown = dict.fromkeys(PHASES, 0.0)
    breakdown["other"] = 0.0
    covered = 0.0
    for child in tracer.children(root.span_id):
        clamped = _clamped_duration(child, root.start, root.end)
        covered += clamped
        breakdown[phase_of(child.name) or "other"] += clamped
    breakdown["other"] += max(0.0, root.duration - covered)
    breakdown["total"] = root.duration
    return breakdown


def critical_path(
    tracer: SpanTracer, txn_id: int
) -> list[tuple[Span, float]]:
    """Longest root-to-leaf chain with per-hop self-time attribution.

    From the root, repeatedly descend into the child that finishes last
    (ties broken by span id, which is deterministic).  Each hop's *self*
    time is its own duration minus the chosen child's — the latency that
    hop added on the critical path.  Returns ``[]`` for untraced txns.
    """
    root = tracer.root(txn_id)
    if root is None:
        return []
    path: list[tuple[Span, float]] = []
    current = root
    while True:
        children = [
            child
            for child in tracer.children(current.span_id)
            if child.end is not None
        ]
        if not children:
            path.append((current, current.duration))
            break
        last = max(children, key=lambda child: (child.end, child.span_id))
        path.append((current, max(0.0, current.duration - last.duration)))
        current = last
    return path


def render_span_tree(tracer: SpanTracer, txn_id: int) -> list[str]:
    """Indented text rendering of one transaction's span tree."""
    root = tracer.root(txn_id)
    if root is None:
        return [f"(no spans recorded for transaction {txn_id})"]
    lines: list[str] = []

    def fmt(span: Span) -> str:
        end = span.start if span.end is None else span.end
        attrs = ", ".join(
            f"{key}={span.attrs[key]}" for key in sorted(span.attrs)
        )
        detail = f"  [{attrs}]" if attrs else ""
        return (
            f"{span.name} @{span.site}  "
            f"[{span.start:.3f} → {end:.3f}]  {span.duration:.3f}{detail}"
        )

    def walk(span: Span, depth: int) -> None:
        lines.append("  " * depth + fmt(span))
        children = sorted(
            tracer.children(span.span_id),
            key=lambda child: (child.start, child.span_id),
        )
        for child in children:
            walk(child, depth + 1)

    walk(root, 0)
    return lines
