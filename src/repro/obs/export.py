"""Trace exporters: Chrome trace-event JSON (Perfetto) and flat CSV.

Both exporters *normalize* ids by default: transaction ids are remapped
to a dense ``1..n`` by order of first appearance, and span ids are
rewritten accordingly (``t{txn}:{site}:{seq}`` keeps its site and
sequence parts).  Raw transaction ids come from a process-global counter
— normalizing makes the exported bytes a pure function of the session's
seed, independent of what else ran earlier in the process or of which
worker executed the session under ``-j N``.

The Chrome output is a JSON object with a ``traceEvents`` list of
complete (``ph: "X"``) events, loadable in Perfetto or
``chrome://tracing``.  One simulated time unit maps to 1 ms, so ``ts``
and ``dur`` are in microseconds as the format requires.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Optional, Sequence, Union

from repro.obs.analyze import phase_of
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "normalize_spans",
    "spans_to_chrome_json",
    "spans_to_csv",
    "tracers_to_chrome_json",
]

SpansLike = Union[SpanTracer, Sequence[Span]]

#: One simulated time unit = 1 ms; Chrome trace timestamps are in µs.
_US_PER_UNIT = 1000.0


def _span_list(spans: SpansLike) -> list[Span]:
    if isinstance(spans, SpanTracer):
        return list(spans.spans)
    return list(spans)


def normalize_spans(spans: SpansLike) -> list[Span]:
    """Copy spans with txn ids densely renumbered by first appearance."""
    originals = _span_list(spans)
    txn_map: dict[int, int] = {}
    for span in originals:
        if span.txn_id not in txn_map:
            txn_map[span.txn_id] = len(txn_map) + 1
    id_map: dict[str, str] = {}
    for span in originals:
        _, _, tail = span.span_id.partition(":")
        id_map[span.span_id] = f"t{txn_map[span.txn_id]}:{tail}"
    normalized = []
    for span in originals:
        normalized.append(
            Span(
                span_id=id_map[span.span_id],
                parent_id=id_map.get(span.parent_id or "", span.parent_id),
                txn_id=txn_map[span.txn_id],
                name=span.name,
                site=span.site,
                start=span.start,
                end=span.end,
                attrs=dict(span.attrs),
            )
        )
    return normalized


def _chrome_events(spans: Iterable[Span], pid: int) -> list[dict]:
    events = []
    for span in spans:
        args = {
            "span": span.span_id,
            "parent": span.parent_id or "",
            "site": span.site,
        }
        for key in sorted(span.attrs):
            args[key] = str(span.attrs[key])
        events.append(
            {
                "name": span.name,
                "cat": phase_of(span.name) or "structure",
                "ph": "X",
                "ts": span.start * _US_PER_UNIT,
                "dur": span.duration * _US_PER_UNIT,
                "pid": pid,
                "tid": span.txn_id,
                "args": args,
            }
        )
    return events


def spans_to_chrome_json(
    spans: SpansLike, *, normalize: bool = True, label: str = "rainbow"
) -> str:
    """Chrome trace-event JSON for one session's spans."""
    return tracers_to_chrome_json([(label, spans)], normalize=normalize)


def tracers_to_chrome_json(
    labeled: Sequence[tuple[str, SpansLike]], *, normalize: bool = True
) -> str:
    """Chrome trace-event JSON for several sessions (one pid each)."""
    events: list[dict] = []
    for pid, (label, spans) in enumerate(labeled, start=1):
        span_list = normalize_spans(spans) if normalize else _span_list(spans)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
        )
        events.extend(_chrome_events(span_list, pid))
    return json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": events},
        sort_keys=True,
        indent=1,
    )


def spans_to_csv(
    spans: SpansLike, path: Optional[str] = None, *, normalize: bool = True
) -> str:
    """Flat per-span CSV (one row per span, attrs as sorted JSON)."""
    span_list = normalize_spans(spans) if normalize else _span_list(spans)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        [
            "txn_id",
            "span_id",
            "parent_id",
            "name",
            "phase",
            "site",
            "start",
            "end",
            "duration",
            "attrs",
        ]
    )
    for span in span_list:
        writer.writerow(
            [
                span.txn_id,
                span.span_id,
                span.parent_id or "",
                span.name,
                phase_of(span.name) or "",
                span.site,
                f"{span.start:.6f}",
                "" if span.end is None else f"{span.end:.6f}",
                f"{span.duration:.6f}",
                json.dumps(span.attrs, sort_keys=True, default=str),
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
