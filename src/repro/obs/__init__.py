"""Rainbow observability: causal spans, latency breakdown, trace export.

``repro.obs`` is the span-based tracing substrate described in ISSUE 5:
when enabled on a :class:`~repro.core.instance.RainbowInstance` (via
``instance.enable_tracing()`` or ``build_instance(..., tracing=True)``),
the coordinator, replica control, concurrency control, atomic commit,
and network layers record a causal span DAG per transaction.  Tracing is
strictly observational — it never changes protocol behavior — and is
zero-cost when disabled (every hook is a single ``is None`` check).

The module also hosts a tiny process-global registry used by
``repro experiment --trace``: sweeps build their instances deep inside
experiment modules, so the CLI flips the global flag and every instance
constructed afterwards enables tracing and registers its tracer here.
"""

from __future__ import annotations

from repro.obs.analyze import (
    PHASES,
    aggregate_phase_stats,
    critical_path,
    phase_of,
    render_span_tree,
    txn_phase_breakdown,
)
from repro.obs.export import (
    normalize_spans,
    spans_to_chrome_json,
    spans_to_csv,
    tracers_to_chrome_json,
)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Span",
    "SpanTracer",
    "PHASES",
    "phase_of",
    "aggregate_phase_stats",
    "txn_phase_breakdown",
    "critical_path",
    "render_span_tree",
    "normalize_spans",
    "spans_to_chrome_json",
    "spans_to_csv",
    "tracers_to_chrome_json",
    "enable_global_tracing",
    "disable_global_tracing",
    "global_tracing_enabled",
    "register_tracer",
    "collected_tracers",
]

_global_tracing = False
_collected: list[tuple[str, SpanTracer]] = []


def enable_global_tracing() -> None:
    """Trace every instance built from now on (see ``experiment --trace``)."""
    global _global_tracing
    _global_tracing = True
    _collected.clear()


def disable_global_tracing() -> None:
    """Stop auto-tracing new instances and drop collected tracers."""
    global _global_tracing
    _global_tracing = False
    _collected.clear()


def global_tracing_enabled() -> bool:
    return _global_tracing


def register_tracer(tracer: SpanTracer) -> None:
    """Record a session's tracer under a deterministic serial label."""
    _collected.append((f"session{len(_collected) + 1}", tracer))


def collected_tracers() -> list[tuple[str, SpanTracer]]:
    return list(_collected)
