"""Shared experiment machinery: result tables and instance profiles.

Every experiment module exposes a ``run(...)`` function returning an
:class:`ExperimentTable` — the rows the corresponding benchmark prints.
Experiments that inject failures use the *failure profile*: timeouts scaled
down so that crash-induced waits are short relative to a session, the same
way the paper's experiments configure their network simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.protocols.base import ccp_accepts

__all__ = ["ExperimentTable", "build_instance", "FAILURE_TIMEOUTS"]

#: Coordinator/site timeout overrides for failure experiments.
FAILURE_TIMEOUTS = {
    "op_timeout": 15.0,
    "vote_timeout": 10.0,
    "ack_timeout": 8.0,
    "ack_retries": 2,
    "ccp_wait_timeout": 10.0,
    "uncertainty_timeout": 25.0,
    "decision_retry": 10.0,
    "gc_interval": 20.0,
    "gc_timeout": 40.0,
}


@dataclass
class ExperimentTable:
    """A titled table of result rows (each row a dict)."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, **row: Any) -> None:
        """Append one row (keys must match ``columns``)."""
        missing = [col for col in self.columns if col not in row]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(row)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width rendering (what the benchmarks print)."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        grid = [self.columns] + [[fmt(row[col]) for col in self.columns] for row in self.rows]
        widths = [max(len(line[col]) for line in grid) for col in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        for index, line in enumerate(grid):
            lines.append(
                "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line))
            )
            if index == 0:
                lines.append("  ".join("-" * widths[col] for col in range(len(self.columns))))
        if self.notes:
            lines += ["", self.notes]
        return "\n".join(lines)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Machine-readable rendering for bench tooling.

        Keys appear in a fixed order (title, columns, rows, notes; row keys
        in column order), so the same rows always serialise to the same
        bytes — the property the parallel runner's determinism guarantee
        extends to ``--json`` output.
        """
        payload = {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{col: row[col] for col in self.columns} for row in self.rows],
            "notes": self.notes,
        }
        return json.dumps(payload, indent=indent)


def build_instance(
    n_sites: int,
    n_items: int,
    replication_degree: Optional[int] = None,
    *,
    rcp: str = "QC",
    ccp: str = "2PL",
    acp: str = "2PC",
    ccp_options: Optional[dict] = None,
    seed: int = 7,
    failure_profile: bool = False,
    settle_time: float = 60.0,
    sites_per_host: int = 1,
    batch_site_ops: bool = False,
    piggyback_prepare: bool = False,
    latency_aware_routing: bool = False,
    latency: Optional[str] = None,
    latency_params: Optional[dict] = None,
    tracing: bool = False,
    **config_overrides: Any,
) -> RainbowInstance:
    """Build a ready RainbowInstance for an experiment point.

    ``sites_per_host`` co-locates sites on shared hosts (the paper's shared
    Sitelet), which is what makes ``batch_site_ops`` actually coalesce
    messages; ``latency``/``latency_params`` select the network latency
    model (e.g. ``"lanwan"`` for a LAN/WAN topology).
    """
    config = RainbowConfig.quick(
        n_sites=n_sites,
        n_items=n_items,
        replication_degree=replication_degree,
        sites_per_host=sites_per_host,
        seed=seed,
        settle_time=settle_time,
    )
    config.protocols.rcp = rcp
    config.protocols.ccp = ccp
    config.protocols.acp = acp
    config.protocols.batch_site_ops = batch_site_ops
    config.protocols.piggyback_prepare = piggyback_prepare
    config.protocols.latency_aware_routing = latency_aware_routing
    if latency is not None:
        config.network.latency = latency
    if latency_params is not None:
        config.network.latency_params = dict(latency_params)
    if ccp_options:
        config.protocols.ccp_options = dict(ccp_options)
    if failure_profile:
        config.protocols.op_timeout = FAILURE_TIMEOUTS["op_timeout"]
        config.protocols.vote_timeout = FAILURE_TIMEOUTS["vote_timeout"]
        config.protocols.ack_timeout = FAILURE_TIMEOUTS["ack_timeout"]
        config.protocols.ack_retries = FAILURE_TIMEOUTS["ack_retries"]
        if ccp_accepts(ccp, "wait_timeout"):
            config.protocols.ccp_options.setdefault(
                "wait_timeout", FAILURE_TIMEOUTS["ccp_wait_timeout"]
            )
        config.uncertainty_timeout = FAILURE_TIMEOUTS["uncertainty_timeout"]
        config.decision_retry = FAILURE_TIMEOUTS["decision_retry"]
        config.gc_interval = FAILURE_TIMEOUTS["gc_interval"]
        config.gc_timeout = FAILURE_TIMEOUTS["gc_timeout"]
    for key, value in config_overrides.items():
        setattr(config, key, value)
    instance = RainbowInstance(config)
    if tracing:
        instance.enable_tracing()
    return instance
