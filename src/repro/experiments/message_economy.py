"""EXP-MSGECON: message-economy optimizations across the flag lattice.

Quantifies what the three coordinator optimizations (docs/PERF.md) buy on
a LAN/WAN-style domain where sites share hosts (the paper's shared-Sitelet
deployment): per-host operation batching (``batch_site_ops``), the
piggybacked 2PC prepare (``piggyback_prepare``), and latency-aware quorum
routing (``latency_aware_routing``).

Expected shape:

* **batch** collapses same-host copy accesses into one ``BATCH_ACCESS``
  round trip, so messages/txn drops wherever a wave hits co-located
  copies;
* **piggyback** folds the VOTE_REQ round into the final access, removing
  one full commit round trip per remote participant reached by the last
  operation;
* **routing** prefers LAN replicas under ``lanwan`` latency, cutting
  response time (and feeding batching bigger same-host groups);
* **all** stacks the three — the acceptance bar is ≥25% fewer
  messages/txn than ``none`` under QC.

The CCP is MVTO: timestamp versions let writes piggyback their prepare
too (counter-version CCPs would fall back to the explicit round on
write-final transactions).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.net.message import MessageType
from repro.workload.spec import WorkloadSpec

__all__ = ["run", "FLAG_SETS"]

#: Transaction-processing traffic (copy access + commit; overhead excluded).
DATA_TYPES = MessageType.DATA_CATEGORY | MessageType.COMMIT_CATEGORY

#: The flag lattice: each point of the sweep enables one subset.
FLAG_SETS: dict[str, dict[str, bool]] = {
    "none": {},
    "batch": {"batch_site_ops": True},
    "piggyback": {"piggyback_prepare": True},
    "routing": {"latency_aware_routing": True},
    "all": {
        "batch_site_ops": True,
        "piggyback_prepare": True,
        "latency_aware_routing": True,
    },
}


def _trial(
    rcp: str,
    latency: str,
    flags: str,
    n_txns: int,
    n_sites: int,
    n_items: int,
    replication_degree: int,
    sites_per_host: int,
    seed: int,
) -> dict:
    """One traffic-accounting session at a single (RCP, latency, flags) point."""
    instance = build_instance(
        n_sites,
        n_items,
        replication_degree,
        rcp=rcp,
        ccp="MVTO",
        seed=seed,
        settle_time=50.0,
        sites_per_host=sites_per_host,
        latency=latency,
        **FLAG_SETS[flags],
    )
    instance.start()
    before = dict(instance.network.stats.by_type)
    before_rt = instance.network.stats.round_trips
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.2,
        min_ops=4,
        max_ops=6,
        read_fraction=0.6,
    )
    result = instance.run_workload(spec)
    after = instance.network.stats.by_type
    data_msgs = sum(
        after.get(mtype, 0) - before.get(mtype, 0) for mtype in DATA_TYPES
    )
    vote_reqs = after.get(MessageType.VOTE_REQ, 0) - before.get(MessageType.VOTE_REQ, 0)
    finished = max(result.statistics.finished, 1)
    stats = result.statistics
    return {
        "rcp": rcp,
        "latency": latency,
        "flags": flags,
        "msgs_per_txn": data_msgs / finished,
        "round_trips_per_txn": (
            (instance.network.stats.round_trips - before_rt) / finished
        ),
        "vote_reqs_per_txn": vote_reqs / finished,
        "saved_per_txn": stats.round_trips_saved / finished,
        "batched_per_txn": stats.batched_ops / finished,
        "response_time": stats.mean_response_time or 0.0,
        "commit_rate": stats.commit_rate,
    }


def run(
    flag_sets: Sequence[str] = ("none", "batch", "piggyback", "routing", "all"),
    rcps: Sequence[str] = ("QC", "ROWAA"),
    latencies: Sequence[str] = ("uniform", "lanwan"),
    n_txns: int = 120,
    n_sites: int = 8,
    n_items: int = 48,
    replication_degree: int = 4,
    sites_per_host: int = 4,
    seed: int = 7,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Sweep the optimization lattice × RCP × latency model."""
    table = ExperimentTable(
        title="EXP-MSGECON: message economy across the optimization lattice",
        columns=[
            "rcp",
            "latency",
            "flags",
            "msgs_per_txn",
            "round_trips_per_txn",
            "vote_reqs_per_txn",
            "saved_per_txn",
            "batched_per_txn",
            "response_time",
            "commit_rate",
        ],
        notes=(
            "8 sites on 2 hosts (4 per host), degree 4, MVTO+2PC; "
            "transaction-processing messages only.  'saved' counts round "
            "trips avoided by batching + piggybacked prepares."
        ),
    )
    points = [
        {"rcp": rcp, "latency": latency, "flags": flags}
        for rcp in rcps
        for latency in latencies
        for flags in flag_sets
    ]
    rows = sweep(
        _trial,
        points,
        n_jobs=n_jobs,
        n_txns=n_txns,
        n_sites=n_sites,
        n_items=n_items,
        replication_degree=replication_degree,
        sites_per_host=sites_per_host,
        seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
