"""Experiment definitions — one module per table/figure in EXPERIMENTS.md."""

from repro.experiments import (
    ablation,
    acp_blocking,
    availability,
    ccp_contention,
    load_balance,
    message_economy,
    protocol_matrix,
    quorum_traffic,
    scalability,
    session,
)
from repro.experiments.common import ExperimentTable, build_instance

__all__ = [
    "ExperimentTable",
    "ablation",
    "acp_blocking",
    "availability",
    "build_instance",
    "ccp_contention",
    "load_balance",
    "message_economy",
    "protocol_matrix",
    "quorum_traffic",
    "scalability",
    "session",
]
