"""EXP-LB: load balance/imbalance indicators.

§3 lists "load balance/imbalance indicators" among the output statistics.
This experiment contrasts a balanced home-site policy (round robin) with a
skewed one (weighted toward one site) and reports the per-site home
transaction shares, messages handled, and the imbalance coefficient
(coefficient of variation; 0 = perfectly balanced).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def _trial(
    policy: str,
    weights: dict | None,
    n_txns: int,
    n_sites: int,
    n_items: int,
    seed: int,
) -> dict:
    """One session under a single home-site selection policy."""
    instance = build_instance(n_sites, n_items, 3, seed=seed, settle_time=40.0)
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.4,
        min_ops=3,
        max_ops=5,
        read_fraction=0.75,
        home_policy=policy,
        home_weights=weights,
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    total = max(sum(stats.home_txns_by_site.values()), 1)
    shares = {
        site: round(count / total, 3)
        for site, count in sorted(stats.home_txns_by_site.items())
    }
    return {
        "policy": policy,
        "home_shares": str(shares),
        "imbalance_cv": stats.load_imbalance,
        "max_site_share": max(shares.values()),
    }


def run(
    n_txns: int = 120,
    n_sites: int = 4,
    n_items: int = 32,
    seed: int = 53,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Round-robin vs weighted home-site selection."""
    table = ExperimentTable(
        title="EXP-LB: load balance under home-site policies",
        columns=["policy", "home_shares", "imbalance_cv", "max_site_share"],
        notes="home_shares lists each site's fraction of home transactions.",
    )
    points = [
        {"policy": "round_robin", "weights": None},
        {
            "policy": "weighted",
            "weights": {"site1": 0.7, "site2": 0.1, "site3": 0.1, "site4": 0.1},
        },
    ]
    rows = sweep(
        _trial, points, n_jobs=n_jobs,
        n_txns=n_txns, n_sites=n_sites, n_items=n_items, seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
