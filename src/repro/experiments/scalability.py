"""EXP-SCALE: throughput and response time vs number of sites.

The paper's monitor reports "transaction throughput and response time
measures"; this experiment produces the classic scale-out series.  A closed
workload with MPL proportional to the site count keeps per-site offered
load constant, so throughput should grow roughly linearly while response
time stays flat — until replication (fixed degree 3) makes remote quorum
traffic the limiting factor.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def _trial(
    n_sites: int, txns_per_site: int, mpl_per_site: int, n_items_per_site: int, seed: int
) -> dict:
    """One scale point: a closed workload proportional to the site count."""
    degree = min(3, n_sites)
    instance = build_instance(
        n_sites,
        n_items_per_site * n_sites,
        degree,
        seed=seed,
        settle_time=50.0,
    )
    spec = WorkloadSpec(
        n_transactions=txns_per_site * n_sites,
        arrival="closed",
        mpl=mpl_per_site * n_sites,
        min_ops=3,
        max_ops=5,
        read_fraction=0.75,
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    return {
        "sites": n_sites,
        "mpl": mpl_per_site * n_sites,
        "throughput": stats.throughput,
        "mean_rt": stats.mean_response_time or 0.0,
        "commit_rate": stats.commit_rate,
        "msgs_per_txn": stats.messages_total / max(stats.finished, 1),
    }


def run(
    site_counts: Sequence[int] = (1, 2, 4, 8),
    txns_per_site: int = 30,
    mpl_per_site: int = 2,
    n_items_per_site: int = 12,
    seed: int = 31,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Scale the site count with proportional load and database size."""
    table = ExperimentTable(
        title="EXP-SCALE: throughput and response time vs number of sites",
        columns=[
            "sites",
            "mpl",
            "throughput",
            "mean_rt",
            "commit_rate",
            "msgs_per_txn",
        ],
        notes=(
            "Closed workload, MPL = 2 x sites; replication degree min(3, sites). "
            "The 1-site row is the no-replication, no-network baseline; the "
            "scale-out trend reads from 2 sites upward."
        ),
    )
    rows = sweep(
        _trial, [{"n_sites": n_sites} for n_sites in site_counts], n_jobs=n_jobs,
        txns_per_site=txns_per_site, mpl_per_site=mpl_per_site,
        n_items_per_site=n_items_per_site, seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
