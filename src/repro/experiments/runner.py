"""Parallel trial execution for experiment sweeps.

Every Rainbow sweep is a list of *independent* simulations: each point
builds its own :class:`~repro.core.instance.RainbowInstance` (its own
simulator, network, and seeded random streams) and returns plain row data.
That independence makes the sweeps embarrassingly parallel, and this module
is the one fan-out primitive they all share:

* :class:`Trial` — one unit of work: a picklable top-level callable plus
  keyword arguments.
* :func:`run_trials` — execute a list of trials and return their results
  **in trial order**, either serially (``n_jobs=1``) or across worker
  processes.

Determinism contract: a trial's result depends only on its own arguments
(experiments seed every stream explicitly), and results are returned in
submission order, so a given trial list produces the identical result list
— and therefore byte-identical experiment tables — for every ``n_jobs``.

Robustness: workers are spawned (no inherited fork state, so the same code
path runs on every platform), and any trial whose worker dies or whose
result cannot be transported is transparently re-executed in the parent
process.  ``n_jobs`` therefore only ever changes wall-clock time, never
results.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Trial", "run_trials", "resolve_jobs", "sweep"]


@dataclass(frozen=True)
class Trial:
    """One schedulable unit of experiment work.

    ``fn`` must be a module-level callable (so it pickles by reference for
    spawn-based workers) and ``kwargs`` must contain only picklable values;
    the same holds for the return value.  ``tag`` is carried untouched for
    the caller's bookkeeping (e.g. the sweep point the trial belongs to).
    """

    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)
    tag: Any = None

    def execute(self) -> Any:
        """Run the trial in the current process."""
        return self.fn(**self.kwargs)


def resolve_jobs(n_jobs: int | None, n_trials: int) -> int:
    """Normalise an ``n_jobs`` request against the machine and the work.

    ``None`` or ``0`` means "all cores"; negative values mean "all cores
    minus ``|n_jobs| - 1``" (the ``joblib`` convention, so ``-1`` is also
    all cores).  The result is clamped to ``[1, n_trials]``.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        jobs = cores
    elif n_jobs < 0:
        jobs = cores + 1 + n_jobs
    else:
        jobs = n_jobs
    return max(1, min(jobs, max(n_trials, 1)))


def _execute(trial: Trial) -> Any:
    """Top-level worker entry point (picklable under spawn)."""
    return trial.execute()


def run_trials(trials: Iterable[Trial], n_jobs: int | None = 1) -> list[Any]:
    """Execute ``trials`` and return their results in trial order.

    * ``n_jobs=1`` (the default): plain serial loop, no subprocesses.
    * ``n_jobs>1``: dispatch across a spawn-based process pool.  Results
      come back in submission order regardless of completion order.
    * ``n_jobs=None``/``0``/negative: see :func:`resolve_jobs`.

    Graceful degradation: if a worker dies (killed, out of memory, broken
    pool) or a trial's function/result fails to pickle, the affected trials
    are re-executed serially in the parent process, so the call still
    returns a complete, correctly ordered result list.  Ordinary exceptions
    *raised by a trial itself* are likewise reproduced in the parent — and
    therefore surface to the caller exactly as they would serially.
    """
    trials = list(trials)
    if not trials:
        return []
    jobs = resolve_jobs(n_jobs, len(trials))
    if jobs == 1:
        return [trial.execute() for trial in trials]

    results: list[Any] = [None] * len(trials)
    done = [False] * len(trials)
    try:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            futures = [pool.submit(_execute, trial) for trial in trials]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except Exception:
                    # Worker died mid-trial, result didn't pickle, or the
                    # trial raised: re-run in-process.  A genuine trial
                    # error re-raises here, identically to the serial path.
                    results[index] = trials[index].execute()
                done[index] = True
    except Exception:
        # The pool itself failed to come up or broke down so badly that
        # submission/collection stopped: finish the remainder serially.
        for index, trial in enumerate(trials):
            if not done[index]:
                results[index] = trial.execute()
    return results


def sweep(
    fn: Callable[..., Any],
    points: Sequence[dict],
    n_jobs: int | None = 1,
    **common: Any,
) -> list[Any]:
    """Run ``fn`` once per point dict (merged over ``common`` kwargs).

    Convenience wrapper used by the experiment modules: builds one
    :class:`Trial` per sweep point and returns the per-point results in
    point order.
    """
    trials = [Trial(fn, {**common, **point}, tag=tuple(point.items())) for point in points]
    return run_trials(trials, n_jobs=n_jobs)
