"""EXP-QCMSG: quorum-consensus message traffic vs ROWA.

Reproduces the *class* of experiment §3 cites ([3], the SETH study of
"quorum consensus behavior and message traffic in quorum-based systems"):
how many messages a transaction costs under ROWA vs QC as the replication
degree grows, at different read/write mixes.

Expected shape:

* **reads** — ROWA reads one copy (0 messages when the home holds one, one
  round trip otherwise); QC must reach ⌈(n+1)/2⌉ votes, so its read cost
  grows with n.
* **writes** — ROWA touches all n copies; QC only a majority, so QC's
  advantage grows with n.
* the **crossover** moves with the read fraction: read-heavy workloads
  favour ROWA, write-heavy workloads favour QC at higher degrees.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.net.message import MessageType
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]

#: Message types that constitute transaction-processing traffic (excludes
#: web-tier, name-server bootstrap, and workload dispatch overhead).
DATA_TYPES = MessageType.DATA_CATEGORY | MessageType.COMMIT_CATEGORY


def _trial(
    rcp: str,
    read_fraction: float,
    degree: int,
    n_txns: int,
    n_sites: int,
    n_items: int,
    seed: int,
) -> dict:
    """One traffic-accounting session at a single (RCP, mix, degree) point."""
    instance = build_instance(
        n_sites, n_items, degree, rcp=rcp, seed=seed, settle_time=50.0
    )
    instance.start()
    before = dict(instance.network.stats.by_type)
    before_rt = instance.network.stats.round_trips
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.2,
        min_ops=4,
        max_ops=6,
        read_fraction=read_fraction,
    )
    result = instance.run_workload(spec)
    after = instance.network.stats.by_type
    data_msgs = sum(
        after.get(mtype, 0) - before.get(mtype, 0) for mtype in DATA_TYPES
    )
    finished = max(result.statistics.finished, 1)
    return {
        "rcp": rcp,
        "read_fraction": read_fraction,
        "degree": degree,
        "msgs_per_txn": data_msgs / finished,
        "round_trips_per_txn": (
            (instance.network.stats.round_trips - before_rt) / finished
        ),
        "commit_rate": result.statistics.commit_rate,
    }


def run(
    degrees: Sequence[int] = (1, 2, 3, 5, 7),
    read_fractions: Sequence[float] = (0.2, 0.8),
    n_txns: int = 150,
    n_sites: int = 8,
    n_items: int = 96,
    seed: int = 7,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Sweep replication degree × read mix for ROWA and QC."""
    table = ExperimentTable(
        title="EXP-QCMSG: messages per transaction (ROWA vs QC)",
        columns=[
            "rcp",
            "read_fraction",
            "degree",
            "msgs_per_txn",
            "round_trips_per_txn",
            "commit_rate",
        ],
        notes=(
            "Transaction-processing messages only (copy access + commit); "
            "web/NS/WLG overhead excluded."
        ),
    )
    points = [
        {"rcp": rcp, "read_fraction": read_fraction, "degree": degree}
        for read_fraction in read_fractions
        for rcp in ("ROWA", "QC")
        for degree in degrees
    ]
    rows = sweep(
        _trial, points, n_jobs=n_jobs,
        n_txns=n_txns, n_sites=n_sites, n_items=n_items, seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
