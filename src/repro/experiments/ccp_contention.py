"""EXP-CCP: concurrency-control protocols under contention.

Sweeps access skew (Zipf θ) for 2PL, TSO and MVTO at a fixed
multiprogramming level.  Expected shape:

* **2PL** — throughput decays with skew as blocking chains and deadlocks
  pile up; aborts are deadlock victims/lock timeouts.
* **TSO** — conflicts become immediate restarts: a higher abort rate than
  2PL at high skew, but no deadlocks and shorter waits.
* **MVTO** — read/write conflicts vanish (reads use old versions), so the
  mostly-read workload keeps both its commit rate and throughput longest.
* **OCC** — conflict-free execution; conflicts surface late, as failed
  validations = NO votes, i.e. *ACP* aborts rather than CCP aborts.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def _trial(
    ccp: str, theta: float, n_txns: int, mpl: int, n_sites: int, n_items: int, seed: int
) -> dict:
    """One contended session at a single (CCP, Zipf θ) point."""
    instance = build_instance(
        n_sites, n_items, 3, ccp=ccp, seed=seed, settle_time=50.0
    )
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="closed",
        mpl=mpl,
        min_ops=4,
        max_ops=10,  # long readers expose TSO's late-read rejections
        read_fraction=0.8,
        access="zipf",
        zipf_theta=theta,
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    deadlocks = sum(
        site.cc.locks.stats.deadlocks
        for site in instance.sites.values()
        if hasattr(site.cc, "locks")
    )
    return {
        "ccp": ccp,
        "theta": theta,
        "commit_rate": stats.commit_rate,
        "ccp_abort_rate": stats.abort_rates_by_cause.get("CCP", 0.0),
        "acp_abort_rate": stats.abort_rates_by_cause.get("ACP", 0.0),
        "throughput": stats.throughput,
        "mean_rt": stats.mean_response_time or 0.0,
        "deadlocks": deadlocks,
    }


def run(
    thetas: Sequence[float] = (0.0, 0.6, 0.9),
    ccps: Sequence[str] = ("2PL", "TSO", "MVTO", "OCC"),
    n_txns: int = 120,
    mpl: int = 8,
    n_sites: int = 4,
    n_items: int = 40,
    seed: int = 23,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Sweep Zipf skew × CCP at fixed MPL (closed workload)."""
    table = ExperimentTable(
        title="EXP-CCP: 2PL vs TSO vs MVTO vs OCC under contention",
        columns=[
            "ccp",
            "theta",
            "commit_rate",
            "ccp_abort_rate",
            "acp_abort_rate",
            "throughput",
            "mean_rt",
            "deadlocks",
        ],
        notes="Closed workload (MPL constant); QC + 2PC fixed; Zipf item access.",
    )
    points = [
        {"ccp": ccp, "theta": theta} for ccp in ccps for theta in thetas
    ]
    rows = sweep(
        _trial, points, n_jobs=n_jobs,
        n_txns=n_txns, mpl=mpl, n_sites=n_sites, n_items=n_items, seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
