"""EXP-MATRIX: the full protocol-configuration space of Figure 4.

§2.1 presents RCP, CCP and ACP as independently selectable; this
supplementary experiment runs the same workload under *every* combination
the Protocols Configuration window can express and reports commit rate,
per-transaction message cost, and mean response time — the at-a-glance
comparison a lab session ends with.  Every combination must produce a
one-copy-serializable committed history; the table records the check.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def _trial(
    rcp: str, ccp: str, acp: str, n_txns: int, n_sites: int, n_items: int, seed: int
) -> dict:
    """One self-contained session for a single (RCP, CCP, ACP) point."""
    instance = build_instance(
        n_sites, n_items, 3, rcp=rcp, ccp=ccp, acp=acp,
        seed=seed, settle_time=50.0,
    )
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.4,
        min_ops=3,
        max_ops=6,
        read_fraction=0.7,
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    return {
        "rcp": rcp,
        "ccp": ccp,
        "acp": acp,
        "commit_rate": stats.commit_rate,
        "msgs_per_txn": stats.mean_messages_per_txn,
        "mean_rt": stats.mean_response_time or 0.0,
        "serializable": bool(result.serializable),
    }


def run(
    rcps: Sequence[str] = ("ROWA", "ROWAA", "QC"),
    ccps: Sequence[str] = ("2PL", "TSO", "MVTO", "OCC"),
    acps: Sequence[str] = ("2PC", "3PC"),
    n_txns: int = 40,
    n_sites: int = 4,
    n_items: int = 32,
    seed: int = 77,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """One session per (RCP, CCP, ACP) combination."""
    table = ExperimentTable(
        title="EXP-MATRIX: protocol combination matrix",
        columns=[
            "rcp",
            "ccp",
            "acp",
            "commit_rate",
            "msgs_per_txn",
            "mean_rt",
            "serializable",
        ],
        notes="Same Poisson workload for every combination; seeds fixed.",
    )
    points = [
        {"rcp": rcp, "ccp": ccp, "acp": acp}
        for rcp in rcps
        for ccp in ccps
        for acp in acps
    ]
    rows = sweep(
        _trial, points, n_jobs=n_jobs,
        n_txns=n_txns, n_sites=n_sites, n_items=n_items, seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
