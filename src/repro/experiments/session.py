"""EXP-FIG5: a full default Rainbow session and its output panel.

Runs the paper's default configuration (QC + 2PL + 2PC) on a 4-site domain
and produces the transaction-processing output of Figure 5: the §3
statistics block plus the most recent per-transaction rows, rendered as the
ASCII session panel.
"""

from __future__ import annotations

from repro.core.instance import RainbowInstance, SessionResult
from repro.experiments.common import build_instance
from repro.gui.panels import render_session_panel
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def run(
    n_txns: int = 200,
    n_sites: int = 4,
    n_items: int = 64,
    seed: int = 3,
    sites_per_host: int = 1,
    batch_site_ops: bool = False,
    piggyback_prepare: bool = False,
    latency_aware_routing: bool = False,
) -> tuple[SessionResult, str, RainbowInstance]:
    """Run the default session; returns (result, panel_text, instance)."""
    instance = build_instance(
        n_sites, n_items, 3, rcp="QC", ccp="2PL", acp="2PC", seed=seed,
        sites_per_host=sites_per_host,
        batch_site_ops=batch_site_ops,
        piggyback_prepare=piggyback_prepare,
        latency_aware_routing=latency_aware_routing,
        sample_interval=25.0,
    )
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.5,
        min_ops=3,
        max_ops=6,
        read_fraction=0.7,
    )
    result = instance.run_workload(spec)
    panel = render_session_panel(result.statistics, instance.monitor.records[-5:])
    return result, panel, instance
