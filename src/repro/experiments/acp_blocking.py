"""EXP-ACP: 2PC blocking vs 3PC termination under coordinator crashes.

The paper proposes "replacing two phase commit by three-phase commit" as a
term project; this experiment quantifies why anyone would.  Using the
deterministic coordinator failpoints, a write transaction's home site is
crashed at the most damaging instants:

* ``after_votes`` — every participant has voted YES, no decision exists.
  2PC participants stay blocked (orphans) until the coordinator recovers
  (presumed abort then ends it).  3PC participants run the termination
  protocol and abort within their uncertainty timeout.
* ``after_precommit`` (3PC only) — participants are precommitted, so the
  termination protocol *commits* without the coordinator.

Reported: orphans observed during the outage, whether the participants
decided before the coordinator recovered, and how long they stayed blocked.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, build_instance
from repro.txn.transaction import Operation, Transaction

__all__ = ["run"]

_SCENARIOS = (
    ("2PC", "after_votes"),
    ("3PC", "after_votes"),
    ("3PC", "after_precommit"),
)


def run(
    outage: float = 300.0,
    n_sites: int = 4,
    n_items: int = 8,
    seed: int = 43,
) -> ExperimentTable:
    """Run each coordinator-crash scenario and measure the blocking."""
    table = ExperimentTable(
        title="EXP-ACP: coordinator crash — 2PC blocking vs 3PC termination",
        columns=[
            "acp",
            "failpoint",
            "orphans_peak",
            "decided_during_outage",
            "blocked_time",
            "outcome",
        ],
        notes=(
            "One write transaction; home site crashed at the failpoint and "
            f"recovered after {outage} time units."
        ),
    )
    for acp, failpoint in _SCENARIOS:
        instance = build_instance(
            n_sites,
            n_items,
            3,
            acp=acp,
            seed=seed,
            failure_profile=True,
            settle_time=0.0,
        )
        instance.coordinator_config.failpoint = failpoint
        instance.coordinator_config.failpoint_arms = 1
        instance.start()
        sim = instance.sim

        txn = Transaction(
            ops=[Operation.write("x1", 1), Operation.write("x2", 2)],
            home_site="site1",
        )
        process = instance.submit(txn)
        sim.run(until=process)
        crash_at = sim.now

        # Watch the orphan count through the outage.
        orphans_peak = 0
        decided_at = None
        step = 5.0
        while sim.now < crash_at + outage:
            sim.run(until=sim.now + step)
            orphans = sum(site.in_doubt_count() for site in instance.sites.values())
            orphans_peak = max(orphans_peak, orphans)
            if orphans == 0 and decided_at is None:
                decided_at = sim.now
        decided_during_outage = decided_at is not None

        instance.injector.recover_now("site1")
        while sum(site.in_doubt_count() for site in instance.sites.values()) > 0:
            sim.run(until=sim.now + step)
            if sim.now > crash_at + outage + 500:
                break  # safety: report whatever is left
        if decided_at is None:
            decided_at = sim.now

        # Global outcome: did the write survive anywhere?
        committed_anywhere = any(
            site.store.has_copy("x1") and site.store.read("x1")[0] == 1
            for site in instance.sites.values()
        )
        table.add(
            acp=acp,
            failpoint=failpoint,
            orphans_peak=orphans_peak,
            decided_during_outage=decided_during_outage,
            blocked_time=decided_at - crash_at,
            outcome="COMMIT" if committed_anywhere else "ABORT",
        )
    return table
