"""EXP-AVAIL: commit rate under site failures — QC's availability win.

The motivation for quorum consensus (and Rainbow's fault-injection
facility) is availability under site failures: ROWA writes need *every*
copy, so one crashed replica holder kills all writes to that item; QC only
needs a majority of votes.

The experiment runs the same workload under an increasingly hostile random
crash/recover process (decreasing MTTF at fixed MTTR) and reports commit
rates.  Expected shape: both protocols start near 1.0 with no faults; as
failures intensify, ROWA's commit rate collapses (RCP aborts dominate)
while QC degrades gracefully.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def _trial(
    rcp: str,
    mttf: float | None,
    repetition: int,
    mttr: float,
    n_txns: int,
    n_sites: int,
    n_items: int,
    seed: int,
) -> tuple:
    """One session at a single (RCP, MTTF, repetition) point."""
    instance = build_instance(
        n_sites,
        n_items,
        n_sites,  # full replication
        rcp=rcp,
        seed=seed + 1000 * repetition,
        failure_profile=True,
        settle_time=80.0,
    )
    if mttf is not None:
        instance.config.faults.random_targets = instance.config.site_names()
        instance.config.faults.mttf = mttf
        instance.config.faults.mttr = mttr
        instance.config.faults.horizon = 900.0
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.15,
        min_ops=3,
        max_ops=5,
        read_fraction=0.25,  # write-heavy: write-all is the weakness
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    return (
        stats.commit_rate,
        stats.abort_rates_by_cause.get("RCP", 0.0),
        instance.injector.crash_count(),
        stats.orphan_events,
    )


def run(
    mttfs: Sequence[float | None] = (None, 600.0, 300.0, 150.0),
    mttr: float = 60.0,
    n_txns: int = 120,
    n_sites: int = 5,
    n_items: int = 30,
    seed: int = 11,
    rcps: Sequence[str] = ("ROWA", "ROWAA", "QC"),
    repetitions: int = 1,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Sweep failure intensity across the RCPs (full replication).

    ROWAA (available copies) is included as the availability upper bound
    under fail-stop crashes; it trades away partition safety for it.
    ``repetitions > 1`` averages over independent seeds (fault schedules
    are the dominant noise source in this experiment).
    """
    table = ExperimentTable(
        title="EXP-AVAIL: commit rate under site failures (ROWA vs ROWAA vs QC)",
        columns=[
            "rcp",
            "mttf",
            "commit_rate",
            "rcp_abort_rate",
            "crashes",
            "orphan_events",
        ],
        notes="Full replication over 5 sites; random crash/recover on all sites.",
    )
    repetitions = max(repetitions, 1)
    points = [
        {"rcp": rcp, "mttf": mttf, "repetition": repetition}
        for rcp in rcps
        for mttf in mttfs
        for repetition in range(repetitions)
    ]
    samples = sweep(
        _trial, points, n_jobs=n_jobs,
        mttr=mttr, n_txns=n_txns, n_sites=n_sites, n_items=n_items, seed=seed,
    )
    for index in range(0, len(points), repetitions):
        point = points[index]
        group = samples[index:index + repetitions]
        count = len(group)
        table.add(
            rcp=point["rcp"],
            mttf="inf" if point["mttf"] is None else point["mttf"],
            commit_rate=sum(s[0] for s in group) / count,
            rcp_abort_rate=sum(s[1] for s in group) / count,
            crashes=round(sum(s[2] for s in group) / count),
            orphan_events=round(sum(s[3] for s in group) / count),
        )
    return table
