"""EXP-ABL: ablation of the 2PL deadlock-handling strategy.

DESIGN.md calls out deadlock handling as a key design choice.  This
ablation runs the same contended workload under the four strategies the
lock manager supports:

* ``detect`` — wait-for-graph cycle detection, youngest victim (default);
* ``timeout`` — no graph, abort waits longer than the lock timeout;
* ``wait_die`` — non-preemptive timestamp priority;
* ``wound_wait`` — preemptive timestamp priority.

Expected shape: detection aborts the fewest transactions (only real local
cycles die); timeout over-aborts under load; wait-die restarts many young
transactions; wound-wait trades young holders' work for short waits.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentTable, build_instance
from repro.experiments.runner import sweep
from repro.workload.spec import WorkloadSpec

__all__ = ["run"]


def _trial(
    strategy: str, n_txns: int, mpl: int, n_sites: int, n_items: int, seed: int
) -> dict:
    """One contended session under a single deadlock strategy."""
    instance = build_instance(
        n_sites,
        n_items,
        3,
        ccp_options={"deadlock_strategy": strategy},
        seed=seed,
        settle_time=50.0,
    )
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="closed",
        mpl=mpl,
        min_ops=4,
        max_ops=6,
        read_fraction=0.6,
        access="zipf",
        zipf_theta=0.7,
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    lock_stats = [site.cc.locks.stats for site in instance.sites.values()]
    return {
        "strategy": strategy,
        "commit_rate": stats.commit_rate,
        "throughput": stats.throughput,
        "deadlocks": sum(ls.deadlocks for ls in lock_stats),
        "timeouts": sum(ls.timeouts for ls in lock_stats),
        "wounds": sum(ls.wounds for ls in lock_stats),
        "deaths": sum(ls.deaths for ls in lock_stats),
        "mean_rt": stats.mean_response_time or 0.0,
    }


def run(
    strategies: Sequence[str] = ("detect", "timeout", "wait_die", "wound_wait"),
    n_txns: int = 120,
    mpl: int = 8,
    n_sites: int = 4,
    n_items: int = 32,
    seed: int = 61,
    n_jobs: int | None = 1,
) -> ExperimentTable:
    """Compare deadlock strategies on one contended closed workload."""
    table = ExperimentTable(
        title="EXP-ABL: 2PL deadlock-handling ablation",
        columns=[
            "strategy",
            "commit_rate",
            "throughput",
            "deadlocks",
            "timeouts",
            "wounds",
            "deaths",
            "mean_rt",
        ],
        notes="Same contended closed workload (QC + 2PC) for every strategy.",
    )
    rows = sweep(
        _trial, [{"strategy": strategy} for strategy in strategies], n_jobs=n_jobs,
        n_txns=n_txns, mpl=mpl, n_sites=n_sites, n_items=n_items, seed=seed,
    )
    for row in rows:
        table.add(**row)
    return table
