"""Deterministic discrete-event simulation kernel.

This is the execution substrate that replaces the Java threads of the
original Rainbow system.  Every active component of the reproduction — site
servers, transaction coordinator threads, the workload generator, the fault
injector, the progress-monitor sampler — is a :class:`Process`: a Python
generator that yields events (timeouts, received messages, completions of
other processes) and is resumed when they fire.

The kernel is intentionally SimPy-like but self-contained:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`Event` is a one-shot occurrence that can *succeed* with a value or
  *fail* with an exception.
* :class:`Timeout` succeeds after a fixed delay.
* :class:`Process` wraps a generator; yielding an event suspends the process
  until the event fires.  A failed event is re-raised inside the generator so
  processes handle protocol failures with ordinary ``try/except``.
* :class:`AnyOf` / :class:`AllOf` compose events.
* :meth:`Process.interrupt` throws :class:`Interrupt` into a suspended
  process — used to kill in-flight work when a site crashes.

Determinism: events scheduled for the same instant fire in scheduling order
(a monotonically increasing sequence number breaks ties), so a given seed
always produces the same history — the property that makes classroom
assignments and experiments repeatable.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Simulator",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

# Event lifecycle states.
PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

# Hoisted heap bindings: the event loop pays for these every iteration.
_heappush = heapq.heappush
_heappop = heapq.heappop


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` is whatever the interrupter supplied (for Rainbow this is
    usually a site-crash notice).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    moves it to *triggered* and schedules its callbacks to run at the
    current simulation instant; once callbacks have run it is *processed*.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = PENDING
        self.name = name

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (value or failure)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        # Inlined Simulator._schedule(0.0, self): succeed() is the hottest
        # call in the kernel, so it queues itself without a method hop.
        sim = self.sim
        sim._sequence += 1
        _heappush(sim._heap, (sim._now, sim._sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception is raised inside any process waiting on the event.
        """
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        sim = self.sim
        sim._sequence += 1
        _heappush(sim._heap, (sim._now, sim._sequence, self))
        return self

    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (same instant), preserving at-most-once semantics.
        """
        if self._state == PROCESSED:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        return f"<{label} state={self._state}>"


class Timeout(Event):
    """An event that succeeds ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ with a static name: formatting a
        # per-instance label was measurable on timeout-heavy workloads.
        self.sim = sim
        self.callbacks = []
        self.name = "Timeout"
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim._sequence += 1
        _heappush(sim._heap, (sim._now + delay, sim._sequence, self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout({self.delay}) state={self._state}>"


#: Sentinel distinguishing "no argument" from "argument is None".
_NO_ARG = object()


class _Call:
    """A scheduled bare callback: the cheapest thing the heap can hold.

    Used by :meth:`Simulator.defer` for fire-and-forget timers (message
    delivery, lightweight expirations) where a full :class:`Event` — with
    its callback list, state machine, and waiter support — is overhead.
    The event loop only requires ``_run_callbacks``.
    """

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Callable, arg: Any = _NO_ARG):
        self.fn = fn
        self.arg = arg

    def _run_callbacks(self) -> None:
        if self.arg is _NO_ARG:
            self.fn()
        else:
            self.fn(self.arg)


class _ConditionEvent(Event):
    """Base for AnyOf/AllOf: completes based on child event outcomes."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._child_fired)

    def _child_fired(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        # Only *processed* children count: a Timeout is born triggered but
        # has not occurred until its callbacks ran.
        return {e: e.value for e in self.events if e.processed and e.ok}


class AnyOf(_ConditionEvent):
    """Succeeds as soon as any child event succeeds.

    Fails only if *all* children fail (with the last failure).  The success
    value is a dict of the child events that had succeeded by that instant,
    mapped to their values.
    """

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._results())
        else:
            self._remaining -= 1
            if self._remaining == 0:
                self.fail(event.value)


class AllOf(_ConditionEvent):
    """Succeeds once every child event has succeeded.

    Fails as soon as any child fails (with that child's exception).
    """

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())


class Process(Event):
    """A running generator; completes when the generator returns.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds the process resumes with the event's value; when it fails the
    exception is thrown into the generator.  The process event itself
    succeeds with the generator's return value, or fails with any uncaught
    exception.
    """

    __slots__ = ("generator", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        # Start the process at the current instant (but not synchronously,
        # so the creator finishes its own step first).  An interrupt that
        # arrives before the first step lands in ``_interrupts`` and is
        # delivered by the bootstrap step itself.
        sim._sequence += 1
        _heappush(sim._heap, (sim._now, sim._sequence, _Call(self._bootstrap)))

    def _bootstrap(self) -> None:
        if not self.triggered:
            self._step(send=None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is a no-op; interrupting a process
        that is not currently suspended delivers the interrupt at its next
        suspension point.
        """
        if self.triggered:
            return
        interrupt = Interrupt(cause)
        if self._waiting_on is not None:
            target, self._waiting_on = self._waiting_on, None
            # Detach: the original event may still fire later; ignore it.
            delivery = Event(self.sim, name=f"interrupt:{self.name}")
            delivery.add_callback(lambda _ev: self._step(throw=interrupt))
            delivery.succeed(None)
            # Ensure a late firing of `target` does not also resume us.
            self._disarm(target)
        else:
            self._interrupts.append(interrupt)

    def _disarm(self, event: Event) -> None:
        try:
            event.callbacks.remove(self._resume)
        except ValueError:
            pass

    # -- stepping ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._state is not PENDING:
            return
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt detached us
        self._waiting_on = None
        if event._ok:
            self._step(send=event._value)
        else:
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self._state is not PENDING:
            return
        try:
            if self._interrupts and throw is None:
                throw = self._interrupts.pop(0)
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # An uncaught interrupt terminates the process quietly: the
            # process was killed on purpose (e.g. its site crashed).
            self.succeed(interrupt)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate funnel
            self.fail(exc)
            return

        # One getattr replaces the isinstance + ownership pair on the hot
        # path; the slow path below recovers the precise error.
        if getattr(target, "sim", None) is not self.sim:
            if not isinstance(target, Event):
                self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
            else:
                self.fail(SimulationError("process yielded event from another simulator"))
            return
        if self._interrupts:
            # An interrupt arrived while the process body was executing:
            # deliver it at this suspension point instead of waiting.
            interrupt = self._interrupts.pop(0)
            delivery = Event(self.sim, name=f"interrupt:{self.name}")
            delivery.add_callback(lambda _ev: self._step(throw=interrupt))
            delivery.succeed(None)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The discrete-event simulator: virtual clock plus event heap."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._processed_events = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (a work measure)."""
        return self._processed_events

    # -- event construction -------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Launch ``generator`` as a process starting at the current instant."""
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator (did you call the function?)")
        return Process(self, generator, name=name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` time units (a lightweight timer)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        event = Event(self, name="call_later")
        event._ok = True
        event._state = TRIGGERED
        event.add_callback(lambda _ev: fn())
        self._schedule(delay, event)
        return event

    def defer(self, delay: float, fn: Callable, arg: Any = _NO_ARG) -> None:
        """Schedule ``fn(arg)`` (or ``fn()``) after ``delay`` time units.

        The fire-and-forget counterpart of :meth:`call_later`: nothing is
        returned and no :class:`Event` is allocated, so hot paths (message
        delivery, per-message timers) avoid the full event machinery.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._sequence += 1
        _heappush(self._heap, (self._now + delay, self._sequence, _Call(fn, arg)))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        self._sequence += 1
        _heappush(self._heap, (self._now + delay, self._sequence, event))

    # -- execution ----------------------------------------------------------
    def step(self) -> bool:
        """Process one event.  Returns False if the heap is empty."""
        if not self._heap:
            return False
        when, _seq, event = _heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self._processed_events += 1
        event._run_callbacks()
        return True

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        * ``until`` is None: run until no events remain.
        * ``until`` is a number: run until the clock would pass it (the
          clock is left exactly at ``until``).
        * ``until`` is an :class:`Event`: run until that event is processed
          and return its value (raising if it failed).

        All three modes drain the heap with inlined loops rather than
        per-event :meth:`step` calls — scheduling guarantees events are
        never in the past, so the loop only pops, advances the clock, and
        runs callbacks.
        """
        heap = self._heap
        heappop = _heappop
        if until is None:
            while heap:
                self._now, _seq, event = heappop(heap)
                self._processed_events += 1
                event._run_callbacks()
            return None

        if isinstance(until, Event):
            sentinel = until
            while sentinel._state != PROCESSED:
                if not heap:
                    raise SimulationError("simulation ran dry before the awaited event fired")
                self._now, _seq, event = heappop(heap)
                self._processed_events += 1
                event._run_callbacks()
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value

        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"cannot run to {deadline}: clock already at {self._now}")
        while heap and heap[0][0] <= deadline:
            self._now, _seq, event = heappop(heap)
            self._processed_events += 1
            event._run_callbacks()
        self._now = deadline
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")
