"""Deterministic named random streams.

Experiments need *variance isolation*: changing the workload seed must not
perturb the network-latency draws, and adding a site must not shift the
failure schedule.  :class:`RandomStreams` therefore derives an independent
``random.Random`` per named purpose from one master seed, so each subsystem
consumes its own stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = [
    "RandomStreams",
    "exponential",
    "iterate_poisson_arrivals",
    "weighted_choice",
    "zipf_weights",
]


class RandomStreams:
    """A family of independent, reproducible random streams.

    >>> streams = RandomStreams(42)
    >>> streams.get("network") is streams.get("network")
    True
    >>> streams.get("network") is streams.get("workload")
    False
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}/child/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, theta: float) -> list[float]:
    """Normalised Zipf(θ) weights over ranks ``1..n``.

    θ = 0 is uniform; larger θ skews access towards low ranks.  Used by the
    workload generator's hotspot access distributions.
    """
    if n <= 0:
        raise ValueError(f"zipf_weights needs n >= 1, got {n}")
    if theta < 0:
        raise ValueError(f"zipf_weights needs theta >= 0, got {theta}")
    raw = [1.0 / (rank ** theta) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, weights: list[float]) -> int:
    """Draw an index according to ``weights`` (assumed normalised)."""
    point = rng.random()
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if point <= acc:
            return index
    return len(weights) - 1


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential variate with the given mean (mean<=0 returns 0)."""
    if mean <= 0:
        return 0.0
    return rng.expovariate(1.0 / mean)


def iterate_poisson_arrivals(rng: random.Random, rate: float) -> Iterator[float]:
    """Yield successive inter-arrival gaps of a Poisson process."""
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    while True:
        yield rng.expovariate(rate)
