"""Discrete-event simulation kernel (Rainbow's execution substrate)."""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.randoms import RandomStreams, zipf_weights

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "RandomStreams",
    "zipf_weights",
]
