"""Request/response envelopes of the web middle tier.

GUI ↔ servlet traffic travels as ``WEB_REQUEST``/``WEB_REPLY`` messages
whose payloads are these envelopes: a target servlet name, an action, and
an argument dict.  An authenticated session token (issued by the login
action) accompanies every request, reproducing the "Rainbow access
authorization" of the demo page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["WebRequest", "WebResponse"]


@dataclass
class WebRequest:
    """One GUI-originated request for a servlet."""

    servlet: str
    action: str
    args: dict = field(default_factory=dict)
    token: Optional[str] = None

    def to_payload(self) -> dict:
        return {
            "servlet": self.servlet,
            "action": self.action,
            "args": self.args,
            "token": self.token,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WebRequest":
        return cls(
            servlet=payload.get("servlet", ""),
            action=payload.get("action", ""),
            args=payload.get("args", {}) or {},
            token=payload.get("token"),
        )


@dataclass
class WebResponse:
    """A servlet's answer."""

    ok: bool
    data: Any = None
    error: str = ""

    def to_payload(self) -> dict:
        return {"ok": self.ok, "data": self.data, "error": self.error}

    @classmethod
    def from_payload(cls, payload: dict) -> "WebResponse":
        payload = payload or {}
        return cls(
            ok=bool(payload.get("ok")),
            data=payload.get("data"),
            error=payload.get("error", ""),
        )

    @classmethod
    def success(cls, data: Any = None) -> "WebResponse":
        return cls(ok=True, data=data)

    @classmethod
    def failure(cls, error: str) -> "WebResponse":
        return cls(ok=False, error=error)
