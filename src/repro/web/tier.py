"""Assembly of the Rainbow web middle tier over a running instance.

:class:`RainbowWebTier` stands up a :class:`~repro.web.servlets.ServletRunner`
on every domain host and installs the six servlets with the paper's
placement rules.  The home host gets the four jump-off servlets
(NSRunnerlet, SiteRunnerlet, WLGlet, PMlet) plus the access-authorization
servlet; NSlet goes to the name server's host; one Sitelet to each host
with Rainbow sites.

Level-one servlets validate the session token and forward over the network
to the level-two servlet on the responsible host, so a ``site_stats``
request from the GUI costs the same two hops it does in the real system.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict
from typing import Optional

from repro.core.instance import RainbowInstance
from repro.errors import AuthorizationError, NetworkError, RpcTimeout, WebTierError
from repro.net.message import MessageType
from repro.web.requests import WebRequest, WebResponse
from repro.web.servlets import RUNNER_NAME, Servlet, ServletRunner
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec

__all__ = ["RainbowWebTier", "DEFAULT_USERS"]

#: Default access-authorization table: user -> (password, role).
DEFAULT_USERS = {
    "admin": ("admin", "admin"),
    "student": ("student", "student"),
}

_token_counter = itertools.count(1)
_workload_counter = itertools.count(1)


class AuthServlet(Servlet):
    """The Rainbow access authorization of RainbowDemo.html."""

    name = "auth"

    def __init__(self, tier: "RainbowWebTier"):
        self.tier = tier

    def handle(self, request: WebRequest):
        if request.action == "download_page":
            return WebResponse.success(
                {
                    "page": "RainbowDemo.html",
                    "home_host": self.tier.home_host,
                    "requires_login": True,
                }
            )
        if request.action == "login":
            user = request.args.get("user", "")
            password = request.args.get("password", "")
            entry = self.tier.users.get(user)
            if entry is None or entry[0] != password:
                return WebResponse.failure("access denied")
            token = f"tok{next(_token_counter)}-{user}"
            self.tier.sessions[token] = entry[1]
            return WebResponse.success({"token": token, "role": entry[1]})
        if request.action == "logout":
            self.tier.sessions.pop(request.token, None)
            return WebResponse.success({})
        return WebResponse.failure(f"unknown auth action {request.action!r}")
        yield  # pragma: no cover - generator marker


class NSRunnerlet(Servlet):
    """Home-host jump-off for name-server requests (forwards to NSlet)."""

    name = "nsrunnerlet"

    def __init__(self, tier: "RainbowWebTier"):
        self.tier = tier

    def handle(self, request: WebRequest):
        self.tier.require_role(request.token)
        if request.action in ("lookup_sites", "get_catalog", "ns_status"):
            response = yield from self.runner.forward(
                self.tier.ns_host, "nslet", request.action, request.args, request.token
            )
            return response
        if request.action == "configure_quorums":
            self.tier.require_role(request.token, "admin")
            response = yield from self.runner.forward(
                self.tier.ns_host, "nslet", request.action, request.args, request.token
            )
            return response
        if request.action == "get_config":
            # "The configuration data can be saved for reuse in another
            # session" — the GUI downloads the full instance configuration.
            self.tier.require_role(request.token, "admin")
            return WebResponse.success({"config": self.tier.instance.config.to_dict()})
        return WebResponse.failure(f"unknown NSRunnerlet action {request.action!r}")


class NSlet(Servlet):
    """Lives with the name server; answers metadata requests locally."""

    name = "nslet"

    def __init__(self, tier: "RainbowWebTier"):
        self.tier = tier

    def handle(self, request: WebRequest):
        nameserver = self.tier.instance.nameserver
        if request.action == "lookup_sites":
            return WebResponse.success(
                {"sites": [info.to_dict() for info in nameserver.sites()]}
            )
        if request.action == "get_catalog":
            return WebResponse.success({"catalog": nameserver.catalog.to_dict()})
        if request.action == "ns_status":
            return WebResponse.success(
                {
                    "up": nameserver.up,
                    "host": nameserver.host,
                    "queries_served": nameserver.queries_served,
                    "n_sites": len(nameserver.site_names()),
                }
            )
        if request.action == "configure_quorums":
            item = nameserver.catalog.item(request.args["item"])
            item.read_quorum = request.args.get("read_quorum")
            item.write_quorum = request.args.get("write_quorum")
            item.validate()
            return WebResponse.success({"item": item.name})
        return WebResponse.failure(f"unknown NSlet action {request.action!r}")
        yield  # pragma: no cover - generator marker


class SiteRunnerlet(Servlet):
    """Home-host jump-off for site management (forwards to Sitelets)."""

    name = "siterunnerlet"

    def __init__(self, tier: "RainbowWebTier"):
        self.tier = tier

    def handle(self, request: WebRequest):
        self.tier.require_role(request.token)
        if request.action == "list_sites":
            return WebResponse.success({"sites": sorted(self.tier.site_hosts)})
        site = request.args.get("site")
        host = self.tier.site_hosts.get(site)
        if host is None:
            return WebResponse.failure(f"unknown site {site!r}")
        if request.action in ("site_stats", "crash_site", "recover_site", "site_state"):
            response = yield from self.runner.forward(
                host, "sitelet", request.action, request.args, request.token
            )
            return response
        return WebResponse.failure(f"unknown SiteRunnerlet action {request.action!r}")


class Sitelet(Servlet):
    """Per-host manager of the Rainbow sites living on that host."""

    name = "sitelet"

    def __init__(self, tier: "RainbowWebTier", host: str):
        self.tier = tier
        self.host = host

    def _site(self, name: str):
        site = self.tier.instance.sites.get(name)
        if site is None or site.host != self.host:
            raise WebTierError(f"site {name!r} is not on host {self.host}")
        return site

    def handle(self, request: WebRequest):
        site = self._site(request.args.get("site", ""))
        if request.action == "site_stats":
            stats = asdict(site.stats)
            stats.update(
                {
                    "up": site.up,
                    "in_doubt": site.in_doubt_count(),
                    "items": len(site.store),
                    "wal_records": len(site.wal),
                }
            )
            return WebResponse.success(stats)
        if request.action == "site_state":
            return WebResponse.success({"snapshot": site.store.snapshot()})
        if request.action == "crash_site":
            self.tier.instance.injector.crash_now(site.name)
            return WebResponse.success({"site": site.name, "up": site.up})
        if request.action == "recover_site":
            self.tier.instance.injector.recover_now(site.name)
            return WebResponse.success({"site": site.name, "up": site.up})
        return WebResponse.failure(f"unknown Sitelet action {request.action!r}")
        yield  # pragma: no cover - generator marker


class WLGlet(Servlet):
    """Transfers transaction-processing requests to Rainbow sites."""

    name = "wlglet"

    def __init__(self, tier: "RainbowWebTier"):
        self.tier = tier
        self.workloads: dict[int, tuple[WorkloadGenerator, object]] = {}

    def handle(self, request: WebRequest):
        self.tier.require_role(request.token)
        instance = self.tier.instance
        if request.action == "submit_txn":
            txn = request.args["txn"]
            address = instance.directory.get(txn.home_site)
            if address is None:
                return WebResponse.failure(f"unknown home site {txn.home_site!r}")
            instance.monitor.txn_submitted(txn)
            try:
                reply = yield self.runner.endpoint.request(
                    address,
                    MessageType.TXN_SUBMIT,
                    {"txn_spec": txn},
                    timeout=request.args.get("timeout", 600.0),
                    txn_id=txn.txn_id,
                )
            except (RpcTimeout, NetworkError) as failure:
                return WebResponse.failure(f"no TXN_RESULT: {failure}")
            return WebResponse.success((reply.payload or {}).get("outcome"))
        if request.action == "start_workload":
            spec = request.args["spec"]
            if isinstance(spec, dict):
                spec = dict(spec)
                if spec.get("mix"):
                    from repro.workload.spec import MixClass

                    spec["mix"] = [
                        entry if isinstance(entry, MixClass) else MixClass(**entry)
                        for entry in spec["mix"]
                    ]
                spec = WorkloadSpec(**spec)
            workload_id = next(_workload_counter)
            generator = WorkloadGenerator(
                instance.sim,
                instance.network,
                instance.directory,
                instance.catalog,
                spec,
                instance.streams.get(f"web-workload-{workload_id}"),
                monitor=instance.monitor,
                name=f"wlg-web{workload_id}",
            )
            process = generator.run()
            self.workloads[workload_id] = (generator, process)
            return WebResponse.success({"workload_id": workload_id})
        if request.action == "workload_status":
            entry = self.workloads.get(request.args.get("workload_id"))
            if entry is None:
                return WebResponse.failure("unknown workload id")
            generator, process = entry
            return WebResponse.success(
                {
                    "done": process.triggered,
                    "outcomes": len(generator.outcomes),
                    "committed": sum(
                        1 for o in generator.outcomes if o.status == "COMMITTED"
                    ),
                }
            )
        return WebResponse.failure(f"unknown WLGlet action {request.action!r}")


class PMlet(Servlet):
    """Progress-monitor access: merges global and per-site statistics."""

    name = "pmlet"

    def __init__(self, tier: "RainbowWebTier"):
        self.tier = tier

    def handle(self, request: WebRequest):
        self.tier.require_role(request.token)
        if request.action == "statistics":
            stats = asdict(self.tier.instance.monitor.output_statistics())
            return WebResponse.success(stats)
        if request.action == "site_statistics":
            # Work "closely with NSlet and Sitelet": fan out to every host.
            merged = {}
            for site, host in sorted(self.tier.site_hosts.items()):
                response = yield from self.runner.forward(
                    host, "sitelet", "site_stats", {"site": site}, request.token
                )
                merged[site] = response.data if response.ok else {"error": response.error}
            return WebResponse.success(merged)
        if request.action == "timeseries":
            return WebResponse.success(dict(self.tier.instance.monitor.series))
        return WebResponse.failure(f"unknown PMlet action {request.action!r}")


class RainbowWebTier:
    """The two-level servlet arrangement over one Rainbow instance."""

    def __init__(
        self,
        instance: RainbowInstance,
        home_host: str = "rainbow-home",
        users: Optional[dict[str, tuple[str, str]]] = None,
    ):
        self.instance = instance
        self.home_host = home_host
        self.ns_host = instance.nameserver.host
        self.users = dict(users or DEFAULT_USERS)
        self.sessions: dict[str, str] = {}  # token -> role
        self.site_hosts = {name: site.host for name, site in instance.sites.items()}

        hosts = {home_host, self.ns_host, *self.site_hosts.values()}
        self.runners: dict[str, ServletRunner] = {
            host: ServletRunner(instance.sim, instance.network, host)
            for host in sorted(hosts)
        }
        # Web servers are fault-injection targets too (the paper's warning
        # that the home host's ServletRunner must stay up is testable).
        for runner in self.runners.values():
            instance.injector.register(runner)

        home = self.runners[home_host]
        home.install(AuthServlet(self))
        home.install(NSRunnerlet(self))
        home.install(SiteRunnerlet(self))
        home.install(WLGlet(self))
        home.install(PMlet(self))
        self.runners[self.ns_host].install(NSlet(self))
        for host in sorted(set(self.site_hosts.values())):
            self.runners[host].install(Sitelet(self, host))

    @property
    def home_address(self) -> str:
        """The only address the GUI applet is allowed to contact."""
        return f"{self.home_host}/{RUNNER_NAME}"

    # -- authorization ------------------------------------------------------------
    def role_of(self, token: Optional[str]) -> Optional[str]:
        return self.sessions.get(token or "")

    def require_role(self, token: Optional[str], role: Optional[str] = None) -> str:
        """Validate the session token (and the required role, if any)."""
        actual = self.role_of(token)
        if actual is None:
            raise AuthorizationError("not logged in")
        if role is not None and actual != role:
            raise AuthorizationError(f"requires role {role!r}, session is {actual!r}")
        return actual

    # -- reporting -----------------------------------------------------------------
    def placement_table(self) -> list[tuple[str, list[str]]]:
        """(host, servlets) rows — the physical mapping of Figure 2."""
        return [
            (host, sorted(runner.servlets))
            for host, runner in sorted(self.runners.items())
        ]
