"""The web middle tier: ServletRunners and the six Rainbow servlets.

"The middle tier consists of a number of servlets, i.e. server side threads
living in the ServletRunner … The servlets are: NSRunnerlet, NSlet,
SiteRunnerlet, Sitelet, WLGlet, and PMlet."

Placement rules reproduced from the paper:

* every host in the Rainbow domain runs a :class:`ServletRunner`;
* the *home host* must run ``NSRunnerlet``, ``SiteRunnerlet``, ``WLGlet``
  and ``PMlet`` — they are the GUI applet's jump-off points, because the
  applet "can only communicate with the host it is downloaded from";
* ``NSlet`` lives only on the name server's host; one ``Sitelet`` per host
  that has Rainbow sites (co-located sites share it).

Level-one servlets forward to level-two servlets over the simulated
network, so management traffic is measured like any other traffic.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import NetworkError, RpcTimeout, WebTierError
from repro.net.message import Message, MessageType
from repro.net.network import Network
from repro.sim.kernel import Interrupt, Simulator
from repro.web.requests import WebRequest, WebResponse

__all__ = ["Servlet", "ServletRunner"]

RUNNER_NAME = "servletrunner"


class Servlet:
    """Base class: a named server-side handler living in a ServletRunner."""

    name = "servlet"

    def attach(self, runner: "ServletRunner") -> None:
        """Called when the servlet is installed into its runner."""
        self.runner = runner

    def handle(self, request: WebRequest) -> Generator:
        """Process ``request``; generator returning a :class:`WebResponse`."""
        raise NotImplementedError
        yield  # pragma: no cover - generator marker


class ServletRunner:
    """The lightweight servlet-enabling web server, one per domain host."""

    def __init__(self, sim: Simulator, network: Network, host: str):
        self.sim = sim
        self.network = network
        self.host = host
        self.name = f"runner-{host}"  # fault-injector target id
        self.endpoint = network.endpoint(host, RUNNER_NAME)
        self.servlets: dict[str, Servlet] = {}
        self.requests_served = 0
        self.up = True
        self._server = sim.process(self._serve(), name=f"runner:{host}")

    # -- lifecycle -----------------------------------------------------------
    # "It is essential that the Rainbow home host must have the
    # ServletRunner running at all times" — precisely because this can
    # happen: a crashed runner makes its host's management plane (and, on
    # the home host, the whole GUI) unreachable until restart.
    def crash(self) -> None:
        """Stop the web server; in-flight and queued requests are lost."""
        if not self.up:
            return
        self.up = False
        self.endpoint.set_down()
        if self._server.is_alive:
            self._server.interrupt("runner crash")

    def recover(self) -> None:
        """Restart the web server (servlet registrations survive)."""
        if self.up:
            return
        self.up = True
        self.endpoint.set_up()
        self._server = self.sim.process(self._serve(), name=f"runner:{self.host}")

    @property
    def address(self) -> str:
        """The runner's network address (``host/servletrunner``)."""
        return self.endpoint.address

    def install(self, servlet: Servlet) -> None:
        """Install a servlet; names are unique per runner."""
        if servlet.name in self.servlets:
            raise WebTierError(f"servlet {servlet.name!r} already on host {self.host}")
        servlet.attach(self)
        self.servlets[servlet.name] = servlet

    def has(self, name: str) -> bool:
        return name in self.servlets

    # -- serving ---------------------------------------------------------------
    def _serve(self):
        while self.up:
            try:
                msg = yield self.endpoint.receive()
            except (NetworkError, Interrupt):
                return
            if msg.mtype != MessageType.WEB_REQUEST or msg.reply_to is not None:
                continue
            self.requests_served += 1
            self.sim.process(self._dispatch(msg), name=f"runner:{self.host}:req")

    def _dispatch(self, msg: Message):
        request = WebRequest.from_payload(msg.payload or {})
        servlet = self.servlets.get(request.servlet)
        if servlet is None:
            response = WebResponse.failure(
                f"no servlet {request.servlet!r} on host {self.host}"
            )
        else:
            try:
                response = yield from servlet.handle(request)
            except WebTierError as error:
                response = WebResponse.failure(str(error))
        self.endpoint.reply(msg, MessageType.WEB_REPLY, response.to_payload())

    # -- forwarding (level 1 -> level 2) ---------------------------------------------
    def forward(
        self,
        host: str,
        servlet: str,
        action: str,
        args: dict,
        token: Optional[str] = None,
        timeout: float = 60.0,
    ):
        """Relay a request to the ServletRunner on another host (generator)."""
        address = f"{host}/{RUNNER_NAME}"
        payload = WebRequest(servlet=servlet, action=action, args=args, token=token)
        try:
            reply = yield self.endpoint.request(
                address, MessageType.WEB_REQUEST, payload.to_payload(), timeout=timeout
            )
        except (RpcTimeout, NetworkError) as failure:
            return WebResponse.failure(f"forward to {address} failed: {failure}")
        return WebResponse.from_payload(reply.payload)
