"""Web middle tier: ServletRunners, the six servlets, request envelopes."""

from repro.web.requests import WebRequest, WebResponse
from repro.web.servlets import Servlet, ServletRunner
from repro.web.tier import DEFAULT_USERS, RainbowWebTier

__all__ = [
    "DEFAULT_USERS",
    "RainbowWebTier",
    "Servlet",
    "ServletRunner",
    "WebRequest",
    "WebResponse",
]
