"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart`` — run the default session and print the Figure-5 panel.
* ``experiment <id>`` — regenerate one experiment table (EXPERIMENTS.md
  ids: qcmsg, avail, ccp, scale, acp, lb, abl, matrix, msgecon) and print
  it;
  ``--csv FILE`` additionally exports it, ``--json`` prints JSON instead of
  text, and ``-j N`` fans the sweep's independent sessions out across N
  worker processes (byte-identical output for every N).
* ``classroom [name]`` — run all (or one) lab assignment and print the
  reports.
* ``chaos`` — run the chaos suite: one randomized nemesis session per seed,
  the safety-invariant catalog over each final state, and delta-debugged
  minimal fault plans for any failures; ``--seeds N`` and ``-j N`` control
  scale (byte-identical report for every job count), ``--ccp NOCC`` points
  the suite at a deliberately broken classroom protocol.
* ``panels`` — print the configuration panels of the default instance.
* ``list`` — list experiments and assignments.
* ``lint [paths]`` — run rainbow-lint (the AST-based determinism &
  protocol-conformance analyzer) over ``paths`` (default ``src``);
  non-zero exit when findings remain.  ``--select``/``--ignore`` filter
  rules, ``--format json`` emits machine-readable output, and
  ``--list-rules`` prints the rule catalog.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Optional, Sequence

from repro.experiments import (
    ablation,
    acp_blocking,
    availability,
    ccp_contention,
    load_balance,
    message_economy,
    protocol_matrix,
    quorum_traffic,
    scalability,
    session,
)

EXPERIMENTS: dict[str, Callable] = {
    "qcmsg": quorum_traffic.run,
    "avail": availability.run,
    "ccp": ccp_contention.run,
    "scale": scalability.run,
    "acp": acp_blocking.run,
    "lb": load_balance.run,
    "abl": ablation.run,
    "matrix": protocol_matrix.run,
    "msgecon": message_economy.run,
}


def _cmd_quickstart(args: argparse.Namespace) -> int:
    result, panel, instance = session.run(
        n_txns=args.transactions,
        sites_per_host=args.sites_per_host,
        batch_site_ops=args.batch_site_ops,
        piggyback_prepare=args.piggyback_prepare,
        latency_aware_routing=args.latency_aware_routing,
    )
    print(panel)
    print(f"\nserializable: {result.serializable}")
    if args.chart:
        from repro.gui.charts import series_chart

        print()
        print(series_chart(instance.monitor.series, "committed",
                           title="Committed transactions over time"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    run = EXPERIMENTS.get(args.id)
    if run is None:
        print(f"unknown experiment {args.id!r}; try: {', '.join(sorted(EXPERIMENTS))}")
        return 2
    kwargs = {}
    if "n_jobs" in inspect.signature(run).parameters:
        kwargs["n_jobs"] = args.jobs
    elif args.jobs != 1:
        print(f"note: experiment {args.id!r} is not a sweep; running serially",
              file=sys.stderr)
    table = run(**kwargs)
    if args.json:
        print(table.to_json())
    else:
        print(table.to_text())
    if args.csv:
        from repro.monitor.export import table_to_csv

        table_to_csv(table, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.monitor.report import session_report
    from repro.monitor.tracing import ExecutionTracer
    from repro.workload.spec import WorkloadSpec

    from repro.experiments.common import build_instance

    instance = build_instance(4, 64, 3, seed=args.seed, sample_interval=25.0)
    instance.start()
    tracer = ExecutionTracer(instance.sim)
    tracer.attach_all(instance)
    result = instance.run_workload(
        WorkloadSpec(
            n_transactions=args.transactions,
            arrival="poisson",
            arrival_rate=0.5,
            min_ops=3,
            max_ops=6,
            read_fraction=0.7,
        )
    )
    report = session_report(instance, result, tracer=tracer)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_classroom(args: argparse.Namespace) -> int:
    from repro.classroom import all_assignments

    failures = 0
    for factory in all_assignments():
        if args.name and factory.__name__ != f"assignment_{args.name.replace('-', '_')}":
            continue
        report = factory()
        print(report.render())
        print()
        if not report.passed:
            failures += 1
    return 1 if failures else 0


def _cmd_panels(_args: argparse.Namespace) -> int:
    from repro.core.config import RainbowConfig
    from repro.core.instance import RainbowInstance
    from repro.gui.panels import (
        render_functional_architecture,
        render_protocol_panel,
        render_replication_panel,
    )

    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3)
    instance = RainbowInstance(config)
    print(render_functional_architecture())
    print()
    print(render_protocol_panel(config.protocols))
    print()
    print(render_replication_panel(instance.catalog))
    return 0


def _parse_rule_ids(raw: Optional[str]) -> Optional[list[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import render_json, render_text, rule_catalog, run_lint
    from repro.analysis.core import AnalysisError

    if args.list_rules:
        for rule_id, name, severity, description in rule_catalog():
            print(f"{rule_id}  {name} [{severity}]")
            print(f"       {description}")
        return 0
    paths = args.paths or ["src"]
    try:
        report = run_lint(
            paths,
            select=_parse_rule_ids(args.select),
            ignore=_parse_rule_ids(args.ignore),
        )
    except (AnalysisError, FileNotFoundError) as err:
        print(f"lint: {err}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import render_suite_report, run_chaos_suite

    result = run_chaos_suite(
        list(range(1, args.seeds + 1)),
        n_jobs=args.jobs,
        shrink=not args.no_shrink,
        n_sites=args.sites,
        n_transactions=args.transactions,
        rcp=args.rcp,
        ccp=args.ccp,
        acp=args.acp,
        intensity=args.intensity,
        sites_per_host=args.sites_per_host,
        batch_site_ops=args.batch_site_ops,
        piggyback_prepare=args.piggyback_prepare,
        latency_aware_routing=args.latency_aware_routing,
    )
    print(render_suite_report(result))
    return 0 if result.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.monitor.bench import write_bench_files

    for path in write_bench_files(args.out_dir):
        print(f"wrote {path}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.classroom import all_assignments

    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("assignments:")
    for factory in all_assignments():
        print(f"  {factory.__name__.removeprefix('assignment_').replace('_', '-')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rainbow distributed database (VLDB 2000) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    quickstart = commands.add_parser("quickstart", help="run the default session")
    quickstart.add_argument("--transactions", type=int, default=200)
    quickstart.add_argument("--chart", action="store_true",
                            help="also print the commit time-series chart")
    quickstart.add_argument("--sites-per-host", type=int, default=1, metavar="N",
                            help="co-locate N sites per host (default: 1)")
    quickstart.add_argument("--batch-site-ops", action="store_true",
                            help="enable per-host operation batching (docs/PERF.md)")
    quickstart.add_argument("--piggyback-prepare", action="store_true",
                            help="fold the 2PC VOTE_REQ into the final access")
    quickstart.add_argument("--latency-aware-routing", action="store_true",
                            help="rank copy holders by expected network delay")
    quickstart.set_defaults(fn=_cmd_quickstart)

    experiment = commands.add_parser("experiment", help="regenerate one experiment")
    experiment.add_argument("id", help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    experiment.add_argument("--csv", default=None, help="export the table as CSV")
    experiment.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep experiments (0 or -1 = all cores); "
        "results are identical for every N",
    )
    experiment.add_argument(
        "--json", action="store_true",
        help="print the table as JSON instead of fixed-width text",
    )
    experiment.set_defaults(fn=_cmd_experiment)

    report = commands.add_parser("report", help="run a session, emit a markdown report")
    report.add_argument("--transactions", type=int, default=100)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", default=None, help="write the report to a file")
    report.set_defaults(fn=_cmd_report)

    classroom = commands.add_parser("classroom", help="run lab assignments")
    classroom.add_argument("name", nargs="?", default=None)
    classroom.set_defaults(fn=_cmd_classroom)

    panels = commands.add_parser("panels", help="print the configuration panels")
    panels.set_defaults(fn=_cmd_panels)

    chaos = commands.add_parser(
        "chaos",
        help="run the chaos suite: seeded nemesis + safety invariants + shrinking",
    )
    chaos.add_argument("--seeds", type=int, default=25, metavar="N",
                       help="run seeds 1..N (default: 25)")
    chaos.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the cases (0 or -1 = all cores); "
        "the report is byte-identical for every N",
    )
    chaos.add_argument("--transactions", type=int, default=40,
                       help="transactions per case (default: 40)")
    chaos.add_argument("--sites", type=int, default=4,
                       help="sites per case (default: 4)")
    chaos.add_argument("--rcp", default="QC", help="replication protocol (default: QC)")
    chaos.add_argument("--ccp", default="2PL",
                       help="concurrency protocol; classroom names like NOCC work too")
    chaos.add_argument("--acp", default="2PC", help="commit protocol (default: 2PC)")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="fault episodes per site (default: 1.0)")
    chaos.add_argument("--sites-per-host", type=int, default=1, metavar="N",
                       help="co-locate N sites per host (default: 1)")
    chaos.add_argument("--batch-site-ops", action="store_true",
                       help="enable per-host operation batching (docs/PERF.md)")
    chaos.add_argument("--piggyback-prepare", action="store_true",
                       help="fold the 2PC VOTE_REQ into the final access")
    chaos.add_argument("--latency-aware-routing", action="store_true",
                       help="rank copy holders by expected network delay")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip delta-debugging the failing seeds")
    chaos.set_defaults(fn=_cmd_chaos)

    bench = commands.add_parser(
        "bench",
        help="write BENCH_kernel.json / BENCH_session.json performance baselines",
    )
    bench.add_argument("--out-dir", default=".", metavar="DIR",
                       help="directory for the JSON artifacts (default: .)")
    bench.set_defaults(fn=_cmd_bench)

    listing = commands.add_parser("list", help="list experiments and assignments")
    listing.set_defaults(fn=_cmd_list)

    lint = commands.add_parser(
        "lint", help="run rainbow-lint (determinism & protocol-conformance analyzer)"
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="IDS",
                      help="comma-separated rule ids to run (e.g. RB101,RB102)")
    lint.add_argument("--ignore", default=None, metavar="IDS",
                      help="comma-separated rule ids to skip")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format (default: text)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; suppress
        # the stderr traceback the interpreter would otherwise print while
        # flushing stdout at shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
