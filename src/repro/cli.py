"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart`` — run the default session and print the Figure-5 panel.
* ``experiment <id>`` — regenerate one experiment table (EXPERIMENTS.md
  ids: qcmsg, avail, ccp, scale, acp, lb, abl, matrix, msgecon) and print
  it;
  ``--csv FILE`` additionally exports it, ``--json`` prints JSON instead of
  text, and ``-j N`` fans the sweep's independent sessions out across N
  worker processes (byte-identical output for every N).
* ``classroom [name]`` — run all (or one) lab assignment and print the
  reports.
* ``chaos`` — run the chaos suite: one randomized nemesis session per seed,
  the safety-invariant catalog over each final state, and delta-debugged
  minimal fault plans for any failures; ``--seeds N`` and ``-j N`` control
  scale (byte-identical report for every job count), ``--ccp NOCC`` points
  the suite at a deliberately broken classroom protocol.
* ``trace`` — run a traced session and print the causal-span summary:
  per-phase latency breakdown, orphan count, and the critical path of the
  slowest committed transaction; ``--txn N`` prints one transaction's span
  tree instead, ``--out FILE`` exports Chrome trace-event JSON (load it at
  https://ui.perfetto.dev), ``--csv FILE`` a flat per-span CSV.  Output is
  fully deterministic (same seed → same bytes).
* ``panels`` — print the configuration panels of the default instance.
* ``list`` — list experiments and assignments.
* ``lint [paths]`` — run rainbow-lint (the AST-based determinism &
  protocol-conformance analyzer) over ``paths`` (default ``src``);
  non-zero exit when findings remain.  ``--select``/``--ignore`` filter
  rules, ``--format json`` emits machine-readable output, and
  ``--list-rules`` prints the rule catalog.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Optional, Sequence

from repro.experiments import (
    ablation,
    acp_blocking,
    availability,
    ccp_contention,
    load_balance,
    message_economy,
    protocol_matrix,
    quorum_traffic,
    scalability,
    session,
)

EXPERIMENTS: dict[str, Callable] = {
    "qcmsg": quorum_traffic.run,
    "avail": availability.run,
    "ccp": ccp_contention.run,
    "scale": scalability.run,
    "acp": acp_blocking.run,
    "lb": load_balance.run,
    "abl": ablation.run,
    "matrix": protocol_matrix.run,
    "msgecon": message_economy.run,
}


def _cmd_quickstart(args: argparse.Namespace) -> int:
    result, panel, instance = session.run(
        n_txns=args.transactions,
        sites_per_host=args.sites_per_host,
        batch_site_ops=args.batch_site_ops,
        piggyback_prepare=args.piggyback_prepare,
        latency_aware_routing=args.latency_aware_routing,
    )
    print(panel)
    print(f"\nserializable: {result.serializable}")
    if args.chart:
        from repro.gui.charts import series_chart

        print()
        print(series_chart(instance.monitor.series, "committed",
                           title="Committed transactions over time"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    run = EXPERIMENTS.get(args.id)
    if run is None:
        print(f"unknown experiment {args.id!r}; try: {', '.join(sorted(EXPERIMENTS))}")
        return 2
    jobs = args.jobs
    if args.trace and jobs != 1:
        # Worker processes would each collect their own tracer registry;
        # run the sweep serially so every session's spans land in ours.
        print("note: --trace forces -j 1 (spans are collected in-process)",
              file=sys.stderr)
        jobs = 1
    kwargs = {}
    if "n_jobs" in inspect.signature(run).parameters:
        kwargs["n_jobs"] = jobs
    elif jobs != 1:
        print(f"note: experiment {args.id!r} is not a sweep; running serially",
              file=sys.stderr)
    if args.trace:
        from pathlib import Path

        from repro import obs

        obs.enable_global_tracing()
        try:
            table = run(**kwargs)
            tracers = obs.collected_tracers()
            Path(args.trace).write_text(obs.tracers_to_chrome_json(tracers))
        finally:
            obs.disable_global_tracing()
        print(f"wrote {args.trace} ({len(tracers)} traced sessions)",
              file=sys.stderr)
    else:
        table = run(**kwargs)
    if args.json:
        print(table.to_json())
    else:
        print(table.to_text())
    if args.csv:
        from repro.monitor.export import table_to_csv

        table_to_csv(table, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.monitor.report import session_report
    from repro.monitor.tracing import ExecutionTracer
    from repro.workload.spec import WorkloadSpec

    from repro.experiments.common import build_instance

    instance = build_instance(4, 64, 3, seed=args.seed, sample_interval=25.0)
    instance.start()
    tracer = ExecutionTracer(instance.sim)
    tracer.attach_all(instance)
    result = instance.run_workload(
        WorkloadSpec(
            n_transactions=args.transactions,
            arrival="poisson",
            arrival_rate=0.5,
            min_ops=3,
            max_ops=6,
            read_fraction=0.7,
        )
    )
    report = session_report(instance, result, tracer=tracer)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.experiments.common import build_instance
    from repro.workload.spec import WorkloadSpec

    instance = build_instance(4, 64, 3, seed=args.seed, tracing=True)
    result = instance.run_workload(
        WorkloadSpec(
            n_transactions=args.transactions,
            arrival="poisson",
            arrival_rate=0.5,
            min_ops=3,
            max_ops=6,
            read_fraction=0.7,
        )
    )
    tracer = instance.span_tracer
    stats = result.statistics
    records = {record.txn_id: record for record in instance.monitor.records}

    if args.txn is not None:
        if tracer.root(args.txn) is None:
            traced = ", ".join(str(txn_id) for txn_id in tracer.txn_ids())
            print(f"no trace for transaction {args.txn}; traced ids: {traced}",
                  file=sys.stderr)
            return 2
        print("\n".join(obs.render_span_tree(tracer, args.txn)))
        breakdown = obs.txn_phase_breakdown(tracer, args.txn)
        print()
        print("phase breakdown (sums to the root span):")
        for phase in (*obs.PHASES, "other", "total"):
            print(f"  {phase:<12} {breakdown[phase]:.3f}")
        record = records.get(args.txn)
        if record is not None and record.response_time is not None:
            print(f"  response time {record.response_time:.3f} (OutputStatistics)")
    else:
        print(f"traced session: seed {args.seed}, {stats.submitted} submitted, "
              f"{stats.committed} committed, {stats.aborted} aborted")
        print(f"spans: {len(tracer.spans)} over {len(tracer.txn_ids())} transactions; "
              f"orphaned transactions: {stats.orphaned_txns}")
        if stats.phase_breakdown:
            print()
            print("per-phase latency (mean / max per txn):")
            for phase in obs.PHASES:
                entry = stats.phase_breakdown.get(phase)
                if entry is None:
                    continue
                print(f"  {phase:<12} {entry['mean_per_txn']:.3f} / "
                      f"{entry['max_per_txn']:.3f}")
        committed = [
            record for record in instance.monitor.records
            if record.status == "COMMITTED" and record.response_time is not None
            and tracer.root(record.txn_id) is not None
        ]
        if committed:
            slowest = max(committed, key=lambda r: (r.response_time, r.txn_id))
            print()
            print(f"critical path of slowest committed txn {slowest.txn_id} "
                  f"(response {slowest.response_time:.3f}):")
            for span, self_time in obs.critical_path(tracer, slowest.txn_id):
                print(f"  {span.name:<14} @{span.site:<8} self {self_time:.3f}")

    if args.out:
        from repro.monitor.export import trace_to_chrome_json

        trace_to_chrome_json(tracer.spans, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.csv:
        from repro.monitor.export import trace_to_csv

        trace_to_csv(tracer.spans, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _cmd_classroom(args: argparse.Namespace) -> int:
    from repro.classroom import all_assignments

    failures = 0
    for factory in all_assignments():
        if args.name and factory.__name__ != f"assignment_{args.name.replace('-', '_')}":
            continue
        report = factory()
        print(report.render())
        print()
        if not report.passed:
            failures += 1
    return 1 if failures else 0


def _cmd_panels(_args: argparse.Namespace) -> int:
    from repro.core.config import RainbowConfig
    from repro.core.instance import RainbowInstance
    from repro.gui.panels import (
        render_functional_architecture,
        render_protocol_panel,
        render_replication_panel,
    )

    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3)
    instance = RainbowInstance(config)
    print(render_functional_architecture())
    print()
    print(render_protocol_panel(config.protocols))
    print()
    print(render_replication_panel(instance.catalog))
    return 0


def _parse_rule_ids(raw: Optional[str]) -> Optional[list[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import render_json, render_text, rule_catalog, run_lint
    from repro.analysis.core import AnalysisError

    if args.list_rules:
        for rule_id, name, severity, description in rule_catalog():
            print(f"{rule_id}  {name} [{severity}]")
            print(f"       {description}")
        return 0
    paths = args.paths or ["src"]
    try:
        report = run_lint(
            paths,
            select=_parse_rule_ids(args.select),
            ignore=_parse_rule_ids(args.ignore),
        )
    except (AnalysisError, FileNotFoundError) as err:
        print(f"lint: {err}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import render_suite_report, run_chaos_suite

    result = run_chaos_suite(
        list(range(1, args.seeds + 1)),
        n_jobs=args.jobs,
        shrink=not args.no_shrink,
        n_sites=args.sites,
        n_transactions=args.transactions,
        rcp=args.rcp,
        ccp=args.ccp,
        acp=args.acp,
        intensity=args.intensity,
        sites_per_host=args.sites_per_host,
        batch_site_ops=args.batch_site_ops,
        piggyback_prepare=args.piggyback_prepare,
        latency_aware_routing=args.latency_aware_routing,
        trace=args.trace,
    )
    print(render_suite_report(result))
    if args.trace:
        from pathlib import Path

        out_dir = Path(args.trace_dir)
        for case in result.failing():
            if not case.trace_json:
                continue
            out_dir.mkdir(parents=True, exist_ok=True)
            target = out_dir / f"chaos-trace-seed{case.seed}.json"
            target.write_text(case.trace_json)
            print(f"wrote {target}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.monitor.bench import write_bench_files

    for path in write_bench_files(args.out_dir):
        print(f"wrote {path}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.classroom import all_assignments

    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("assignments:")
    for factory in all_assignments():
        print(f"  {factory.__name__.removeprefix('assignment_').replace('_', '-')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rainbow distributed database (VLDB 2000) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    quickstart = commands.add_parser("quickstart", help="run the default session")
    quickstart.add_argument("--transactions", type=int, default=200)
    quickstart.add_argument("--chart", action="store_true",
                            help="also print the commit time-series chart")
    quickstart.add_argument("--sites-per-host", type=int, default=1, metavar="N",
                            help="co-locate N sites per host (default: 1)")
    quickstart.add_argument("--batch-site-ops", action="store_true",
                            help="enable per-host operation batching (docs/PERF.md)")
    quickstart.add_argument("--piggyback-prepare", action="store_true",
                            help="fold the 2PC VOTE_REQ into the final access")
    quickstart.add_argument("--latency-aware-routing", action="store_true",
                            help="rank copy holders by expected network delay")
    quickstart.set_defaults(fn=_cmd_quickstart)

    experiment = commands.add_parser("experiment", help="regenerate one experiment")
    experiment.add_argument("id", help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    experiment.add_argument("--csv", default=None, help="export the table as CSV")
    experiment.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep experiments (0 or -1 = all cores); "
        "results are identical for every N",
    )
    experiment.add_argument(
        "--json", action="store_true",
        help="print the table as JSON instead of fixed-width text",
    )
    experiment.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace every session of the experiment and write one Chrome "
        "trace-event JSON (forces -j 1)",
    )
    experiment.set_defaults(fn=_cmd_experiment)

    report = commands.add_parser("report", help="run a session, emit a markdown report")
    report.add_argument("--transactions", type=int, default=100)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", default=None, help="write the report to a file")
    report.set_defaults(fn=_cmd_report)

    classroom = commands.add_parser("classroom", help="run lab assignments")
    classroom.add_argument("name", nargs="?", default=None)
    classroom.set_defaults(fn=_cmd_classroom)

    trace = commands.add_parser(
        "trace",
        help="run a traced session: phase breakdown, critical path, Perfetto export",
    )
    trace.add_argument("--transactions", type=int, default=60)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--txn", type=int, default=None, metavar="N",
                       help="print one transaction's span tree and exact breakdown")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write Chrome trace-event JSON (Perfetto-loadable)")
    trace.add_argument("--csv", default=None, metavar="FILE",
                       help="write a flat per-span CSV")
    trace.set_defaults(fn=_cmd_trace)

    panels = commands.add_parser("panels", help="print the configuration panels")
    panels.set_defaults(fn=_cmd_panels)

    chaos = commands.add_parser(
        "chaos",
        help="run the chaos suite: seeded nemesis + safety invariants + shrinking",
    )
    chaos.add_argument("--seeds", type=int, default=25, metavar="N",
                       help="run seeds 1..N (default: 25)")
    chaos.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the cases (0 or -1 = all cores); "
        "the report is byte-identical for every N",
    )
    chaos.add_argument("--transactions", type=int, default=40,
                       help="transactions per case (default: 40)")
    chaos.add_argument("--sites", type=int, default=4,
                       help="sites per case (default: 4)")
    chaos.add_argument("--rcp", default="QC", help="replication protocol (default: QC)")
    chaos.add_argument("--ccp", default="2PL",
                       help="concurrency protocol; classroom names like NOCC work too")
    chaos.add_argument("--acp", default="2PC", help="commit protocol (default: 2PC)")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="fault episodes per site (default: 1.0)")
    chaos.add_argument("--sites-per-host", type=int, default=1, metavar="N",
                       help="co-locate N sites per host (default: 1)")
    chaos.add_argument("--batch-site-ops", action="store_true",
                       help="enable per-host operation batching (docs/PERF.md)")
    chaos.add_argument("--piggyback-prepare", action="store_true",
                       help="fold the 2PC VOTE_REQ into the final access")
    chaos.add_argument("--latency-aware-routing", action="store_true",
                       help="rank copy holders by expected network delay")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip delta-debugging the failing seeds")
    chaos.add_argument("--trace", action="store_true",
                       help="span-trace every case; failing seeds ship a Chrome "
                       "trace-event JSON next to the shrunk fault plan")
    chaos.add_argument("--trace-dir", default="chaos-traces", metavar="DIR",
                       help="directory for per-seed trace JSONs (default: "
                       "chaos-traces)")
    chaos.set_defaults(fn=_cmd_chaos)

    bench = commands.add_parser(
        "bench",
        help="write BENCH_kernel.json / BENCH_session.json performance baselines",
    )
    bench.add_argument("--out-dir", default=".", metavar="DIR",
                       help="directory for the JSON artifacts (default: .)")
    bench.set_defaults(fn=_cmd_bench)

    listing = commands.add_parser("list", help="list experiments and assignments")
    listing.set_defaults(fn=_cmd_list)

    lint = commands.add_parser(
        "lint", help="run rainbow-lint (determinism & protocol-conformance analyzer)"
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="IDS",
                      help="comma-separated rule ids to run (e.g. RB101,RB102)")
    lint.add_argument("--ignore", default=None, metavar="IDS",
                      help="comma-separated rule ids to skip")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format (default: text)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; suppress
        # the stderr traceback the interpreter would otherwise print while
        # flushing stdout at shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
