"""Per-site local storage: versioned committed copies of database items.

Each Rainbow site stores the *local copies* of the items the catalog places
on it.  A copy carries a monotonically increasing ``version`` number — the
currency token quorum consensus uses to pick the most recent value in a read
quorum and to stamp writes (new version = max version in the write quorum
plus one).

The store only ever holds *committed* state.  Uncommitted writes live in
per-transaction workspaces owned by the concurrency controller and reach the
store through :meth:`LocalStore.apply` at commit time, after the WAL has
made them durable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import CatalogError

__all__ = ["Copy", "LocalStore"]


@dataclass
class Copy:
    """One committed local copy of an item."""

    item: str
    value: Any
    version: int = 0

    def as_tuple(self) -> tuple[Any, int]:
        return (self.value, self.version)


@dataclass
class WriteRecord:
    """An applied write, kept for audit/history checking."""

    item: str
    value: Any
    version: int
    txn_id: int
    at: float


class LocalStore:
    """The committed key/value/version store of one site."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._copies: dict[str, Copy] = {}
        self.audit_log: list[WriteRecord] = []
        self.reads_served = 0
        self.writes_applied = 0

    # -- schema ------------------------------------------------------------
    def create_copy(self, item: str, initial_value: Any = 0) -> Copy:
        """Install the local copy of ``item`` (version 0)."""
        if item in self._copies:
            raise CatalogError(f"site {self.site_name}: copy of {item!r} already exists")
        copy = Copy(item=item, value=initial_value, version=0)
        self._copies[item] = copy
        return copy

    def has_copy(self, item: str) -> bool:
        """True if this site holds a copy of ``item``."""
        return item in self._copies

    def items(self) -> list[str]:
        """Item names stored here, sorted."""
        return sorted(self._copies)

    # -- access ------------------------------------------------------------
    def read(self, item: str) -> tuple[Any, int]:
        """Return ``(value, version)`` of the committed copy."""
        copy = self._get(item)
        self.reads_served += 1
        return copy.as_tuple()

    def version(self, item: str) -> int:
        """Current committed version of the copy."""
        return self._get(item).version

    def apply(self, item: str, value: Any, version: int, txn_id: int, at: float) -> None:
        """Install a committed write.

        Versions never move backwards: a write carrying a version lower than
        the committed one is ignored (Thomas-write-rule flavour; this only
        arises for QC writes racing with recovery, and dropping the stale
        write is the correct outcome).
        """
        copy = self._get(item)
        if version < copy.version:
            return
        copy.value = value
        copy.version = version
        self.writes_applied += 1
        self.audit_log.append(WriteRecord(item, value, version, txn_id, at))

    def reset_value(self, item: str, value: Any) -> None:
        """Administratively set a copy's value (pre-session bootstrap only).

        Keeps version 0 so the first transactional write still stamps
        version 1; not for use while transactions are running.
        """
        copy = self._get(item)
        copy.value = value
        copy.version = 0

    def snapshot(self) -> dict[str, tuple[Any, int]]:
        """Copy of the committed state (for panels, tests, recovery checks)."""
        return {name: copy.as_tuple() for name, copy in self._copies.items()}

    def load_snapshot(self, state: dict[str, tuple[Any, int]]) -> None:
        """Bulk-restore committed state (recovery from a checkpoint)."""
        for name, (value, version) in state.items():
            if name not in self._copies:
                self.create_copy(name)
            copy = self._copies[name]
            copy.value = value
            copy.version = version

    def _get(self, item: str) -> Copy:
        try:
            return self._copies[item]
        except KeyError:
            raise CatalogError(
                f"site {self.site_name} holds no copy of {item!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._copies)
