"""Distributed deadlock detection: Chandy–Misra–Haas edge chasing.

The lock manager's wait-for graph only sees *local* cycles; a transaction
blocked at site A by a transaction that is itself blocked at site B forms a
distributed deadlock no single site can observe.  Rainbow's stock answer is
the lock-wait timeout; this module adds the classic alternative as a term-
project-grade extension: probe-based edge chasing.

Protocol (per Chandy, Misra & Haas 1983, adapted to Rainbow's topology):

1. When transaction *T* blocks at a site, the site sends a ``PROBE_HOME``
   for every blocker *B* to *B*'s home site (every blocker has visited this
   site, so its home address is known from its operation messages).
2. *B*'s home site consults the coordinator state: if *B* is currently
   blocked at some site, the probe is forwarded there as ``PROBE_SITE``.
3. The site where *B* waits looks up *B*'s own blockers.  If the probe's
   initiator is among them, a cycle is certain: a ``VICTIM_HOME`` message
   goes to the initiator's home, which forwards ``ABORT_WAIT`` to the site
   where the initiator is queued; its lock wait fails with a
   :class:`~repro.errors.ConcurrencyAbort` (a CCP abort, like any deadlock
   victim).  Otherwise the probe keeps chasing edges (bounded by
   ``max_hops``).
4. Races (a wait resolving while a probe is in flight) simply drop the
   probe; a periodic re-probe pass regenerates probes for waits that
   persist, so real deadlocks are detected eventually.

All probe traffic flows through the simulated network and is counted like
any other message — so the *cost* of distributed detection is measurable
(see the deadlock ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ProbeTypes", "DeadlockDetector"]


class ProbeTypes:
    """Message types of the edge-chasing protocol."""

    PROBE_HOME = "DDD_PROBE_HOME"
    PROBE_SITE = "DDD_PROBE_SITE"
    VICTIM_HOME = "DDD_VICTIM_HOME"
    ABORT_WAIT = "DDD_ABORT_WAIT"

    ALL = frozenset({PROBE_HOME, PROBE_SITE, VICTIM_HOME, ABORT_WAIT})


@dataclass
class DetectorStats:
    probes_sent: int = 0
    probes_forwarded: int = 0
    probes_dropped: int = 0
    cycles_found: int = 0
    victims_aborted: int = 0


class DeadlockDetector:
    """Edge-chasing detector attached to one site."""

    def __init__(self, site, probe_interval: float = 20.0, max_hops: int = 16):
        self.site = site
        self.sim = site.sim
        self.probe_interval = probe_interval
        self.max_hops = max_hops
        self.stats = DetectorStats()
        if probe_interval:
            site._spawn(self._reprobe_loop(), name=f"ddd:{site.name}")

    # -- initiation ----------------------------------------------------------
    def on_block(self, txn_id: int, ts: float, blockers: set[int]) -> None:
        """Called by the lock manager whenever a request queues."""
        self._chase(
            initiator=txn_id,
            initiator_ts=ts,
            initiator_home=self.site._txn_home.get(txn_id, self.site.address),
            blockers=blockers,
            hops=0,
        )

    def _reprobe_loop(self):
        while self.site.up:
            yield self.sim.timeout(self.probe_interval)
            if not self.site.up:
                return
            locks = getattr(self.site.cc, "locks", None)
            if locks is None:
                return
            horizon = self.sim.now - self.probe_interval
            for txn_id, ts, _item, blockers, since in locks.waiting_info():
                if since <= horizon and blockers:
                    self.on_block(txn_id, ts, blockers)

    def _chase(self, initiator, initiator_ts, initiator_home, blockers, hops) -> None:
        if hops > self.max_hops:
            self.stats.probes_dropped += 1
            return
        payload_base = {
            "initiator": initiator,
            "initiator_ts": initiator_ts,
            "initiator_home": initiator_home,
            "hops": hops + 1,
        }
        for blocker in sorted(blockers):
            if blocker == initiator:
                # Local self-cycle (should have been caught by the local
                # detector): the initiator is the victim.
                self._report_cycle(initiator, initiator_home)
                continue
            home = self.site._txn_home.get(blocker)
            if home is None:
                self.stats.probes_dropped += 1
                continue
            payload = dict(payload_base, target=blocker)
            self.stats.probes_sent += 1
            self._dispatch(home, ProbeTypes.PROBE_HOME, payload)

    # -- message handling -------------------------------------------------------
    def handle(self, msg) -> None:
        """Route one detector message (called from the site's dispatcher)."""
        payload = msg.payload or {}
        if msg.mtype == ProbeTypes.PROBE_HOME:
            self._probe_at_home(payload)
        elif msg.mtype == ProbeTypes.PROBE_SITE:
            self._probe_at_site(payload)
        elif msg.mtype == ProbeTypes.VICTIM_HOME:
            self._victim_at_home(payload)
        elif msg.mtype == ProbeTypes.ABORT_WAIT:
            self._abort_wait(payload)

    def _probe_at_home(self, payload) -> None:
        """We are the target's home: forward to wherever it is blocked."""
        ctx = self.site._home_ctxs.get(payload.get("target"))
        blocked_site = getattr(ctx, "blocked_site", None) if ctx else None
        if ctx is None or blocked_site is None:
            self.stats.probes_dropped += 1  # target finished or is running
            return
        self.stats.probes_forwarded += 1
        address = self.site.directory_address(blocked_site)
        self._dispatch(address, ProbeTypes.PROBE_SITE, payload)

    def _probe_at_site(self, payload) -> None:
        """The target waits here: extend the chase with its blockers."""
        locks = getattr(self.site.cc, "locks", None)
        if locks is None:
            return
        target = payload.get("target")
        blockers = locks.blockers_of(target)
        if not blockers:
            self.stats.probes_dropped += 1  # wait resolved meanwhile
            return
        initiator = payload["initiator"]
        if initiator in blockers:
            # Cycle confirmed.  Pick the *younger* of (initiator, target)
            # so the two symmetric detections of a 2-cycle agree on one
            # victim instead of killing both transactions.
            victim = initiator
            victim_home = payload["initiator_home"]
            target_ts = locks.ts_of(target)
            if target_ts is not None and target_ts > payload["initiator_ts"]:
                candidate_home = self.site._txn_home.get(target)
                if candidate_home is not None:
                    victim, victim_home = target, candidate_home
            self._report_cycle(victim, victim_home)
            return
        self._chase(
            initiator=initiator,
            initiator_ts=payload["initiator_ts"],
            initiator_home=payload["initiator_home"],
            blockers=blockers,
            hops=payload.get("hops", 0),
        )

    def _report_cycle(self, initiator: int, initiator_home: str) -> None:
        self.stats.cycles_found += 1
        self._dispatch(initiator_home, ProbeTypes.VICTIM_HOME, {"txn": initiator})

    def _victim_at_home(self, payload) -> None:
        """We are the victim's home: unwind it where it waits."""
        ctx = self.site._home_ctxs.get(payload.get("txn"))
        blocked_site = getattr(ctx, "blocked_site", None) if ctx else None
        if ctx is None or blocked_site is None:
            return  # already unblocked/finished: the deadlock resolved
        address = self.site.directory_address(blocked_site)
        self._dispatch(address, ProbeTypes.ABORT_WAIT, {"txn": payload["txn"]})

    def _abort_wait(self, payload) -> None:
        locks = getattr(self.site.cc, "locks", None)
        if locks is None:
            return
        if locks.abort_waiter(payload["txn"], reason="distributed deadlock victim"):
            self.stats.victims_aborted += 1

    # -- transport ---------------------------------------------------------------
    def _dispatch(self, address: Optional[str], mtype: str, payload: dict) -> None:
        if address is None:
            self.stats.probes_dropped += 1
            return
        if address == self.site.address:
            # Local hop: no network message, same handling.
            class _Local:
                pass

            msg = _Local()
            msg.mtype = mtype
            msg.payload = payload
            self.handle(msg)
            return
        self.site.endpoint.send(address, mtype, payload)
