"""The Rainbow site: storage, concurrency control, and protocol participants.

"The Rainbow core is comprised of the name server and a number of Rainbow
sites … Each site can freely communicate with each other.  Any site has the
capability to concurrently process multiple transactions."

A :class:`Site` owns:

* a network endpoint and a server process that spawns one handler process
  per incoming message (the paper's "one thread per transaction" model —
  here one process per request plus one per home transaction);
* the committed :class:`~repro.site.storage.LocalStore` and durable
  :class:`~repro.site.wal.WriteAheadLog` (the simulated disk);
* a pluggable concurrency controller (2PL / TSO / MVTO) guarding the local
  copies;
* the *participant* halves of 2PC and 3PC, including uncertainty timeouts,
  decision requests with presumed abort, recovery of in-doubt transactions
  from the WAL, and the simplified 3PC termination protocol;
* a garbage sweeper that unilaterally aborts unprepared transactions whose
  coordinator has stopped driving them (their home site crashed).

Everything above the dashed line in the paper's Figure 1 — the web tier and
GUI — talks to sites only through messages; the coordinator for a *home*
transaction runs as a process on its site and uses the ``local_*`` methods
directly (no self-messages, so message counts match the real system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConcurrencyAbort, NetworkError, RpcTimeout
from repro.net.message import Message, MessageType
from repro.site.deadlock import ProbeTypes as _ProbeTypesModule

_PROBE_TYPES = _ProbeTypesModule.ALL
from repro.net.network import Network
from repro.protocols.base import make_ccp
from repro.site.storage import LocalStore
from repro.site.wal import WriteAheadLog
from repro.sim.kernel import Interrupt, Process, Simulator

__all__ = ["Site", "SiteStats", "PreparedState"]


@dataclass
class PreparedState:
    """Volatile record of a transaction this site has voted YES on."""

    txn_id: int
    ts: float
    versions: dict[str, int]
    coordinator: Optional[str]
    acp: str = "2PC"
    peers: list[str] = field(default_factory=list)
    prepared_at: float = 0.0
    precommitted: bool = False
    resolving: bool = False


@dataclass
class SiteStats:
    """Per-site counters sampled by the progress monitor."""

    messages_handled: int = 0
    reads_served: int = 0
    prewrites_served: int = 0
    votes_yes: int = 0
    votes_no: int = 0
    commits_applied: int = 0
    aborts_applied: int = 0
    orphan_events: int = 0
    orphans_resolved: int = 0
    gc_aborts: int = 0
    crashes: int = 0
    recoveries: int = 0
    home_txns_started: int = 0


class Site:
    """One Rainbow site."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        host: str,
        *,
        ccp: str = "2PL",
        ccp_options: Optional[dict] = None,
        uncertainty_timeout: Optional[float] = 80.0,
        decision_retry: float = 25.0,
        gc_interval: float = 60.0,
        gc_timeout: float = 150.0,
        sweep_interval: float = 20.0,
        distributed_deadlock: bool = False,
        probe_interval: float = 20.0,
        checkpoint_interval: Optional[float] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.host = host
        self.endpoint = network.endpoint(host, name)
        self.store = LocalStore(name)
        self.wal = WriteAheadLog(name)
        self.ccp_name = ccp.upper()
        self._ccp_options = dict(ccp_options or {})
        self.cc = make_ccp(self.ccp_name, sim, self.store, **self._ccp_options)
        self.stats = SiteStats()
        self.up = True

        self.uncertainty_timeout = uncertainty_timeout
        self.decision_retry = decision_retry
        self.gc_interval = gc_interval
        self.gc_timeout = gc_timeout
        self.sweep_interval = sweep_interval
        self.checkpoint_interval = checkpoint_interval
        self.checkpoints_taken = 0

        # Set by the Rainbow instance: called to run a home transaction when
        # one arrives via TXN_SUBMIT (the WLGlet dispatch path).
        self.coordinator_factory: Optional[Callable[["Site", Any], Any]] = None

        self._prepared: dict[int, PreparedState] = {}
        self._activity: dict[int, float] = {}
        self._handlers: set[Process] = set()
        # Same-host sibling sites (the paper's shared Sitelet): the instance
        # wires this map so one BATCH_ACCESS can fan out to co-located
        # copies without extra network hops.
        self.colocated: dict[str, "Site"] = {}
        # Transaction ids already accepted via TXN_SUBMIT: duplicated
        # deliveries (flaky links, duplication_rate) must not start the
        # same transaction twice.
        self._seen_submissions: set[int] = set()
        # Distributed-deadlock support: where each known transaction's home
        # is, and the contexts of transactions homed here.
        self._txn_home: dict[int, str] = {}
        self._home_ctxs: dict[int, object] = {}
        self.directory: dict[str, str] = {}
        # Causal tracing (``RainbowInstance.enable_tracing``): the shared
        # span tracer, plus the parent span id under which the next local
        # CCP operation of a transaction should nest.  ``local_read`` and
        # friends keep fixed signatures (``ExecutionTracer`` wraps them),
        # so the trace context arrives through this side channel instead of
        # a parameter; per (site, txn) at most one access runs at a time.
        self.tracer = None
        self._span_ctx: dict[int, Optional[str]] = {}
        self._start_background()
        self.deadlock_detector = None
        if distributed_deadlock:
            from repro.site.deadlock import DeadlockDetector

            self.deadlock_detector = DeadlockDetector(
                self, probe_interval=probe_interval
            )
            self._wire_detector()

    @property
    def address(self) -> str:
        """Network address of this site's endpoint."""
        return self.endpoint.address

    def in_doubt_count(self) -> int:
        """Transactions currently prepared with no known decision (orphans)."""
        return len(self._prepared)

    # -------------------------------------------------------- deadlock support
    def _wire_detector(self) -> None:
        locks = getattr(self.cc, "locks", None)
        if locks is not None and self.deadlock_detector is not None:
            locks.on_block = self.deadlock_detector.on_block

    def register_home_txn(self, txn_id: int, ctx) -> None:
        """Track a home transaction's context (probe forwarding needs it)."""
        self._home_ctxs[txn_id] = ctx
        self._txn_home[txn_id] = self.address

    def unregister_home_txn(self, txn_id: int) -> None:
        self._home_ctxs.pop(txn_id, None)

    def directory_address(self, site_name: str) -> Optional[str]:
        """Resolve a site name to its endpoint address (None if unknown)."""
        if site_name == self.name:
            return self.address
        return self.directory.get(site_name)

    # ------------------------------------------------------------------ lifecycle
    def _start_background(self) -> None:
        self._spawn(self._serve(), name=f"site:{self.name}:server")
        if self.gc_interval:
            self._spawn(self._gc_loop(), name=f"site:{self.name}:gc")
        if self.uncertainty_timeout is not None:
            self._spawn(self._uncertainty_loop(), name=f"site:{self.name}:uncertain")
        if self.checkpoint_interval:
            self._spawn(self._checkpoint_loop(), name=f"site:{self.name}:ckpt")

    def _spawn(self, generator, name: str) -> Process:
        process = self.sim.process(generator, name=name)
        self._handlers.add(process)
        process.add_callback(lambda _ev: self._handlers.discard(process))
        return process

    def spawn_home_transaction(self, generator, name: str) -> Process:
        """Run a home-transaction coordinator as a process of this site.

        The process dies with the site (it is interrupted on crash), exactly
        like the dedicated Java thread in the original system.
        """
        self.stats.home_txns_started += 1
        return self._spawn(generator, name=name)

    def crash(self) -> None:
        """Fail-stop: lose all volatile state; keep the store and the WAL."""
        if not self.up:
            return
        self.up = False
        self.stats.crashes += 1
        self.endpoint.set_down()
        for process in list(self._handlers):
            process.interrupt("site crash")
        self._handlers.clear()
        self.cc.clear()
        self._prepared.clear()
        self._activity.clear()
        self._home_ctxs.clear()
        self._txn_home.clear()
        self._span_ctx.clear()

    def recover(self) -> None:
        """Restart from durable state; resolve in-doubt transactions."""
        if self.up:
            return
        self.up = True
        self.stats.recoveries += 1
        self.endpoint.set_up()
        self.cc = make_ccp(self.ccp_name, self.sim, self.store, **self._ccp_options)

        checkpoint = self.wal.last_checkpoint()
        if checkpoint is not None:
            # Restore the checkpointed image first (idempotent: the store's
            # version check ignores anything it already has).
            for item, (value, version) in checkpoint.writes.items():
                if self.store.has_copy(item):
                    self.store.apply(item, value, version, 0, self.sim.now)
        in_doubt, committed = self.wal.recover_state()
        for record in committed:
            # Idempotent replay: the store ignores stale versions.
            for item, (value, version) in record.writes.items():
                if self.store.has_copy(item):
                    self.store.apply(item, value, version, record.txn_id, self.sim.now)
        for doubt in in_doubt:
            writes = {item: value for item, (value, _version) in doubt.writes.items()}
            versions = {item: version for item, (_value, version) in doubt.writes.items()}
            self.cc.reinstate(doubt.txn_id, doubt.ts, writes)
            state = PreparedState(
                txn_id=doubt.txn_id,
                ts=doubt.ts,
                versions=versions,
                coordinator=doubt.coordinator,
                acp=doubt.acp,
                peers=list(doubt.peers),
                prepared_at=self.sim.now,
                precommitted=doubt.precommitted,
            )
            self._prepared[doubt.txn_id] = state
            self._begin_resolution(state)

        self._start_background()
        if self.deadlock_detector is not None:
            self._wire_detector()
            self._spawn(
                self.deadlock_detector._reprobe_loop(), name=f"ddd:{self.name}"
            )

    # ------------------------------------------------------------------ server
    def _serve(self):
        while self.up:
            try:
                msg = yield self.endpoint.receive()
            except (NetworkError, Interrupt):
                return
            self.stats.messages_handled += 1
            self._spawn(self._handle(msg), name=f"site:{self.name}:{msg.mtype}")

    def _handle(self, msg: Message):
        if msg.reply_to is not None:
            # A reply whose RPC already timed out at this endpoint: the
            # caller has moved on.  Drop it (answering would bounce replies
            # between server loops forever).
            return
        payload = msg.payload or {}
        mtype = msg.mtype
        if mtype == MessageType.READ:
            self._note_home(payload)
            self._note_span(msg, payload)
            yield from self._handle_read(msg, payload)
        elif mtype == MessageType.PREWRITE:
            self._note_home(payload)
            self._note_span(msg, payload)
            yield from self._handle_prewrite(msg, payload)
        elif mtype == MessageType.BATCH_ACCESS:
            self._note_home(payload)
            self._note_span(msg, payload)
            yield from self._handle_batch_access(msg, payload)
        elif mtype == MessageType.VOTE_REQ:
            self._note_span(msg, payload)
            self._handle_vote_req(msg, payload)
        elif mtype == MessageType.PRECOMMIT:
            self.local_precommit(payload["txn"])
            self.endpoint.reply(msg, MessageType.PRECOMMIT_ACK, {"ok": True})
        elif mtype == MessageType.COMMIT:
            self.local_commit(payload["txn"])
            self.endpoint.reply(msg, MessageType.ACK, {"ok": True})
        elif mtype == MessageType.ABORT:
            self.local_abort(payload["txn"])
            self.endpoint.reply(msg, MessageType.ACK, {"ok": True})
        elif mtype == MessageType.DECISION_REQ:
            decision = self.decision_of(
                payload["txn"], presume_abort=payload.get("presume_abort", False)
            )
            self.endpoint.reply(msg, MessageType.DECISION, {"decision": decision})
        elif mtype == MessageType.TXN_SUBMIT:
            self._handle_txn_submit(msg, payload)
        elif self.deadlock_detector is not None and mtype in _PROBE_TYPES:
            self.deadlock_detector.handle(msg)
        else:
            self.endpoint.reply(msg, MessageType.ACK, {"ok": False, "reason": "bad type"})

    def _handle_read(self, msg: Message, payload: dict):
        txn, ts, item = payload["txn"], payload["ts"], payload["item"]
        try:
            value, version = yield from self.local_read(txn, ts, item)
        except ConcurrencyAbort as abort:
            self.endpoint.reply(
                msg, MessageType.READ_REPLY, {"ok": False, "reason": str(abort)}
            )
            return
        reply = {"ok": True, "value": value, "version": version}
        self._fold_prepare(txn, ts, payload.get("prepare"), reply)
        self.endpoint.reply(msg, MessageType.READ_REPLY, reply)

    def _handle_prewrite(self, msg: Message, payload: dict):
        txn, ts = payload["txn"], payload["ts"]
        item, value = payload["item"], payload["value"]
        try:
            version = yield from self.local_prewrite(txn, ts, item, value)
        except ConcurrencyAbort as abort:
            self.endpoint.reply(
                msg, MessageType.PREWRITE_REPLY, {"ok": False, "reason": str(abort)}
            )
            return
        reply = {"ok": True, "version": version}
        self._fold_prepare(txn, ts, payload.get("prepare"), reply)
        self.endpoint.reply(msg, MessageType.PREWRITE_REPLY, reply)

    def _fold_prepare(
        self, txn: int, ts: float, prepare: Optional[dict], reply: dict
    ) -> None:
        """Run a piggybacked prepare and fold the vote into ``reply``.

        The last-agent optimization: the coordinator attached the VOTE_REQ
        payload to the transaction's final access, so the access reply
        doubles as this participant's vote and the explicit round is
        skipped.  Only reached after a successful access — a failed access
        aborts the transaction before any vote matters.
        """
        if prepare is None:
            return
        vote, reason = self.local_prepare(
            txn,
            prepare.get("versions", {}),
            prepare.get("coordinator"),
            ts,
            acp=prepare.get("acp", "2PC"),
            peers=prepare.get("peers", []),
        )
        reply["vote"] = vote
        reply["vote_reason"] = reason

    def _handle_batch_access(self, msg: Message, payload: dict):
        """Gateway for one BATCH_ACCESS: fan sub-ops out over the host.

        Each sub-op targets this site or a co-located sibling and runs as
        its own process (a lock wait at one sibling must not serialize the
        others); the single reply carries one entry per requested site.
        """
        sites = payload.get("sites") or []
        prepares = payload.get("prepare") or {}
        write = payload.get("kind") == "W"
        procs = [
            self._spawn(
                self._batch_sub_op(
                    target,
                    payload["txn"],
                    payload["ts"],
                    payload["item"],
                    payload.get("value"),
                    write,
                    prepares.get(target),
                    payload.get("home"),
                    msg.span,
                ),
                name=f"site:{self.name}:batch:{target}",
            )
            for target in sites
        ]
        if procs:
            yield self.sim.all_of(procs)
        results = [process.value for process in procs]
        self.endpoint.reply(
            msg,
            MessageType.BATCH_REPLY,
            {"results": results},
            size=max(1, len(results)),
        )

    def _batch_sub_op(
        self,
        target_name: str,
        txn: int,
        ts: float,
        item: str,
        value: Any,
        write: bool,
        prepare: Optional[dict],
        home: Optional[str],
        span: Optional[str] = None,
    ):
        """One sub-op of a batch, dispatched to self or a same-host sibling."""
        target = self if target_name == self.name else self.colocated.get(target_name)
        if target is None or not target.up:
            return {
                "site": target_name,
                "ok": False,
                "kind": "net",
                "reason": f"{target_name} unavailable at gateway {self.name}",
            }
        if home is not None:
            target._txn_home[txn] = home
        if target.tracer is not None:
            target._span_ctx[txn] = span
        entry: dict[str, Any] = {"site": target_name}
        try:
            if write:
                version = yield from target.local_prewrite(txn, ts, item, value)
                entry.update(ok=True, version=version)
            else:
                read_value, version = yield from target.local_read(txn, ts, item)
                entry.update(ok=True, value=read_value, version=version)
        except ConcurrencyAbort as abort:
            return {
                "site": target_name,
                "ok": False,
                "kind": "ccp",
                "reason": str(abort),
            }
        if prepare is not None:
            target._fold_prepare(txn, ts, prepare, entry)
        return entry

    def _handle_vote_req(self, msg: Message, payload: dict) -> None:
        vote, reason = self.local_prepare(
            payload["txn"],
            payload.get("versions", {}),
            payload.get("coordinator"),
            payload.get("ts", 0.0),
            acp=payload.get("acp", "2PC"),
            peers=payload.get("peers", []),
        )
        self.endpoint.reply(msg, MessageType.VOTE, {"vote": vote, "reason": reason})

    def _handle_txn_submit(self, msg: Message, payload: dict) -> None:
        if self.coordinator_factory is None:
            self.endpoint.reply(
                msg, MessageType.TXN_RESULT, {"ok": False, "reason": "no coordinator"}
            )
            return
        # An unreliable link can deliver the same submission twice; running
        # the transaction again would double-apply its effects.  The first
        # delivery wins and its eventual TXN_RESULT answers the client.
        txn_id = payload["txn_spec"].txn_id
        if txn_id in self._seen_submissions:
            return
        self._seen_submissions.add(txn_id)

        def _run_and_report():
            outcome = yield from self.coordinator_factory(self, payload["txn_spec"])
            if self.up:
                # Result size tracks the data returned (one unit per read
                # value), so byte-weighted latency models see real payloads.
                n_values = len(outcome.get("reads", {})) if isinstance(outcome, dict) else 0
                self.endpoint.reply(
                    msg,
                    MessageType.TXN_RESULT,
                    {"ok": True, "outcome": outcome},
                    size=max(1, n_values),
                )

        self.spawn_home_transaction(_run_and_report(), name=f"txn@{self.name}")

    # ------------------------------------------------------------------ local ops
    def local_read(self, txn: int, ts: float, item: str):
        """CCP-mediated read of the local copy (generator)."""
        self._touch(txn)
        self.stats.reads_served += 1
        if self.tracer is None:
            result = yield from self.cc.read(txn, ts, item)
            return result
        span = self.tracer.begin(
            txn, self.name, "ccp.read", parent=self._span_ctx.get(txn), item=item
        )
        try:
            result = yield from self.cc.read(txn, ts, item)
        finally:
            self.tracer.finish(span)
        return result

    def local_prewrite(self, txn: int, ts: float, item: str, value: Any):
        """CCP-mediated pre-write of the local copy (generator)."""
        self._touch(txn)
        self.stats.prewrites_served += 1
        if self.tracer is None:
            version = yield from self.cc.prewrite(txn, ts, item, value)
            return version
        span = self.tracer.begin(
            txn, self.name, "ccp.prewrite", parent=self._span_ctx.get(txn), item=item
        )
        try:
            version = yield from self.cc.prewrite(txn, ts, item, value)
        finally:
            self.tracer.finish(span)
        return version

    def local_prepare(
        self,
        txn: int,
        versions: dict[str, int],
        coordinator: Optional[str],
        ts: float,
        acp: str = "2PC",
        peers: Optional[list[str]] = None,
    ) -> tuple[bool, str]:
        """Participant prepare: force the PREPARE record and vote.

        Returns ``(vote, reason)``.  A NO vote locally aborts right away
        (the coordinator will abort globally anyway).
        """
        vote, reason = self._prepare_vote(txn, versions, coordinator, ts, acp, peers)
        if self.tracer is not None:
            now = self.sim.now
            self.tracer.record(
                txn,
                self.name,
                "ccp.prepare",
                start=now,
                end=now,
                parent=self._span_ctx.get(txn),
                vote=vote,
            )
        return vote, reason

    def _prepare_vote(
        self,
        txn: int,
        versions: dict[str, int],
        coordinator: Optional[str],
        ts: float,
        acp: str,
        peers: Optional[list[str]],
    ) -> tuple[bool, str]:
        self._touch(txn)
        if self.cc.is_doomed(txn):
            self.cc.abort(txn)
            self.stats.votes_no += 1
            return False, "doomed (wounded or recovery abort)"
        buffered = self.cc.buffered_writes(txn)
        missing = [item for item in versions if item not in buffered]
        if missing:
            self.stats.votes_no += 1
            return False, f"workspace lost for {missing}"
        valid, validation_reason = self.cc.validate(txn)
        if not valid:
            self.cc.abort(txn)
            self.stats.votes_no += 1
            return False, f"validation failed: {validation_reason}"
        writes = {item: (buffered[item], versions[item]) for item in versions}
        self.wal.log_prepare(
            txn, writes, coordinator, self.sim.now, ts=ts, acp=acp, peers=list(peers or [])
        )
        self._prepared[txn] = PreparedState(
            txn_id=txn,
            ts=ts,
            versions=dict(versions),
            coordinator=coordinator,
            acp=acp,
            peers=list(peers or []),
            prepared_at=self.sim.now,
        )
        self.stats.votes_yes += 1
        return True, "yes"

    def local_precommit(self, txn: int) -> None:
        """3PC pre-commit: durable, moves the participant out of uncertainty."""
        state = self._prepared.get(txn)
        if state is None:
            return
        self.wal.log_precommit(txn, self.sim.now)
        state.precommitted = True

    def local_commit(self, txn: int) -> None:
        """Apply the global COMMIT decision at this participant."""
        state = self._prepared.pop(txn, None)
        if state is None and self.wal.decision_for(txn) == "COMMIT":
            return  # duplicate decision (retry); already applied
        if state is not None:
            # Tag the record as a participant's copy of the decision so
            # checkpointing knows how long it must survive (see
            # WriteAheadLog.checkpoint).
            self.wal.log_commit(
                txn, self.sim.now, coordinator=state.coordinator, acp=state.acp
            )
        else:
            self.wal.log_commit(txn, self.sim.now)
        versions = state.versions if state is not None else {}
        self.cc.commit(txn, versions)
        self._activity.pop(txn, None)
        self._span_ctx.pop(txn, None)
        self.stats.commits_applied += 1
        if state is not None and state.resolving:
            self.stats.orphans_resolved += 1

    def local_abort(self, txn: int) -> None:
        """Apply the global ABORT decision (idempotent, presumed abort)."""
        state = self._prepared.pop(txn, None)
        if state is not None:
            self.wal.log_abort(txn, self.sim.now)
        self.cc.abort(txn)
        self._activity.pop(txn, None)
        self._span_ctx.pop(txn, None)
        self.stats.aborts_applied += 1
        if state is not None and state.resolving:
            self.stats.orphans_resolved += 1

    def decision_of(self, txn: int, presume_abort: bool = False) -> str:
        """Answer a DECISION_REQ about ``txn`` from durable + volatile state.

        ``presume_abort`` queries are directed at the transaction's
        *coordinator*: no logged decision means the coordinator never
        decided, so the answer is ABORT — even if this site also happens to
        hold an (equally undecided) participant state for the transaction.
        A PRECOMMIT record still wins: under 3PC it certifies that every
        participant voted YES.
        """
        decision = self.wal.decision_for(txn)
        if decision is not None:
            return decision
        state = self._prepared.get(txn)
        if state is not None and state.precommitted:
            return "PRECOMMITTED"
        if presume_abort:
            return "ABORT"
        if state is not None:
            return "UNCERTAIN"
        return "UNKNOWN"

    # ------------------------------------------------------------------ sweepers
    def _gc_loop(self):
        """Abort unprepared transactions abandoned by a dead coordinator."""
        while self.up:
            yield self.sim.timeout(self.gc_interval)
            if not self.up:
                return
            horizon = self.sim.now - self.gc_timeout
            for txn in sorted(self.cc.active_transactions()):
                if txn in self._prepared:
                    continue  # prepared: must wait for the decision
                if self._activity.get(txn, self.sim.now) < horizon:
                    self.cc.abort(txn)
                    self._activity.pop(txn, None)
                    self.stats.gc_aborts += 1

    def _checkpoint_loop(self):
        """Periodically checkpoint the store and truncate the WAL."""
        while self.up:
            yield self.sim.timeout(self.checkpoint_interval)
            if not self.up:
                return
            self.take_checkpoint()

    def take_checkpoint(self) -> int:
        """Checkpoint now; returns the number of log records truncated."""
        truncated = self.wal.checkpoint(self.store.snapshot(), self.sim.now)
        self.checkpoints_taken += 1
        return truncated

    def _uncertainty_loop(self):
        """Start decision resolution for participants stuck in doubt."""
        while self.up:
            yield self.sim.timeout(self.sweep_interval)
            if not self.up:
                return
            horizon = self.sim.now - (self.uncertainty_timeout or 0.0)
            for state in list(self._prepared.values()):
                if not state.resolving and state.prepared_at < horizon:
                    self._begin_resolution(state)

    def _begin_resolution(self, state: PreparedState) -> None:
        state.resolving = True
        self.stats.orphan_events += 1
        self._spawn(self._resolve(state), name=f"site:{self.name}:resolve:{state.txn_id}")

    def _resolve(self, state: PreparedState):
        """Learn the decision for an in-doubt transaction.

        2PC: poll the coordinator (presumed abort) until it answers — the
        blocking window of 2PC is exactly the time spent in this loop.
        3PC: after a failed coordinator round, run the (simplified,
        fail-stop) termination protocol over the peers: any decision is
        adopted; any PRECOMMITTED means commit; all-uncertain means abort.
        """
        txn = state.txn_id
        while self.up and txn in self._prepared:
            answer = yield from self._ask(state.coordinator, txn, presume_abort=True)
            if answer == "COMMIT":
                self.local_commit(txn)
                return
            if answer == "ABORT":
                self.local_abort(txn)
                return
            if state.acp == "3PC":
                decided = yield from self._terminate_3pc(state)
                if decided:
                    return
            yield self.sim.timeout(self.decision_retry)

    def _terminate_3pc(self, state: PreparedState):
        """Simplified (fail-stop) 3PC termination over the reachable peers.

        * Any peer with a decision → adopt it.
        * Any reachable PRECOMMITTED peer (or self) → COMMIT: precommit
          certifies unanimous YES votes.
        * Otherwise → ABORT: the coordinator commits only after delivering
          PRECOMMIT to the operational participants, so if none of them is
          precommitted nobody can have committed.  (This is the classic
          no-partition assumption of 3PC; crashed peers adopt the outcome
          via their own recovery resolution.)
        """
        txn = state.txn_id
        saw_precommit = state.precommitted
        reached_any = False
        for peer in state.peers:
            if peer == self.address:
                continue
            answer = yield from self._ask(peer, txn, presume_abort=False)
            if answer == "COMMIT":
                self.local_commit(txn)
                return True
            if answer == "ABORT":
                self.local_abort(txn)
                return True
            if answer == "PRECOMMITTED":
                saw_precommit = True
            if answer is not None:
                reached_any = True
        if saw_precommit:
            self.local_commit(txn)
            return True
        if reached_any or len([p for p in state.peers if p != self.address]) == 0:
            self.local_abort(txn)
            return True
        return False  # total isolation: keep retrying

    def _ask(self, address: Optional[str], txn: int, presume_abort: bool):
        if address is None:
            return None
        if address == self.address:
            return self.decision_of(txn, presume_abort=presume_abort)
        try:
            reply = yield self.endpoint.request(
                address,
                MessageType.DECISION_REQ,
                {"txn": txn, "presume_abort": presume_abort},
                timeout=self.decision_retry,
                txn_id=txn,
            )
        except (RpcTimeout, NetworkError):
            return None
        decision = (reply.payload or {}).get("decision")
        return decision  # may be UNCERTAIN/UNKNOWN — the caller interprets

    # ------------------------------------------------------------------ helpers
    def _touch(self, txn: int) -> None:
        self._activity[txn] = self.sim.now

    def _note_home(self, payload: dict) -> None:
        home = payload.get("home")
        if home is not None:
            self._txn_home[payload["txn"]] = home

    def _note_span(self, msg: Message, payload: dict) -> None:
        """Adopt the request's trace context for the txn's next local op."""
        if self.tracer is not None and "txn" in payload:
            self._span_ctx[payload["txn"]] = msg.span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.up else "down"
        return f"<Site {self.name}@{self.host} {status} ccp={self.ccp_name}>"
