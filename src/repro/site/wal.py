"""Per-site write-ahead log and the participant decision table.

The original Rainbow keeps everything in Java objects; for the classroom
exercises about atomicity and recovery we model the durable half explicitly.
The WAL survives site crashes (it is the simulated disk).  It records, per
transaction:

* ``PREPARE`` — the participant voted YES in 2PC and buffered its writes
  (the record carries the writes, so recovery can reinstate them);
* ``PRECOMMIT`` — the 3PC intermediate state;
* ``COMMIT`` / ``ABORT`` — the final decision (coordinator or participant).

After a crash, :meth:`WriteAheadLog.recover_state` classifies every logged
transaction: decided ones are re-applied/forgotten, while transactions that
prepared but saw no decision are *in doubt* — those are Rainbow's "orphan
transactions" until the decision is re-learned from the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["LogRecord", "WriteAheadLog", "InDoubt"]


@dataclass
class LogRecord:
    """One durable log record."""

    lsn: int
    txn_id: int
    kind: str  # "PREPARE" | "PRECOMMIT" | "COMMIT" | "ABORT" | "END" | "CHECKPOINT"
    at: float
    writes: dict[str, tuple[Any, int]] = field(default_factory=dict)
    coordinator: Optional[str] = None  # address to ask for the decision
    ts: float = 0.0  # transaction timestamp (needed to reinstate TO state)
    acp: str = "2PC"  # protocol in force (recovery follows its rules)
    peers: list[str] = field(default_factory=list)  # 3PC termination set


@dataclass
class InDoubt:
    """A transaction left uncertain by a crash (prepared, no decision)."""

    txn_id: int
    writes: dict[str, tuple[Any, int]]
    coordinator: Optional[str]
    precommitted: bool = False
    ts: float = 0.0
    acp: str = "2PC"
    peers: list[str] = field(default_factory=list)


class WriteAheadLog:
    """Append-only durable log for one site."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self.records: list[LogRecord] = []
        self._next_lsn = 1

    # -- appends -------------------------------------------------------------
    def log_prepare(
        self,
        txn_id: int,
        writes: dict[str, tuple[Any, int]],
        coordinator: Optional[str],
        at: float,
        ts: float = 0.0,
        acp: str = "2PC",
        peers: Optional[list[str]] = None,
    ) -> LogRecord:
        """Force a PREPARE record (participant voted YES)."""
        return self._append(
            "PREPARE",
            txn_id,
            at,
            writes=writes,
            coordinator=coordinator,
            ts=ts,
            acp=acp,
            peers=list(peers or []),
        )

    def log_precommit(self, txn_id: int, at: float) -> LogRecord:
        """Force a PRECOMMIT record (3PC only)."""
        return self._append("PRECOMMIT", txn_id, at)

    def log_commit(
        self,
        txn_id: int,
        at: float,
        *,
        coordinator: Optional[str] = None,
        acp: str = "2PC",
    ) -> LogRecord:
        """Force a COMMIT decision record.

        ``coordinator`` distinguishes the record's role: ``None`` marks the
        coordinator's own decision record, an address marks a participant's
        copy of the decision.  Checkpointing uses the role (and ``acp``) to
        decide how long the record must outlive the decision — see
        :meth:`checkpoint`.
        """
        return self._append("COMMIT", txn_id, at, coordinator=coordinator, acp=acp)

    def log_abort(self, txn_id: int, at: float) -> LogRecord:
        """Force an ABORT decision record."""
        return self._append("ABORT", txn_id, at)

    def log_end(self, txn_id: int, at: float) -> LogRecord:
        """Mark a decided transaction fully acknowledged (presumed-abort END).

        Once the coordinator has collected every participant's decision
        acknowledgement, nobody can ever ask about the transaction again,
        so its COMMIT record no longer needs to survive checkpoints.
        """
        return self._append("END", txn_id, at)

    # -- checkpointing --------------------------------------------------------
    def checkpoint(self, store_snapshot: dict[str, tuple[Any, int]], at: float) -> int:
        """Take a fuzzy checkpoint and truncate the log.

        The committed store state is recorded in a CHECKPOINT record and the
        PREPARE/PRECOMMIT records of still-undecided transactions are
        carried over.  COMMIT decision records are *retained* until it is
        provably safe to forget them: presumed abort means a missing record
        answers ABORT, so dropping a COMMIT that an in-doubt participant
        may still ask about would abort a committed transaction.  A
        coordinator's COMMIT record (no ``coordinator`` address) is kept
        until an END record marks the decision round fully acknowledged; a
        participant's copy is kept only under 3PC, where the termination
        protocol queries peers.  ABORT records always drop — presumed abort
        re-derives them.  Returns the number of records truncated — the
        classroom-visible benefit of checkpointing.
        """
        in_doubt, _committed = self.recover_state()
        retained = self._retained_decisions()
        old_length = len(self.records)
        kept: list[LogRecord] = []
        checkpoint_record = LogRecord(
            lsn=self._next_lsn,
            txn_id=0,
            kind="CHECKPOINT",
            at=at,
            writes=dict(store_snapshot),
        )
        self._next_lsn += 1
        kept.append(checkpoint_record)
        for doubt in in_doubt:
            kept.append(
                LogRecord(
                    lsn=self._next_lsn,
                    txn_id=doubt.txn_id,
                    kind="PREPARE",
                    at=at,
                    writes=dict(doubt.writes),
                    coordinator=doubt.coordinator,
                    ts=doubt.ts,
                    acp=doubt.acp,
                    peers=list(doubt.peers),
                )
            )
            self._next_lsn += 1
            if doubt.precommitted:
                kept.append(
                    LogRecord(
                        lsn=self._next_lsn, txn_id=doubt.txn_id,
                        kind="PRECOMMIT", at=at,
                    )
                )
                self._next_lsn += 1
        for record in retained:
            kept.append(
                LogRecord(
                    lsn=self._next_lsn,
                    txn_id=record.txn_id,
                    kind="COMMIT",
                    at=record.at,
                    coordinator=record.coordinator,
                    acp=record.acp,
                )
            )
            self._next_lsn += 1
        self.records = kept
        # The CHECKPOINT record itself is new, not carried over: the number
        # of old records dropped is old_length minus the carried-over
        # PREPARE/PRECOMMIT/COMMIT records (len(kept) - 1).
        return old_length - (len(kept) - 1)

    def _retained_decisions(self) -> list[LogRecord]:
        """COMMIT records a checkpoint must carry over, in LSN order."""
        ended = {
            record.txn_id for record in self.records if record.kind == "END"
        }
        retained: dict[int, LogRecord] = {}
        for record in self.records:
            if record.kind != "COMMIT" or record.txn_id in ended:
                continue
            if record.coordinator is None or record.acp == "3PC":
                retained.setdefault(record.txn_id, record)
        return sorted(retained.values(), key=lambda record: record.lsn)

    def last_checkpoint(self) -> Optional[LogRecord]:
        """The most recent CHECKPOINT record, if any."""
        for record in reversed(self.records):
            if record.kind == "CHECKPOINT":
                return record
        return None

    def _append(
        self, kind, txn_id, at, writes=None, coordinator=None, ts=0.0, acp="2PC", peers=None
    ) -> LogRecord:
        record = LogRecord(
            lsn=self._next_lsn,
            txn_id=txn_id,
            kind=kind,
            at=at,
            writes=dict(writes or {}),
            coordinator=coordinator,
            ts=ts,
            acp=acp,
            peers=list(peers or []),
        )
        self._next_lsn += 1
        self.records.append(record)
        return record

    # -- queries -------------------------------------------------------------
    def decision_for(self, txn_id: int) -> Optional[str]:
        """The logged decision ("COMMIT"/"ABORT") for a transaction, if any."""
        for record in reversed(self.records):
            if record.txn_id == txn_id and record.kind in ("COMMIT", "ABORT"):
                return record.kind
        return None

    def recover_state(self) -> tuple[list[InDoubt], list[LogRecord]]:
        """Analyse the log after a crash.

        Returns ``(in_doubt, committed_records)``:

        * ``in_doubt`` — transactions with a PREPARE but no decision; their
          buffered writes and coordinator address come from the log.
        * ``committed_records`` — the PREPARE records of transactions whose
          COMMIT was logged, in commit order, so recovery can re-apply their
          writes idempotently (the store's version check makes replay safe).
        """
        prepares: dict[int, LogRecord] = {}
        precommitted: set[int] = set()
        decisions: dict[int, str] = {}
        for record in self.records:
            if record.kind == "PREPARE":
                prepares[record.txn_id] = record
            elif record.kind == "PRECOMMIT":
                precommitted.add(record.txn_id)
            elif record.kind in ("COMMIT", "ABORT"):
                decisions[record.txn_id] = record.kind

        in_doubt = [
            InDoubt(
                txn_id=txn_id,
                writes=dict(record.writes),
                coordinator=record.coordinator,
                precommitted=txn_id in precommitted,
                ts=record.ts,
                acp=record.acp,
                peers=list(record.peers),
            )
            for txn_id, record in prepares.items()
            if txn_id not in decisions
        ]
        committed = [
            record
            for txn_id, record in prepares.items()
            if decisions.get(txn_id) == "COMMIT"
        ]
        committed.sort(key=lambda record: record.lsn)
        in_doubt.sort(key=lambda d: d.txn_id)
        return in_doubt, committed

    def __len__(self) -> int:
        return len(self.records)
