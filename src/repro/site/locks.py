"""Strict two-phase-locking lock manager for one site.

Grants shared (S) and exclusive (X) locks with FIFO queueing, lock
upgrades, and a pluggable deadlock strategy:

* ``"detect"`` (default) — maintain the local wait-for graph; on every
  block, search for a cycle through the new waiter and abort the *youngest*
  transaction on the cycle (largest timestamp — it has done the least work).
* ``"timeout"`` — no graph; a waiter that exceeds ``wait_timeout`` is
  aborted.  This is also the backstop for *distributed* deadlocks, which a
  single site's graph cannot see, so ``wait_timeout`` stays armed under
  ``"detect"`` too.
* ``"wait_die"`` — non-preemptive timestamp scheme: an older transaction
  may wait for a younger one; a younger requester dies immediately.
* ``"wound_wait"`` — preemptive: an older requester wounds (dooms) younger
  holders; a younger requester waits.

A victim's pending lock event fails with :class:`ConcurrencyAbort`, which
unwinds through the operation handler to the coordinator and is counted as
a CCP abort — the paper's per-protocol abort breakdown.

Wounding a transaction that is *not* currently waiting cannot unwind it
synchronously; instead the wounded id is reported through ``on_wound`` and
the concurrency controller dooms it, so its next operation (or its 2PC
vote) fails.  This mirrors how real wound-wait implementations deliver
asynchronous aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConcurrencyAbort, ProtocolError
from repro.sim.kernel import Event, Simulator

__all__ = ["LockMode", "LockManager", "LockStats"]


class LockMode:
    """Lock modes; X conflicts with everything, S only with X."""

    S = "S"
    X = "X"

    @staticmethod
    def compatible(held: str, wanted: str) -> bool:
        return held == LockMode.S and wanted == LockMode.S


_STRATEGIES = ("detect", "timeout", "wait_die", "wound_wait")


@dataclass
class _Request:
    txn_id: int
    ts: float
    mode: str
    event: Event
    upgrade: bool = False
    enqueued_at: float = 0.0


@dataclass
class _ItemLock:
    holders: dict[int, str] = field(default_factory=dict)  # txn -> mode
    queue: list[_Request] = field(default_factory=list)


@dataclass
class LockStats:
    """Counters the progress monitor samples."""

    acquired: int = 0
    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    wounds: int = 0
    deaths: int = 0
    total_wait_time: float = 0.0


class LockManager:
    """S/X lock table with queueing and deadlock handling for one site."""

    def __init__(
        self,
        sim: Simulator,
        *,
        strategy: str = "detect",
        wait_timeout: Optional[float] = 60.0,
        on_wound: Optional[Callable[[int], None]] = None,
        on_block: Optional[Callable[[int, float, set[int]], None]] = None,
    ):
        if strategy not in _STRATEGIES:
            raise ProtocolError(f"unknown deadlock strategy {strategy!r}")
        if strategy == "timeout" and wait_timeout is None:
            raise ProtocolError("timeout strategy requires wait_timeout")
        self.sim = sim
        self.strategy = strategy
        self.wait_timeout = wait_timeout
        self.on_wound = on_wound
        self.on_block = on_block  # distributed-deadlock probe hook
        self.stats = LockStats()
        self._table: dict[str, _ItemLock] = {}
        self._ts_of: dict[int, float] = {}

    # -- public API -----------------------------------------------------------
    def acquire(self, txn_id: int, ts: float, item: str, mode: str) -> Event:
        """Request a lock; the returned event fires when granted.

        The event fails with :class:`ConcurrencyAbort` if the transaction
        becomes a deadlock victim, dies under wait-die, or times out.
        """
        if mode not in (LockMode.S, LockMode.X):
            raise ProtocolError(f"unknown lock mode {mode!r}")
        self._ts_of[txn_id] = ts
        entry = self._table.setdefault(item, _ItemLock())
        event = self.sim.event(name=f"lock:{item}:{mode}:txn{txn_id}")

        held = entry.holders.get(txn_id)
        if held is not None:
            if held == LockMode.X or held == mode:
                self.stats.acquired += 1
                event.succeed((item, held))
                return event
            # S -> X upgrade
            if len(entry.holders) == 1:
                entry.holders[txn_id] = LockMode.X
                self.stats.acquired += 1
                event.succeed((item, LockMode.X))
                return event
            request = _Request(txn_id, ts, LockMode.X, event, upgrade=True,
                               enqueued_at=self.sim.now)
            return self._block(entry, item, request)

        if self._grantable(entry, txn_id, mode):
            entry.holders[txn_id] = mode
            self.stats.acquired += 1
            event.succeed((item, mode))
            return event

        request = _Request(txn_id, ts, mode, event, enqueued_at=self.sim.now)
        return self._block(entry, item, request)

    def release_all(self, txn_id: int) -> None:
        """Release every lock and cancel every queued request of ``txn_id``."""
        for item, entry in self._table.items():
            dirty = False
            if txn_id in entry.holders:
                del entry.holders[txn_id]
                dirty = True
            kept = [r for r in entry.queue if r.txn_id != txn_id]
            if len(kept) != len(entry.queue):
                entry.queue = kept
                dirty = True
            if dirty:
                self._grant_from_queue(entry)
        self._ts_of.pop(txn_id, None)

    def held_locks(self, txn_id: int) -> dict[str, str]:
        """Items currently locked by ``txn_id`` mapped to mode."""
        return {
            item: entry.holders[txn_id]
            for item, entry in self._table.items()
            if txn_id in entry.holders
        }

    def waiting_count(self) -> int:
        """Number of queued (blocked) requests across all items."""
        return sum(len(entry.queue) for entry in self._table.values())

    def waiting_info(self) -> list[tuple[int, float, str, set[int], float]]:
        """Every queued request: (txn, ts, item, blockers, enqueued_at).

        Used by the distributed-deadlock re-probe pass.
        """
        info = []
        for item, entry in self._table.items():
            for request in entry.queue:
                info.append(
                    (
                        request.txn_id,
                        request.ts,
                        item,
                        self._blockers_of(entry, request),
                        request.enqueued_at,
                    )
                )
        return info

    def ts_of(self, txn_id: int) -> Optional[float]:
        """The timestamp this manager has recorded for ``txn_id``."""
        return self._ts_of.get(txn_id)

    def blockers_of(self, txn_id: int) -> set[int]:
        """Union of blockers over all of ``txn_id``'s queued requests."""
        blockers: set[int] = set()
        for entry in self._table.values():
            for request in entry.queue:
                if request.txn_id == txn_id:
                    blockers |= self._blockers_of(entry, request)
        return blockers

    def wait_for_graph_dot(self) -> str:
        """Graphviz DOT rendering of the current local wait-for graph."""
        graph = self._wait_for_graph()
        lines = ["digraph waits_for {"]
        nodes = set(graph) | {b for blockers in graph.values() for b in blockers}
        for node in sorted(nodes):
            lines.append(f'  "T{node}";')
        for node in sorted(graph):
            for blocker in sorted(graph[node]):
                lines.append(f'  "T{node}" -> "T{blocker}";')
        lines.append("}")
        return "\n".join(lines)

    def abort_waiter(self, txn_id: int, reason: str) -> bool:
        """Fail ``txn_id``'s queued requests (external victim selection).

        Returns True if the transaction was actually waiting here.
        """
        waiting = any(
            request.txn_id == txn_id
            for entry in self._table.values()
            for request in entry.queue
        )
        if waiting:
            self.stats.deadlocks += 1
            self._abort_waiter(txn_id, reason)
        return waiting

    def clear(self) -> None:
        """Drop all lock state (site crash: volatile state is lost)."""
        for entry in self._table.values():
            for request in entry.queue:
                if not request.event.triggered:
                    request.event.fail(ConcurrencyAbort("lock manager cleared (site crash)"))
        self._table.clear()
        self._ts_of.clear()

    # -- granting -----------------------------------------------------------------
    def _grantable(self, entry: _ItemLock, txn_id: int, mode: str) -> bool:
        conflicts_holders = any(
            holder != txn_id and not LockMode.compatible(held, mode)
            for holder, held in entry.holders.items()
        )
        if conflicts_holders:
            return False
        # FIFO fairness: a new request must not overtake queued conflicting
        # requests (prevents writer starvation behind a reader stream).
        for queued in entry.queue:
            if queued.txn_id == txn_id:
                continue
            if not LockMode.compatible(queued.mode, mode) or not LockMode.compatible(
                mode, queued.mode
            ):
                return False
        return True

    def _block(self, entry: _ItemLock, item: str, request: _Request) -> Event:
        blockers = self._blockers_of(entry, request)

        if self.strategy == "wait_die":
            # Younger requester (larger ts) dies rather than waits.
            if any(self._ts_of.get(b, float("inf")) < request.ts for b in blockers):
                self.stats.deaths += 1
                request.event.fail(
                    ConcurrencyAbort(f"wait-die: txn{request.txn_id} younger than holder")
                )
                return request.event
        elif self.strategy == "wound_wait":
            # Older requester wounds every younger holder, then waits for
            # older ones; wounded holders abort asynchronously.
            for blocker in list(blockers):
                if self._ts_of.get(blocker, float("-inf")) > request.ts:
                    self._wound(blocker)

        entry.queue.append(request)
        self.stats.waits += 1
        if self.on_block is not None:
            self.on_block(request.txn_id, request.ts, self._blockers_of(entry, request))

        if self.strategy == "detect":
            victim = self._find_deadlock_victim(request.txn_id)
            if victim is not None:
                self.stats.deadlocks += 1
                self._abort_waiter(victim, reason="deadlock victim")
                if victim == request.txn_id:
                    return request.event

        if self.wait_timeout is not None:
            self.sim.call_later(
                self.wait_timeout, lambda: self._expire(item, request)
            )
        return request.event

    def _blockers_of(self, entry: _ItemLock, request: _Request) -> set[int]:
        blockers = {
            holder
            for holder, held in entry.holders.items()
            if holder != request.txn_id and not LockMode.compatible(held, request.mode)
        }
        # FIFO queueing also makes the request wait behind earlier queued
        # conflicting requests — but only those *ahead* of it; later
        # arrivals wait for us, not the other way around.
        for queued in entry.queue:
            if queued is request:
                break
            if queued.txn_id == request.txn_id:
                continue
            if not LockMode.compatible(queued.mode, request.mode) or not LockMode.compatible(
                request.mode, queued.mode
            ):
                blockers.add(queued.txn_id)
        return blockers

    def _grant_from_queue(self, entry: _ItemLock) -> None:
        # Upgrades first: an S-holder waiting for X proceeds once alone.
        progressed = True
        while progressed:
            progressed = False
            for request in list(entry.queue):
                if request.upgrade:
                    if set(entry.holders) <= {request.txn_id}:
                        entry.queue.remove(request)
                        entry.holders[request.txn_id] = LockMode.X
                        self._grant(request)
                        progressed = True
                    continue
                if self._head_grantable(entry, request):
                    entry.queue.remove(request)
                    entry.holders[request.txn_id] = request.mode
                    self._grant(request)
                    progressed = True
                else:
                    # FIFO: do not let later requests overtake this one
                    # (upgrades excepted, handled above).
                    break

    def _head_grantable(self, entry: _ItemLock, request: _Request) -> bool:
        return all(
            holder == request.txn_id or LockMode.compatible(held, request.mode)
            for holder, held in entry.holders.items()
        )

    def _grant(self, request: _Request) -> None:
        self.stats.acquired += 1
        self.stats.total_wait_time += self.sim.now - request.enqueued_at
        if not request.event.triggered:
            request.event.succeed((None, request.mode))

    # -- deadlock machinery ----------------------------------------------------------
    def _wait_for_graph(self) -> dict[int, set[int]]:
        graph: dict[int, set[int]] = {}
        for entry in self._table.values():
            for request in entry.queue:
                graph.setdefault(request.txn_id, set()).update(
                    self._blockers_of(entry, request)
                )
        return graph

    def _find_deadlock_victim(self, start: int) -> Optional[int]:
        """Find a cycle through ``start``; return the youngest member or None."""
        graph = self._wait_for_graph()
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(node: int) -> Optional[list[int]]:
            path.append(node)
            on_path.add(node)
            for succ in graph.get(node, ()):  # noqa: B905
                if succ == start:
                    return list(path)
                if succ in on_path or succ in visited:
                    continue
                cycle = dfs(succ)
                if cycle is not None:
                    return cycle
            path.pop()
            on_path.discard(node)
            visited.add(node)
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        return max(cycle, key=lambda txn: (self._ts_of.get(txn, 0.0), txn))

    def _abort_waiter(self, txn_id: int, reason: str) -> None:
        for entry in self._table.values():
            for request in list(entry.queue):
                if request.txn_id == txn_id:
                    entry.queue.remove(request)
                    if not request.event.triggered:
                        request.event.fail(ConcurrencyAbort(reason))
        for entry in self._table.values():
            self._grant_from_queue(entry)

    def _wound(self, txn_id: int) -> None:
        self.stats.wounds += 1
        # If the victim is waiting here, unwind it immediately; otherwise
        # report it so the controller dooms the transaction.
        waiting = any(
            request.txn_id == txn_id
            for entry in self._table.values()
            for request in entry.queue
        )
        if waiting:
            self._abort_waiter(txn_id, reason="wounded by older transaction")
        if self.on_wound is not None:
            self.on_wound(txn_id)

    def _expire(self, item: str, request: _Request) -> None:
        entry = self._table.get(item)
        if entry is None or request not in entry.queue:
            return
        entry.queue.remove(request)
        self.stats.timeouts += 1
        if not request.event.triggered:
            request.event.fail(ConcurrencyAbort(f"lock wait timeout on {item!r}"))
        self._grant_from_queue(entry)
