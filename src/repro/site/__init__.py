"""Rainbow site substrate: storage, WAL, locks, deadlocks, and the site."""

from repro.site.deadlock import DeadlockDetector, ProbeTypes
from repro.site.locks import LockManager, LockMode, LockStats
from repro.site.site import PreparedState, Site, SiteStats
from repro.site.storage import Copy, LocalStore
from repro.site.wal import InDoubt, LogRecord, WriteAheadLog

__all__ = [
    "Copy",
    "DeadlockDetector",
    "InDoubt",
    "LocalStore",
    "LockManager",
    "LockMode",
    "LockStats",
    "LogRecord",
    "PreparedState",
    "ProbeTypes",
    "Site",
    "SiteStats",
    "WriteAheadLog",
]
