"""EXP-ABL: ablation of the 2PL deadlock-handling strategy.

Expected shape: only detection reports deadlocks; only timeout reports
lock-wait timeouts as its primary mechanism; wait-die reports deaths;
wound-wait reports wounds.  All strategies keep the system live (every
transaction finishes one way or the other).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import ablation


def test_deadlock_ablation_table(benchmark):
    table = run_once(benchmark, ablation.run, n_txns=120)
    emit(table.title, table.to_text())
    rows = {row["strategy"]: row for row in table.rows}

    # Each strategy exercises its own mechanism (and only its own).
    assert rows["detect"]["deadlocks"] > 0
    assert rows["timeout"]["deadlocks"] == 0
    assert rows["timeout"]["timeouts"] > 0
    assert rows["wait_die"]["deaths"] > 0
    assert rows["wait_die"]["deadlocks"] == 0
    assert rows["wound_wait"]["wounds"] > 0
    assert rows["wound_wait"]["deaths"] == 0

    # Liveness: every strategy commits a useful share of the workload.
    for strategy, row in rows.items():
        assert row["commit_rate"] > 0.1, strategy
        assert row["throughput"] > 0.0, strategy
