"""EXP-MATRIX: every Figure-4 protocol combination, one table.

Supplementary to the paper's figures: runs the identical workload under
all RCP × CCP × ACP combinations.  The hard assertion: every combination
commits work and produces a one-copy-serializable committed history — the
"minimum interdependencies" modularity claim of §2.1, tested.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import protocol_matrix


def test_protocol_matrix_table(benchmark):
    table = run_once(benchmark, protocol_matrix.run, n_txns=30)
    emit(table.title, table.to_text())

    assert len(table.rows) == 3 * 4 * 2  # RCPs x CCPs x ACPs
    for row in table.rows:
        label = f"{row['rcp']}+{row['ccp']}+{row['acp']}"
        assert row["serializable"] is True, label
        assert row["commit_rate"] > 0.3, label
        assert row["msgs_per_txn"] > 0, label

    # 3PC always costs more messages than 2PC, everything else equal.
    for rcp in ("ROWA", "ROWAA", "QC"):
        for ccp in ("2PL", "TSO", "MVTO", "OCC"):
            two = next(
                r for r in table.rows
                if (r["rcp"], r["ccp"], r["acp"]) == (rcp, ccp, "2PC")
            )
            three = next(
                r for r in table.rows
                if (r["rcp"], r["ccp"], r["acp"]) == (rcp, ccp, "3PC")
            )
            assert three["msgs_per_txn"] > two["msgs_per_txn"], f"{rcp}+{ccp}"
