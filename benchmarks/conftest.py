"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of EXPERIMENTS.md: it runs the
experiment once inside pytest-benchmark (rounds=1 — these are wall-clock
simulations, not microbenchmarks), prints the rows the paper's panel/table
would show, and asserts the expected qualitative shape.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact with a banner (shown with pytest -s)."""
    banner = "=" * 78
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
