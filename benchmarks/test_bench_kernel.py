"""BENCH-KERNEL: events/sec microbenchmark of the discrete-event kernel.

The kernel is the execution substrate under every site, coordinator, and
experiment; its per-event overhead multiplies into everything the repo
measures.  This benchmark drives the fast path three ways and reports
events processed per wall-clock second, so the bench trajectory tracks
kernel speed release over release:

* ``timeout-chain`` — one process consuming a long chain of timeouts: the
  pure schedule/pop/resume cycle.
* ``ping-pong`` — two processes alternating timeouts and triggered events:
  the callback/resume path under event handoff.
* ``session`` — a small full Rainbow session: the kernel under real
  protocol traffic, as reported by the monitor's own events/sec counter.
"""

import time

from benchmarks.conftest import emit, run_once
from repro.experiments.common import ExperimentTable, build_instance
from repro.sim.kernel import Simulator
from repro.workload.spec import WorkloadSpec


def _timeout_chain(n: int) -> tuple[int, float]:
    sim = Simulator()

    def chain():
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.process(chain())
    started = time.perf_counter()
    sim.run()
    return sim.processed_events, time.perf_counter() - started


def _ping_pong(n: int) -> tuple[int, float]:
    sim = Simulator()
    pending = []

    def ping():
        for _ in range(n):
            event = sim.event()
            pending.append(event)
            yield sim.timeout(0.5)
            yield event

    def pong():
        while True:
            yield sim.timeout(1.0)
            if pending:
                pending.pop().succeed(42)

    ping_process = sim.process(ping())
    sim.process(pong())
    started = time.perf_counter()
    sim.run(until=ping_process)
    return sim.processed_events, time.perf_counter() - started


def _session(n_txns: int) -> tuple[int, float, float]:
    instance = build_instance(4, 32, 3, seed=5, settle_time=30.0)
    spec = WorkloadSpec(
        n_transactions=n_txns,
        arrival="poisson",
        arrival_rate=0.5,
        min_ops=3,
        max_ops=6,
        read_fraction=0.7,
    )
    result = instance.run_workload(spec)
    stats = result.statistics
    return stats.processed_events, stats.wall_clock_seconds, stats.events_per_second


def _kernel_bench(chain_n: int = 150_000, pong_n: int = 40_000, n_txns: int = 100):
    table = ExperimentTable(
        title="BENCH-KERNEL: kernel throughput (events per wall-clock second)",
        columns=["workload", "events", "wall_s", "events_per_sec"],
        notes="timeout-chain and ping-pong are pure-kernel; session is a full "
        "Rainbow run self-reported by the progress monitor.",
    )
    events, wall = _timeout_chain(chain_n)
    table.add(workload="timeout-chain", events=events, wall_s=wall,
              events_per_sec=events / wall)
    events, wall = _ping_pong(pong_n)
    table.add(workload="ping-pong", events=events, wall_s=wall,
              events_per_sec=events / wall)
    events, wall, rate = _session(n_txns)
    table.add(workload="session", events=events, wall_s=wall, events_per_sec=rate)
    return table


def test_kernel_events_per_second(benchmark):
    table = run_once(benchmark, _kernel_bench)
    emit(table.title, table.to_text())

    rows = {row["workload"]: row for row in table.rows}
    # Exact event counts pin kernel behavior: the chain processes one event
    # per timeout plus the process bootstrap and completion.
    assert rows["timeout-chain"]["events"] == 150_000 + 2
    assert rows["ping-pong"]["events"] > 40_000
    assert rows["session"]["events"] > 1_000
    for row in table.rows:
        assert row["wall_s"] > 0
        assert row["events_per_sec"] > 0
    # The monitor's self-report is wired through OutputStatistics.
    assert rows["session"]["events_per_sec"] == (
        rows["session"]["events"] / rows["session"]["wall_s"]
    )
