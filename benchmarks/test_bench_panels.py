"""EXP-FIG3 / EXP-FIG4 / EXP-FIGA1 / EXP-FIGA2: the GUI panels.

Regenerates the login/downloading applet (Figure 3), the Protocols
Configuration window (Figure 4), the Database Replication Configuration
panel (Figure A-1) and the Manual Workload Generation panel (Figure A-2),
by driving the real applet→servlet paths, not by mocking.
"""

from benchmarks.conftest import emit, run_once
from repro.core.config import RainbowConfig
from repro.core.instance import RainbowInstance
from repro.gui.applet import GuiApplet
from repro.gui.panels import (
    render_login_panel,
    render_manual_workload_panel,
    render_protocol_panel,
    render_replication_panel,
)
from repro.protocols.base import acp_registry, ccp_registry, rcp_registry
from repro.txn.transaction import Operation, Transaction
from repro.web.tier import RainbowWebTier


def build_gui_domain():
    config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3)
    instance = RainbowInstance(config)
    instance.start()
    tier = RainbowWebTier(instance)
    return instance, tier


def test_fig3_login_panel(benchmark):
    def scenario():
        instance, tier = build_gui_domain()
        applet = GuiApplet(tier)
        page = applet.download_page()
        role = applet.login("student", "student")
        return instance, tier, applet, page, role

    instance, tier, applet, page, role = run_once(benchmark, scenario)
    panel = render_login_panel(tier.home_host, applet.url, logged_in_as=role)
    emit("Figure 3 — Rainbow GUI downloading applet", panel)
    assert page.ok and page.data["page"] == "RainbowDemo.html"
    assert applet.url == f"http://{tier.home_host}:8080/RainbowDemo.html"
    assert role == "student"
    # Students do not see the Administration menu; admins do.
    assert "Administration" not in panel
    admin = GuiApplet(tier)
    assert admin.login("admin", "admin") == "admin"
    admin_panel = render_login_panel(tier.home_host, admin.url, logged_in_as="admin")
    assert "Administration" in admin_panel


def test_fig4_protocol_panel(benchmark):
    def scenario():
        config = RainbowConfig.quick(n_sites=2, n_items=4)
        # Exercise every selectable combination (the panel's drop-downs).
        combos = []
        for rcp in rcp_registry():
            for ccp in ccp_registry():
                for acp in acp_registry():
                    config.protocols.rcp = rcp
                    config.protocols.ccp = ccp
                    config.protocols.acp = acp
                    config.protocols.validate()
                    combos.append((rcp, ccp, acp))
        return config, combos

    config, combos = run_once(benchmark, scenario)
    panel = render_protocol_panel(config.protocols)
    emit("Figure 4 — Protocols Configuration window", panel)
    assert len(combos) == len(rcp_registry()) * len(ccp_registry()) * len(acp_registry())
    assert {"ROWA", "QC"} <= set(rcp_registry())
    assert {"2PL", "TSO", "MVTO"} <= set(ccp_registry())
    assert {"2PC", "3PC"} <= set(acp_registry())
    for name in ("RCP", "CCP", "ACP"):
        assert name in panel


def test_figa1_replication_panel(benchmark):
    def scenario():
        config = RainbowConfig.quick(n_sites=4, n_items=8, replication_degree=3)
        catalog = config.catalog()
        catalog.define_fragment("accounts", ["x1", "x2", "x3"], "demo fragment")
        # Weighted copy + explicit quorums on one item, as the panel allows.
        catalog.item("x1").placement["site1"] = 2
        catalog.item("x1").read_quorum = 2
        catalog.item("x1").write_quorum = 3
        catalog.validate()
        return catalog

    catalog = run_once(benchmark, scenario)
    panel = render_replication_panel(catalog)
    emit("Figure A-1 — Database Replication Configuration panel", panel)
    assert "v=2" in panel  # the weighted copy is visible
    assert "accounts" in panel
    for item in catalog.items():
        r, w = item.effective_read_quorum(), item.effective_write_quorum()
        assert r + w > item.total_votes


def test_figa2_manual_workload_panel(benchmark):
    def scenario():
        instance, tier = build_gui_domain()
        applet = GuiApplet(tier)
        applet.login("student", "student")
        t1 = Transaction(
            ops=[Operation.read("x1"), Operation.write("x2", 10)], home_site="site1"
        )
        t2 = Transaction(
            ops=[Operation.write("x1", 20), Operation.read("x3")], home_site="site2"
        )
        outcomes = {
            t1.txn_id: applet.submit_transaction(t1)["status"],
            t2.txn_id: applet.submit_transaction(t2)["status"],
        }
        return [t1, t2], outcomes

    txns, outcomes = run_once(benchmark, scenario)
    panel = render_manual_workload_panel(txns, outcomes)
    emit("Figure A-2 — Manual Workload Generation panel", panel)
    assert set(outcomes.values()) == {"COMMITTED"}
    assert "r[x1]" in panel and "w[x2=10]" in panel
