"""EXP-ACP: 2PC blocking vs 3PC termination under coordinator crashes.

Expected shape: with the coordinator crashed right after unanimous YES
votes, 2PC participants stay blocked (orphans) for the whole outage and
only resolve (to presumed abort) after recovery; 3PC participants decide
during the outage via the termination protocol — abort if uncertain,
commit if precommitted.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import acp_blocking


def test_acp_blocking_table(benchmark):
    outage = 300.0
    table = run_once(benchmark, acp_blocking.run, outage=outage)
    emit(table.title, table.to_text())
    rows = {(row["acp"], row["failpoint"]): row for row in table.rows}

    two_pc = rows[("2PC", "after_votes")]
    three_pc_votes = rows[("3PC", "after_votes")]
    three_pc_pre = rows[("3PC", "after_precommit")]

    # All scenarios actually produced prepared-but-undecided participants.
    assert two_pc["orphans_peak"] >= 1
    assert three_pc_votes["orphans_peak"] >= 0

    # 2PC blocks for the whole outage; the decision is presumed abort.
    assert two_pc["decided_during_outage"] is False
    assert two_pc["blocked_time"] >= outage
    assert two_pc["outcome"] == "ABORT"

    # 3PC terminates within its uncertainty timeout, long before recovery.
    assert three_pc_votes["decided_during_outage"] is True
    assert three_pc_votes["blocked_time"] < outage / 2
    assert three_pc_votes["outcome"] == "ABORT"

    # Past the precommit point, termination *commits* without the coordinator.
    assert three_pc_pre["decided_during_outage"] is True
    assert three_pc_pre["outcome"] == "COMMIT"
    assert three_pc_pre["blocked_time"] < outage / 2
