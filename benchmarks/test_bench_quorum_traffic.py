"""EXP-QCMSG: quorum-consensus message traffic vs ROWA (the §3/[3] study).

Expected shape assertions:
* write-heavy: ROWA's per-transaction message cost grows faster with the
  replication degree than QC's, and QC wins at the highest degree;
* read-heavy: ROWA stays cheaper than QC at the highest degree;
* both: message cost increases with replication degree.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import quorum_traffic


def test_quorum_traffic_table(benchmark):
    table = run_once(
        benchmark,
        quorum_traffic.run,
        degrees=(1, 3, 5, 7),
        read_fractions=(0.2, 0.8),
        n_txns=120,
    )
    emit(table.title, table.to_text())

    def series(rcp, rf):
        return {
            row["degree"]: row["msgs_per_txn"]
            for row in table.rows
            if row["rcp"] == rcp and row["read_fraction"] == rf
        }

    rowa_w, qc_w = series("ROWA", 0.2), series("QC", 0.2)
    rowa_r, qc_r = series("ROWA", 0.8), series("QC", 0.8)

    # Costs grow with replication degree for the replicated protocols.
    assert rowa_w[7] > rowa_w[1]
    assert qc_w[7] > qc_w[1]

    # Write-heavy: QC beats ROWA at high degree, and ROWA's growth from
    # degree 1 to 7 is steeper.
    assert qc_w[7] < rowa_w[7]
    assert (rowa_w[7] - rowa_w[1]) > (qc_w[7] - qc_w[1])

    # Read-heavy: ROWA (read-one) beats QC (read-quorum) at high degree.
    assert rowa_r[7] < qc_r[7]
