"""EXP-CCP: 2PL vs TSO vs MVTO under contention.

Expected shape: the timestamp protocols dominate blocking 2PL on this
mostly-read, long-transaction workload; 2PL is the only protocol with
deadlocks; TSO/MVTO have none by construction.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import ccp_contention


def test_ccp_contention_table(benchmark):
    table = run_once(benchmark, ccp_contention.run, n_txns=120)
    emit(table.title, table.to_text())

    def mean(ccp, column):
        rows = [row for row in table.rows if row["ccp"] == ccp]
        return sum(row[column] for row in rows) / len(rows)

    # 2PL is the only deadlocking protocol.
    assert sum(row["deadlocks"] for row in table.rows if row["ccp"] == "2PL") > 0
    assert all(row["deadlocks"] == 0 for row in table.rows if row["ccp"] != "2PL")

    # The TO protocols keep higher throughput and commit rates than 2PL on
    # this contended workload.
    assert mean("TSO", "throughput") > mean("2PL", "throughput")
    assert mean("MVTO", "throughput") > mean("2PL", "throughput")
    assert mean("TSO", "commit_rate") > mean("2PL", "commit_rate")
    assert mean("MVTO", "commit_rate") >= mean("TSO", "commit_rate") - 0.1

    # OCC's signature: conflicts surface as ACP (failed-validation) aborts,
    # not CCP aborts; execution itself never blocks or rejects.
    assert mean("OCC", "acp_abort_rate") > mean("OCC", "ccp_abort_rate")
    assert mean("OCC", "acp_abort_rate") > mean("2PL", "acp_abort_rate")
    assert mean("OCC", "throughput") > mean("2PL", "throughput")
