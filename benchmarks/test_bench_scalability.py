"""EXP-SCALE: throughput and response time vs number of sites.

Expected shape: with per-site load held constant, throughput grows with
the site count from the 2-site replicated baseline upward, while the mean
response time stays within a narrow band; per-transaction message cost
grows with the domain size.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import scalability


def test_scalability_table(benchmark):
    table = run_once(benchmark, scalability.run, site_counts=(1, 2, 4, 8))
    emit(table.title, table.to_text())
    by_sites = {row["sites"]: row for row in table.rows}

    # Scale-out: throughput grows monotonically from 2 sites upward.
    assert by_sites[4]["throughput"] > by_sites[2]["throughput"]
    assert by_sites[8]["throughput"] > by_sites[4]["throughput"]

    # Response time stays in a band (no collapse) as the system grows.
    assert by_sites[8]["mean_rt"] < 3 * by_sites[2]["mean_rt"]

    # Replication/coordination cost: messages per txn grow with the domain.
    assert by_sites[8]["msgs_per_txn"] > by_sites[2]["msgs_per_txn"]

    # The 1-site baseline runs without any replication messages to speak of.
    assert by_sites[1]["msgs_per_txn"] < by_sites[2]["msgs_per_txn"]
    assert all(row["commit_rate"] > 0.5 for row in table.rows)
