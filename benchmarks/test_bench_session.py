"""EXP-FIG5: a full default session and its Tx Processing output panel.

Regenerates Figure 5: the §3 output-statistics block plus recent
per-transaction rows after a 200-transaction session under the default
protocol stack (QC + 2PL + 2PC).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import session


def test_fig5_session_output(benchmark):
    result, panel, instance = run_once(benchmark, session.run, n_txns=200)
    emit("Figure 5 — Transaction processing output in a Rainbow session", panel)

    stats = result.statistics
    assert stats.finished == 200
    assert stats.committed > 0.5 * stats.finished  # the default session mostly commits
    assert stats.commit_rate + stats.abort_rate == 1.0
    assert stats.messages_total > 0
    assert stats.round_trips > 0
    assert stats.mean_response_time is not None
    # Every §3 statistic is present in the panel.
    for label in (
        "Committed transactions",
        "aborts due to RCP",
        "aborts due to CCP",
        "aborts due to ACP",
        "Commit rate",
        "Throughput",
        "Messages per time unit",
        "Round-trip messages",
        "Mean response time",
        "Orphan transactions",
        "Load imbalance",
    ):
        assert label in panel
    # The committed history is one-copy serializable.
    assert result.serializable is True
    # The Display-menu time series was sampled.
    assert len(instance.monitor.series["t"]) > 3
