"""EXP-MSGECON: message economy across the optimization lattice.

Expected shape assertions:
* batching and the piggybacked prepare each cut transaction-processing
  messages below the unoptimized baseline; stacked they cut ≥25% under QC;
* the piggybacked prepare removes at least one commit round trip per
  remote-participant transaction (visible as fewer VOTE_REQs per txn);
* latency-aware routing never costs messages, and under LAN/WAN latency it
  lowers the mean response time.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import message_economy


def test_message_economy_table(benchmark):
    table = run_once(benchmark, message_economy.run)
    emit(table.title, table.to_text())

    def row(rcp, latency, flags):
        for candidate in table.rows:
            if (candidate["rcp"], candidate["latency"], candidate["flags"]) == (
                rcp, latency, flags,
            ):
                return candidate
        raise AssertionError(f"missing row {(rcp, latency, flags)}")

    for rcp in ("QC", "ROWAA"):
        for latency in ("uniform", "lanwan"):
            none = row(rcp, latency, "none")
            batch = row(rcp, latency, "batch")
            piggyback = row(rcp, latency, "piggyback")
            routing = row(rcp, latency, "routing")
            combined = row(rcp, latency, "all")

            # Each message-saving optimization cuts traffic on its own.
            assert batch["msgs_per_txn"] < none["msgs_per_txn"]
            assert piggyback["msgs_per_txn"] < none["msgs_per_txn"]
            assert batch["batched_per_txn"] > 0
            assert piggyback["saved_per_txn"] > 0

            # The piggybacked prepare replaces explicit VOTE_REQ rounds.
            assert piggyback["vote_reqs_per_txn"] < none["vote_reqs_per_txn"]

            # Routing re-orders but never adds traffic (within one wave of
            # noise from divergent abort/retry behavior).
            assert routing["msgs_per_txn"] <= none["msgs_per_txn"] * 1.05

            # Stacked, the savings compose.
            assert combined["msgs_per_txn"] < batch["msgs_per_txn"]
            assert combined["msgs_per_txn"] < piggyback["msgs_per_txn"]

    # The acceptance bar: ≥25% fewer messages/txn under QC+2PC, and more
    # than one commit round trip saved per transaction on average.
    for latency in ("uniform", "lanwan"):
        none = row("QC", latency, "none")
        combined = row("QC", latency, "all")
        assert combined["msgs_per_txn"] < 0.75 * none["msgs_per_txn"]
        assert none["round_trips_per_txn"] - combined["round_trips_per_txn"] > 1.0

    # Under LAN/WAN latency, routing prefers co-located replicas and the
    # mean response time drops.
    assert (
        row("QC", "lanwan", "routing")["response_time"]
        < row("QC", "lanwan", "none")["response_time"]
    )
