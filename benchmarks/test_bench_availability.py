"""EXP-AVAIL: commit rate under site failures — the availability argument.

Expected shape: both protocols commit well with no faults; as MTTF drops,
ROWA's commit rate collapses (write-all needs every copy up) with RCP
aborts dominating, while QC degrades gracefully with near-zero RCP aborts.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import availability


def test_availability_table(benchmark):
    table = run_once(
        benchmark,
        availability.run,
        mttfs=(None, 600.0, 300.0, 150.0),
        n_txns=120,
        repetitions=3,  # average out fault-schedule noise
    )
    emit(table.title, table.to_text())

    def series(rcp):
        return {row["mttf"]: row for row in table.rows if row["rcp"] == rcp}

    rowa, rowaa, qc = series("ROWA"), series("ROWAA"), series("QC")

    # Fault-free: both healthy.
    assert rowa["inf"]["commit_rate"] > 0.7
    assert qc["inf"]["commit_rate"] > 0.7
    assert rowa["inf"]["rcp_abort_rate"] == 0.0

    # Failures hurt both, ROWA much more; averaged over seeds the decay is
    # monotone in failure intensity.
    assert rowa["inf"]["commit_rate"] > rowa[600.0]["commit_rate"]
    assert rowa[600.0]["commit_rate"] > rowa[300.0]["commit_rate"]
    assert rowa[300.0]["commit_rate"] > rowa[150.0]["commit_rate"]
    assert qc[150.0]["commit_rate"] < qc["inf"]["commit_rate"]
    for mttf in (600.0, 300.0, 150.0):
        assert qc[mttf]["commit_rate"] > rowa[mttf]["commit_rate"], mttf
        # ROWA's extra aborts are RCP (write-all unattainable); QC barely
        # ever fails to build a quorum with majorities intact.
        assert rowa[mttf]["rcp_abort_rate"] > qc[mttf]["rcp_abort_rate"]
        # Available copies tolerates crashes at least as well as ROWA.
        assert rowaa[mttf]["commit_rate"] >= rowa[mttf]["commit_rate"]
        assert rowaa[mttf]["rcp_abort_rate"] <= rowa[mttf]["rcp_abort_rate"]
    assert rowa[150.0]["rcp_abort_rate"] > 0.3
