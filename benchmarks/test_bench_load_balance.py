"""EXP-LB: load balance/imbalance indicators.

Expected shape: round-robin home selection is perfectly balanced (CV = 0);
the weighted policy concentrates home transactions on the heavy site and
drives the imbalance coefficient up.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import load_balance


def test_load_balance_table(benchmark):
    table = run_once(benchmark, load_balance.run, n_txns=120)
    emit(table.title, table.to_text())
    rows = {row["policy"]: row for row in table.rows}

    assert rows["round_robin"]["imbalance_cv"] == 0.0
    assert rows["round_robin"]["max_site_share"] == 0.25

    assert rows["weighted"]["imbalance_cv"] > 0.5
    assert rows["weighted"]["max_site_share"] > 0.5
    assert rows["weighted"]["imbalance_cv"] > rows["round_robin"]["imbalance_cv"]
