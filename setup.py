"""Setup shim.

This environment has no network access and no ``wheel`` package, so PEP 660
editable installs cannot build. Keeping a ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
